//! Segment-structured storage engine (Segcache-style).
//!
//! Objects are appended into fixed-size **segments**; a segment belongs
//! to one **TTL bucket** (geometric TTL ranges), so all objects in a
//! segment expire within a bounded window and a whole segment can be
//! reclaimed at once when its window passes — proactive expiry with *no
//! per-key scans* of the index. Eviction is **merge-based**: the oldest
//! sealed segments of a crowded TTL bucket are compacted into one,
//! retaining the most frequently accessed objects and dropping the
//! rest, which reclaims whole segments while keeping the hot working
//! set.
//!
//! Per-object metadata is a compact 16-byte header inline in the
//! segment (`expiry_ms` u64, `vlen` u32, `klen` u8, flags u8, `freq`
//! u8), far smaller than the slab table's ~64-byte entry. The key index
//! is a plain `HashMap` from key to `(segment, offset)` — a documented
//! simplification of Segcache's bulk-chained hash table; the segment
//! memory layout and reclamation machinery are the point here, not the
//! index micro-layout.
//!
//! Observable semantics follow the engine contract (see
//! [`crate::engine`]): expired-but-unreclaimed objects behave exactly
//! like absent ones, so results never depend on *when* a segment is
//! reclaimed.

use crate::engine::{Engine, EngineStats};
use crate::hash::bucket_hash;
use crate::table::SetOutcome;
use crate::types::{CacheError, Value, MAX_KEY_LEN, MAX_VALUE_LEN};
use std::collections::HashMap;

/// Inline per-object header: expiry u64 | vlen u32 | klen u8 | flags u8
/// | freq u8 | pad u8.
const HEADER_LEN: usize = 16;
/// Flag bit: the object is dead (deleted/replaced/expired/drained).
const FLAG_DEAD: u8 = 1;

/// Smallest segment we will carve.
const MIN_SEG_SIZE: usize = 16 * 1024;
/// Largest useful segment: one maximal object plus header.
const MAX_SEG_SIZE: usize = MAX_VALUE_LEN + MAX_KEY_LEN + HEADER_LEN;

/// Number of geometric TTL buckets; bucket `i` holds TTLs below
/// `1s << i`, the last one also holds everything longer.
const TTL_BUCKETS: usize = 16;
/// Extra bucket for objects without expiry.
const NO_TTL_BUCKET: usize = TTL_BUCKETS;

/// Sealed segments merged per eviction pass.
const MERGE_FANIN: usize = 3;

/// A live object lifted out of merge-source segments:
/// `(key, value, expiry_ms, decayed_freq)`.
type MergeCandidate = (Box<[u8]>, Vec<u8>, u64, u8);

/// Fixed partition count for the migration drain surface (the
/// hash-derived partition of a key never changes, so freezing is
/// trivially stable).
const SEG_PARTITIONS: usize = 64;

/// Bytes charged per index entry on top of the inline header
/// (hash-map slot + boxed key bookkeeping).
const INDEX_ENTRY_OVERHEAD: usize = 48;

/// Location of a live object: segment id + byte offset of its header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Loc {
    seg: u32,
    off: u32,
}

#[derive(Debug)]
struct Segment {
    data: Box<[u8]>,
    /// Append cursor; bytes past it are unused.
    write_off: usize,
    live_items: usize,
    /// Header+key+value bytes of live objects.
    live_bytes: usize,
    /// Value bytes of live objects.
    live_value_bytes: usize,
    /// Allocation sequence number (older = smaller).
    seq: u64,
    /// Upper bound on the expiry of every live object (0 until the
    /// first TTL'd object lands). Only widened, never narrowed, so
    /// whole-segment expiry can never fire early.
    max_expiry_ms: u64,
    /// `true` once any object without expiry lives here (the segment
    /// then never whole-expires).
    has_no_ttl: bool,
}

impl Segment {
    fn fully_expired(&self, now_ms: u64) -> bool {
        !self.has_no_ttl && self.max_expiry_ms != 0 && self.max_expiry_ms <= now_ms
    }
}

#[derive(Debug, Default)]
struct TtlBucket {
    /// The segment currently being appended to.
    active: Option<u32>,
    /// Full segments, oldest first.
    sealed: Vec<u32>,
}

/// The segment-structured engine.
#[derive(Debug)]
pub struct SegEngine {
    segs: Vec<Option<Segment>>,
    free_ids: Vec<u32>,
    buckets: Vec<TtlBucket>,
    index: HashMap<Box<[u8]>, Loc>,
    seg_size: usize,
    max_segments: usize,
    allocated: usize,
    capacity: usize,
    len: usize,
    live_bytes: usize,
    live_value_bytes: usize,
    next_seq: u64,
    frozen: bool,
    evictions: u64,
    expirations: u64,
    evicted_bytes: u64,
    expired_bytes: u64,
    segments_expired: u64,
    seg_merges: u64,
}

fn is_expired(expiry_ms: u64, now_ms: u64) -> bool {
    expiry_ms != 0 && expiry_ms <= now_ms
}

fn read_u64(d: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(d[off..off + 8].try_into().expect("8 bytes"))
}

fn read_u32(d: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(d[off..off + 4].try_into().expect("4 bytes"))
}

/// Decoded object header.
#[derive(Debug, Clone, Copy)]
struct Header {
    expiry_ms: u64,
    vlen: usize,
    klen: usize,
    dead: bool,
    freq: u8,
}

impl Header {
    fn item_len(&self) -> usize {
        HEADER_LEN + self.klen + self.vlen
    }
}

impl SegEngine {
    /// Creates an engine with a byte `capacity` budget. Segment size is
    /// derived from the budget (clamped to `[16 KiB, ~1 MiB]`), so small
    /// budgets still get several segments to rotate through while an
    /// unbounded engine can hold maximal objects.
    pub fn new(capacity: usize) -> Self {
        let seg_size = (capacity / 16).clamp(MIN_SEG_SIZE, MAX_SEG_SIZE);
        let max_segments = (capacity / seg_size).max(2);
        Self::with_geometry(capacity, seg_size, max_segments)
    }

    /// Creates an engine with explicit segment geometry (tests and
    /// benchmarks; [`SegEngine::new`] derives geometry from capacity).
    pub fn with_geometry(capacity: usize, seg_size: usize, max_segments: usize) -> Self {
        Self {
            segs: Vec::new(),
            free_ids: Vec::new(),
            buckets: (0..=NO_TTL_BUCKET).map(|_| TtlBucket::default()).collect(),
            index: HashMap::new(),
            seg_size,
            max_segments: max_segments.max(2),
            allocated: 0,
            capacity,
            len: 0,
            live_bytes: 0,
            live_value_bytes: 0,
            next_seq: 0,
            frozen: false,
            evictions: 0,
            expirations: 0,
            evicted_bytes: 0,
            expired_bytes: 0,
            segments_expired: 0,
            seg_merges: 0,
        }
    }

    /// Segment size in bytes (inspection/tests).
    pub fn seg_size(&self) -> usize {
        self.seg_size
    }

    /// Currently allocated segments (inspection/tests).
    pub fn allocated_segments(&self) -> usize {
        self.allocated
    }

    fn ttl_bucket_of(&self, expiry_ms: u64, now_ms: u64) -> usize {
        if expiry_ms == 0 {
            return NO_TTL_BUCKET;
        }
        let ttl = expiry_ms.saturating_sub(now_ms);
        for i in 0..TTL_BUCKETS {
            if ttl < 1000u64 << i {
                return i;
            }
        }
        TTL_BUCKETS - 1
    }

    fn seg(&self, id: u32) -> &Segment {
        self.segs[id as usize].as_ref().expect("live segment")
    }

    fn seg_mut(&mut self, id: u32) -> &mut Segment {
        self.segs[id as usize].as_mut().expect("live segment")
    }

    fn header_at(&self, loc: Loc) -> Header {
        let d = &self.seg(loc.seg).data;
        let off = loc.off as usize;
        Header {
            expiry_ms: read_u64(d, off),
            vlen: read_u32(d, off + 8) as usize,
            klen: d[off + 12] as usize,
            dead: d[off + 13] & FLAG_DEAD != 0,
            freq: d[off + 14],
        }
    }

    /// Marks the object at `loc` dead and discounts it from segment and
    /// engine live accounting. The index entry must be removed by the
    /// caller (which usually still holds the key).
    fn mark_dead(&mut self, loc: Loc) {
        let h = self.header_at(loc);
        debug_assert!(!h.dead, "double kill");
        let item_len = h.item_len();
        let seg = self.seg_mut(loc.seg);
        seg.data[loc.off as usize + 13] |= FLAG_DEAD;
        seg.live_items -= 1;
        seg.live_bytes -= item_len;
        seg.live_value_bytes -= h.vlen;
        self.len -= 1;
        self.live_bytes -= item_len;
        self.live_value_bytes -= h.vlen;
    }

    /// Reclaims an expired object found on a lookup path.
    fn reclaim_expired(&mut self, key: &[u8], loc: Loc) {
        let vlen = self.header_at(loc).vlen;
        self.index.remove(key);
        self.mark_dead(loc);
        self.expirations += 1;
        self.expired_bytes += vlen as u64;
    }

    fn alloc_segment(&mut self) -> Option<u32> {
        if let Some(id) = self.free_ids.pop() {
            self.next_seq += 1;
            self.segs[id as usize] = Some(Segment {
                data: vec![0u8; self.seg_size].into_boxed_slice(),
                write_off: 0,
                live_items: 0,
                live_bytes: 0,
                live_value_bytes: 0,
                seq: self.next_seq,
                max_expiry_ms: 0,
                has_no_ttl: false,
            });
            self.allocated += 1;
            return Some(id);
        }
        if self.allocated < self.max_segments {
            self.next_seq += 1;
            self.segs.push(Some(Segment {
                data: vec![0u8; self.seg_size].into_boxed_slice(),
                write_off: 0,
                live_items: 0,
                live_bytes: 0,
                live_value_bytes: 0,
                seq: self.next_seq,
                max_expiry_ms: 0,
                has_no_ttl: false,
            }));
            self.allocated += 1;
            return Some((self.segs.len() - 1) as u32);
        }
        None
    }

    fn free_segment(&mut self, id: u32) {
        debug_assert_eq!(
            self.seg(id).live_items,
            0,
            "freeing a segment with live objects"
        );
        self.segs[id as usize] = None;
        self.free_ids.push(id);
        self.allocated -= 1;
    }

    /// Object offsets in segment `id`, in append order.
    fn scan_offsets(&self, id: u32) -> Vec<u32> {
        let seg = self.seg(id);
        let mut out = Vec::new();
        let mut off = 0usize;
        while off < seg.write_off {
            out.push(off as u32);
            let vlen = read_u32(&seg.data, off + 8) as usize;
            let klen = seg.data[off + 12] as usize;
            off += HEADER_LEN + klen + vlen;
        }
        out
    }

    fn key_at(&self, loc: Loc) -> &[u8] {
        let seg = self.seg(loc.seg);
        let off = loc.off as usize;
        let klen = seg.data[off + 12] as usize;
        &seg.data[off + HEADER_LEN..off + HEADER_LEN + klen]
    }

    fn value_at(&self, loc: Loc) -> &[u8] {
        let seg = self.seg(loc.seg);
        let off = loc.off as usize;
        let h = self.header_at(loc);
        let start = off + HEADER_LEN + h.klen;
        &seg.data[start..start + h.vlen]
    }

    /// Raw append into segment `id` (the caller guarantees room).
    /// Updates segment and engine accounting and the index.
    fn append_to_segment(
        &mut self,
        id: u32,
        key: &[u8],
        value: &[u8],
        expiry_ms: u64,
        freq: u8,
    ) -> Loc {
        let item_len = HEADER_LEN + key.len() + value.len();
        let seg = self.seg_mut(id);
        debug_assert!(
            seg.write_off + item_len <= seg.data.len(),
            "segment overflow"
        );
        let off = seg.write_off;
        seg.data[off..off + 8].copy_from_slice(&expiry_ms.to_le_bytes());
        seg.data[off + 8..off + 12].copy_from_slice(&(value.len() as u32).to_le_bytes());
        seg.data[off + 12] = key.len() as u8;
        seg.data[off + 13] = 0;
        seg.data[off + 14] = freq;
        seg.data[off + 15] = 0;
        seg.data[off + HEADER_LEN..off + HEADER_LEN + key.len()].copy_from_slice(key);
        let vstart = off + HEADER_LEN + key.len();
        seg.data[vstart..vstart + value.len()].copy_from_slice(value);
        seg.write_off += item_len;
        seg.live_items += 1;
        seg.live_bytes += item_len;
        seg.live_value_bytes += value.len();
        if expiry_ms == 0 {
            seg.has_no_ttl = true;
        } else if expiry_ms > seg.max_expiry_ms {
            seg.max_expiry_ms = expiry_ms;
        }
        self.len += 1;
        self.live_bytes += item_len;
        self.live_value_bytes += value.len();
        let loc = Loc {
            seg: id,
            off: off as u32,
        };
        self.index.insert(key.into(), loc);
        loc
    }

    /// Finds (or makes) room in `bucket` and appends the object.
    fn append_item(
        &mut self,
        key: &[u8],
        value: &[u8],
        now_ms: u64,
        expiry_ms: u64,
    ) -> Result<Loc, CacheError> {
        let item_len = HEADER_LEN + key.len() + value.len();
        if item_len > self.seg_size {
            // The object cannot fit in any segment of this engine's
            // geometry; with budget-derived geometry this only happens
            // for near-max values under small byte budgets.
            return Err(CacheError::OutOfMemory);
        }
        let bucket = self.ttl_bucket_of(expiry_ms, now_ms);
        loop {
            if let Some(id) = self.buckets[bucket].active {
                if self.seg(id).write_off + item_len <= self.seg_size {
                    return Ok(self.append_to_segment(id, key, value, expiry_ms, 0));
                }
                // Seal the full segment and fall through to allocate.
                self.buckets[bucket].active = None;
                self.buckets[bucket].sealed.push(id);
            }
            if let Some(id) = self.alloc_segment() {
                self.buckets[bucket].active = Some(id);
                continue;
            }
            if !self.make_room(now_ms) {
                return Err(CacheError::OutOfMemory);
            }
        }
    }

    /// Reclaims at least one segment: proactive whole-segment expiry
    /// first, then merge-based eviction, then wholesale eviction of the
    /// oldest segment. Returns `false` only when nothing can be freed.
    fn make_room(&mut self, now_ms: u64) -> bool {
        if self.expire_segments(now_ms) > 0 {
            return true;
        }
        // Merge the bucket with the most sealed segments.
        if let Some(b) = (0..self.buckets.len())
            .filter(|&b| self.buckets[b].sealed.len() >= 2)
            .max_by_key(|&b| self.buckets[b].sealed.len())
        {
            return self.merge_bucket(b, now_ms);
        }
        // Fall back: evict the oldest segment wholesale (sealed
        // preferred, then active).
        let oldest_sealed = (0..self.buckets.len())
            .filter_map(|b| {
                self.buckets[b]
                    .sealed
                    .first()
                    .map(|&id| (self.seg(id).seq, b))
            })
            .min();
        if let Some((_, b)) = oldest_sealed {
            let id = self.buckets[b].sealed.remove(0);
            self.evict_segment(id, now_ms);
            return true;
        }
        let oldest_active = (0..self.buckets.len())
            .filter_map(|b| self.buckets[b].active.map(|id| (self.seg(id).seq, b)))
            .min();
        if let Some((_, b)) = oldest_active {
            let id = self.buckets[b].active.take().expect("checked");
            self.evict_segment(id, now_ms);
            return true;
        }
        false
    }

    /// Frees every fully-expired (and every fully-dead) segment.
    /// Returns how many segments were reclaimed. This is the proactive
    /// expiry path: a TTL bucket's segments age out together, so no
    /// index-wide scan is ever needed.
    fn expire_segments(&mut self, now_ms: u64) -> usize {
        let mut freed = 0;
        for b in 0..self.buckets.len() {
            let mut i = 0;
            while i < self.buckets[b].sealed.len() {
                let id = self.buckets[b].sealed[i];
                if self.seg(id).fully_expired(now_ms) {
                    self.buckets[b].sealed.remove(i);
                    self.expire_segment(id);
                    freed += 1;
                } else if self.seg(id).live_items == 0 {
                    // All objects already dead (replaced/deleted):
                    // plain garbage, reclaim without counters.
                    self.buckets[b].sealed.remove(i);
                    self.free_segment(id);
                    freed += 1;
                } else {
                    i += 1;
                }
            }
            if let Some(id) = self.buckets[b].active {
                if self.seg(id).fully_expired(now_ms) {
                    self.buckets[b].active = None;
                    self.expire_segment(id);
                    freed += 1;
                }
            }
        }
        freed
    }

    /// Drops a fully-expired segment: every remaining live object is an
    /// expiration.
    fn expire_segment(&mut self, id: u32) {
        for off in self.scan_offsets(id) {
            let loc = Loc { seg: id, off };
            let h = self.header_at(loc);
            if h.dead {
                continue;
            }
            let key = self.key_at(loc).to_vec();
            self.index.remove(key.as_slice());
            self.mark_dead(loc);
            self.expirations += 1;
            self.expired_bytes += h.vlen as u64;
        }
        self.segments_expired += 1;
        self.free_segment(id);
    }

    /// Drops a segment wholesale: live unexpired objects count as
    /// evictions, expired ones as expirations.
    fn evict_segment(&mut self, id: u32, now_ms: u64) {
        for off in self.scan_offsets(id) {
            let loc = Loc { seg: id, off };
            let h = self.header_at(loc);
            if h.dead {
                continue;
            }
            let key = self.key_at(loc).to_vec();
            self.index.remove(key.as_slice());
            self.mark_dead(loc);
            if is_expired(h.expiry_ms, now_ms) {
                self.expirations += 1;
                self.expired_bytes += h.vlen as u64;
            } else {
                self.evictions += 1;
                self.evicted_bytes += h.vlen as u64;
            }
        }
        self.free_segment(id);
    }

    /// Merge-based eviction: compacts the oldest sealed segments of
    /// bucket `b` into one, retaining the most frequently accessed
    /// objects and evicting the rest. Frees at least one segment.
    fn merge_bucket(&mut self, b: usize, now_ms: u64) -> bool {
        let take = self.buckets[b].sealed.len().min(MERGE_FANIN);
        if take < 2 {
            return false;
        }
        let srcs: Vec<u32> = self.buckets[b].sealed.drain(..take).collect();

        // Pull every live object out of the sources. Expired ones are
        // expirations; the rest are merge candidates with decayed
        // frequency.
        let mut candidates: Vec<MergeCandidate> = Vec::new();
        for &id in &srcs {
            for off in self.scan_offsets(id) {
                let loc = Loc { seg: id, off };
                let h = self.header_at(loc);
                if h.dead {
                    continue;
                }
                let key: Box<[u8]> = self.key_at(loc).into();
                self.index.remove(&key);
                self.mark_dead(loc);
                if is_expired(h.expiry_ms, now_ms) {
                    self.expirations += 1;
                    self.expired_bytes += h.vlen as u64;
                } else {
                    candidates.push((key, self.value_at(loc).to_vec(), h.expiry_ms, h.freq / 2));
                }
            }
        }
        for id in srcs {
            self.free_segment(id);
        }

        // Hottest first; retain while the destination segment has room.
        candidates.sort_by_key(|c| std::cmp::Reverse(c.3));
        let dest = self.alloc_segment().expect("merge freed segments");
        let mut used = 0usize;
        for (key, value, expiry, freq) in candidates {
            let item_len = HEADER_LEN + key.len() + value.len();
            if used + item_len <= self.seg_size {
                self.append_to_segment(dest, &key, &value, expiry, freq);
                used += item_len;
            } else {
                self.evictions += 1;
                self.evicted_bytes += value.len() as u64;
            }
        }
        // The merged segment holds the bucket's oldest surviving data.
        self.buckets[b].sealed.insert(0, dest);
        self.seg_merges += 1;
        true
    }
}

impl Engine for SegEngine {
    fn get(&mut self, key: &[u8], now_ms: u64) -> Option<Value> {
        let loc = *self.index.get(key)?;
        let h = self.header_at(loc);
        if is_expired(h.expiry_ms, now_ms) {
            self.reclaim_expired(key, loc);
            return None;
        }
        let seg = self.seg_mut(loc.seg);
        let off = loc.off as usize;
        seg.data[off + 14] = seg.data[off + 14].saturating_add(1);
        let start = off + HEADER_LEN + h.klen;
        let seg = self.seg(loc.seg);
        // Segment arenas are recycled by merge/expiry, so the engine
        // boundary pays its one copy here; everything downstream shares
        // the returned buffer.
        Some(Value::copy_from_slice(&seg.data[start..start + h.vlen]))
    }

    fn set(
        &mut self,
        key: &[u8],
        value: &[u8],
        now_ms: u64,
        expiry_ms: u64,
    ) -> Result<SetOutcome, CacheError> {
        if key.len() > MAX_KEY_LEN {
            return Err(CacheError::KeyTooLong(key.len()));
        }
        if value.len() > MAX_VALUE_LEN {
            return Err(CacheError::ValueTooLong(value.len()));
        }
        let existed = match self.index.get(key).copied() {
            Some(loc) => {
                let h = self.header_at(loc);
                if is_expired(h.expiry_ms, now_ms) {
                    self.reclaim_expired(key, loc);
                    false
                } else {
                    self.index.remove(key);
                    self.mark_dead(loc);
                    true
                }
            }
            None => false,
        };
        self.append_item(key, value, now_ms, expiry_ms)?;
        Ok(if existed {
            SetOutcome::Updated
        } else {
            SetOutcome::Inserted
        })
    }

    fn delete(&mut self, key: &[u8], now_ms: u64) -> bool {
        let Some(loc) = self.index.get(key).copied() else {
            return false;
        };
        let h = self.header_at(loc);
        if is_expired(h.expiry_ms, now_ms) {
            self.reclaim_expired(key, loc);
            return false;
        }
        self.index.remove(key);
        self.mark_dead(loc);
        true
    }

    fn contains(&mut self, key: &[u8], now_ms: u64) -> bool {
        let Some(loc) = self.index.get(key).copied() else {
            return false;
        };
        if is_expired(self.header_at(loc).expiry_ms, now_ms) {
            self.reclaim_expired(key, loc);
            return false;
        }
        true
    }

    fn touch(&mut self, key: &[u8], now_ms: u64, expiry_ms: u64) -> bool {
        let Some(loc) = self.index.get(key).copied() else {
            return false;
        };
        if is_expired(self.header_at(loc).expiry_ms, now_ms) {
            self.reclaim_expired(key, loc);
            return false;
        }
        // Rewrite the inline expiry and widen the segment's expiry
        // bound. The object stays in its segment (its TTL bucket is
        // stale after a touch), which is safe: the bound only widens,
        // so whole-segment expiry can only fire late, never early, and
        // per-object lazy expiry stays exact.
        let seg = self.seg_mut(loc.seg);
        let off = loc.off as usize;
        seg.data[off..off + 8].copy_from_slice(&expiry_ms.to_le_bytes());
        if expiry_ms == 0 {
            seg.has_no_ttl = true;
        } else if expiry_ms > seg.max_expiry_ms {
            seg.max_expiry_ms = expiry_ms;
        }
        true
    }

    fn read_for_update(&mut self, key: &[u8], now_ms: u64) -> Option<(Vec<u8>, u64)> {
        let loc = *self.index.get(key)?;
        let h = self.header_at(loc);
        if is_expired(h.expiry_ms, now_ms) {
            self.reclaim_expired(key, loc);
            return None;
        }
        Some((self.value_at(loc).to_vec(), h.expiry_ms))
    }

    fn maintain(&mut self, now_ms: u64) {
        self.expire_segments(now_ms);
    }

    fn len(&self) -> usize {
        self.len
    }

    fn used_bytes(&self) -> usize {
        self.live_bytes + self.len * INDEX_ENTRY_OVERHEAD
    }

    fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    fn set_capacity_bytes(&mut self, bytes: usize) {
        // Keep the existing segment geometry (live segments already have
        // `seg_size` bytes) and move the segment-count ceiling. Shrinking
        // below the currently allocated count converges lazily: the next
        // append that needs a fresh segment merge-evicts instead.
        self.capacity = bytes;
        self.max_segments = (bytes / self.seg_size).max(2);
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            len: self.len,
            value_bytes: self.live_value_bytes,
            used_bytes: self.used_bytes(),
            evictions: self.evictions,
            expirations: self.expirations,
            evicted_bytes: self.evicted_bytes,
            expired_bytes: self.expired_bytes,
            segments_expired: self.segments_expired,
            seg_merges: self.seg_merges,
        }
    }

    fn freeze(&mut self) {
        self.frozen = true;
    }

    fn thaw(&mut self) {
        self.frozen = false;
    }

    fn is_frozen(&self) -> bool {
        self.frozen
    }

    fn partition_count(&self) -> usize {
        SEG_PARTITIONS
    }

    fn partition_of(&self, key: &[u8]) -> usize {
        (bucket_hash(key) & (SEG_PARTITIONS as u64 - 1)) as usize
    }

    fn drain_partition(&mut self, p: usize) -> Vec<(Box<[u8]>, Vec<u8>, u64)> {
        let keys: Vec<Box<[u8]>> = self
            .index
            .keys()
            .filter(|k| self.partition_of(k) == p)
            .cloned()
            .collect();
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let loc = self.index[&key];
            let h = self.header_at(loc);
            let value = self.value_at(loc).to_vec();
            self.index.remove(&key);
            self.mark_dead(loc);
            out.push((key, value, h.expiry_ms));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_delete_ttl_roundtrip() {
        let mut e = SegEngine::new(usize::MAX);
        assert_eq!(e.set(b"k", b"v1", 0, 0), Ok(SetOutcome::Inserted));
        assert_eq!(e.get(b"k", 0).expect("hit").as_ref(), b"v1");
        assert_eq!(e.set(b"k", b"v2", 0, 0), Ok(SetOutcome::Updated));
        assert_eq!(e.get(b"k", 0).expect("hit").as_ref(), b"v2");
        e.set(b"ttl", b"v", 0, 1_000).expect("set");
        assert!(e.get(b"ttl", 999).is_some());
        assert!(e.get(b"ttl", 1_000).is_none(), "expired at t=1000");
        assert_eq!(e.set(b"ttl", b"w", 2_000, 0), Ok(SetOutcome::Inserted));
        assert!(e.delete(b"k", 0));
        assert!(!e.delete(b"k", 0));
        assert_eq!(e.len(), 1);
        assert_eq!(e.stats().expirations, 1);
        assert!(e.incr(b"missing", 1, 0) == Ok(None));
        e.set(b"n", b"41", 0, 0).expect("set");
        assert_eq!(e.incr(b"n", 1, 0), Ok(Some(42)));
        assert_eq!(e.concat(b"n", b"!", false, 0), Ok(Some(3)));
    }

    #[test]
    fn rejects_oversize_key_and_value() {
        let mut e = SegEngine::new(usize::MAX);
        let long_key = vec![b'k'; MAX_KEY_LEN + 1];
        assert_eq!(
            e.set(&long_key, b"v", 0, 0),
            Err(CacheError::KeyTooLong(MAX_KEY_LEN + 1))
        );
        let long_val = vec![0u8; MAX_VALUE_LEN + 1];
        assert_eq!(
            e.set(b"k", &long_val, 0, 0),
            Err(CacheError::ValueTooLong(MAX_VALUE_LEN + 1))
        );
        // A maximal object fits the unbounded geometry.
        let max_key = vec![b'k'; MAX_KEY_LEN];
        let max_val = vec![0u8; MAX_VALUE_LEN];
        assert_eq!(e.set(&max_key, &max_val, 0, 0), Ok(SetOutcome::Inserted));
    }

    #[test]
    fn whole_segment_expiry_frees_all_bucket_bytes() {
        let mut e = SegEngine::with_geometry(1 << 20, 4 * 1024, 16);
        // One TTL cohort that all expires by t=5000, plus no-TTL keys
        // that must survive.
        for i in 0..200u32 {
            e.set(
                format!("ttl{i}").as_bytes(),
                &[7u8; 40],
                0,
                4_000 + u64::from(i),
            )
            .expect("set");
        }
        for i in 0..50u32 {
            e.set(format!("keep{i}").as_bytes(), &[9u8; 40], 0, 0)
                .expect("set");
        }
        let before = e.stats();
        assert_eq!(before.len, 250);
        assert!(before.value_bytes >= 250 * 40);
        let ttl_segments = e.allocated_segments();
        assert!(ttl_segments > 2, "cohort spans several segments");

        e.maintain(10_000);

        let after = e.stats();
        assert_eq!(after.len, 50, "only no-TTL keys survive");
        assert_eq!(after.value_bytes, 50 * 40, "every expired byte freed");
        assert_eq!(after.expirations, 200);
        assert_eq!(after.expired_bytes, 200 * 40);
        assert!(
            after.segments_expired >= 2,
            "whole segments reclaimed, got {}",
            after.segments_expired
        );
        for i in 0..50u32 {
            assert!(e.contains(format!("keep{i}").as_bytes(), 10_000), "keep{i}");
        }
    }

    #[test]
    fn merge_eviction_retains_hot_keys() {
        // 4 segments of 4 KiB: ~64 objects of 64 B each in total.
        let mut e = SegEngine::with_geometry(16 * 1024, 4 * 1024, 4);
        for i in 0..30u32 {
            e.set(format!("k{i:03}").as_bytes(), &[1u8; 42], 0, 0)
                .expect("set");
        }
        // Heat up a handful of keys.
        let hot: Vec<String> = (0..5).map(|i| format!("k{i:03}")).collect();
        for _ in 0..50 {
            for k in &hot {
                assert!(e.get(k.as_bytes(), 0).is_some());
            }
        }
        // Keep inserting until merges must have happened: 4 segments of
        // 4 KiB hold ~264 of these 62-byte objects, so 600 inserts
        // overrun the budget several times over.
        for i in 30..600u32 {
            e.set(format!("k{i:03}").as_bytes(), &[1u8; 42], 0, 0)
                .expect("set");
        }
        let st = e.stats();
        assert!(st.seg_merges > 0, "merges ran");
        assert!(st.evictions > 0, "cold objects were dropped");
        for k in &hot {
            assert!(
                e.contains(k.as_bytes(), 0),
                "hot key {k} must survive merge-based eviction"
            );
        }
    }

    #[test]
    fn touch_widens_segment_bound_safely() {
        let mut e = SegEngine::with_geometry(1 << 20, 4 * 1024, 16);
        e.set(b"a", b"v", 0, 2_000).expect("set");
        e.set(b"b", b"v", 0, 2_000).expect("set");
        // Extend `a` past the cohort expiry; the segment must not
        // whole-expire while `a` is live.
        assert!(e.touch(b"a", 0, 50_000));
        e.maintain(10_000);
        assert!(e.contains(b"a", 10_000), "touched key survives");
        assert!(!e.contains(b"b", 10_000), "untouched key expired");
        // Touch to no-expiry pins the segment out of whole-expiry.
        assert!(e.touch(b"a", 10_000, 0));
        e.maintain(u64::MAX);
        assert!(e.contains(b"a", 100_000));
    }

    #[test]
    fn drain_partitions_move_everything_once() {
        let mut e = SegEngine::new(usize::MAX);
        for i in 0..300u32 {
            e.set(format!("k{i}").as_bytes(), &i.to_le_bytes(), 0, 5_000)
                .expect("set");
        }
        e.freeze();
        let mut moved = Vec::new();
        for p in 0..e.partition_count() {
            moved.extend(e.drain_partition(p));
        }
        e.thaw();
        assert_eq!(moved.len(), 300);
        assert!(e.is_empty());
        assert_eq!(e.stats().value_bytes, 0);
        let uniq: std::collections::HashSet<_> = moved.iter().map(|(k, _, _)| k.clone()).collect();
        assert_eq!(uniq.len(), 300);
        for (_, _, exp) in &moved {
            assert_eq!(*exp, 5_000, "expiry travels with the object");
        }
    }

    #[test]
    fn small_budget_evicts_instead_of_erroring() {
        let mut e = SegEngine::with_geometry(8 * 1024, 4 * 1024, 2);
        for i in 0..500u32 {
            e.set(format!("k{i}").as_bytes(), &[0u8; 100], 0, 0)
                .expect("set always succeeds under eviction");
        }
        assert!(e.stats().evictions > 0);
        assert!(e.len() > 0);
        assert!(e.contains(b"k499", 0), "newest write survives");
    }
}
