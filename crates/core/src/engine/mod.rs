//! Pluggable storage engines.
//!
//! A storage engine owns everything between the cachelet's op surface and
//! raw memory: indexing, eviction policy, TTL expiry, and byte accounting.
//! [`crate::store::ValueStore`] stays underneath as the *allocator*
//! abstraction (the Figure-8 ablation); [`Engine`] sits above it and is
//! the unit the server selects per worker (`--engine slab|seg`).
//!
//! Two engines ship today:
//!
//! - [`slab_lru`] — the paper's design: the single-writer
//!   [`crate::table::HashTable`] (open chaining + intrusive LRU) over a
//!   [`crate::store::ValueStore`].
//! - [`seg`] — a Segcache-style segment-structured engine: TTL-bucketed
//!   append-only segments with proactive whole-segment expiry and
//!   merge-based eviction.
//!
//! ## Observable semantics contract
//!
//! Engines may differ in *when* they physically reclaim an expired
//! object (per-entry lazily vs whole segments at once), so every
//! observable result is defined over **live** state only: an expired
//! entry behaves exactly like an absent one for `get`, `contains`,
//! `touch`, `delete`, `add`, `replace`, and for the
//! `Inserted`/`Updated` outcome of `set`. The differential proptest in
//! `tests/engine_differential.rs` holds both engines to this contract.

pub mod seg;
pub mod slab_lru;

pub use seg::SegEngine;
pub use slab_lru::SlabLru;

use crate::table::SetOutcome;
use crate::types::{CacheError, TenantId, Value};
use std::fmt;

/// Which storage engine a worker runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Slab allocator + hash table + LRU (the paper's design).
    #[default]
    SlabLru,
    /// Segment-structured, Segcache-style.
    Seg,
}

impl EngineKind {
    /// Stable CLI/report label.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::SlabLru => "slab",
            EngineKind::Seg => "seg",
        }
    }

    /// Parses a CLI label (`slab` or `seg`, with a few aliases).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "slab" | "slab_lru" | "slab-lru" | "lru" => Some(EngineKind::SlabLru),
            "seg" | "segcache" | "segment" => Some(EngineKind::Seg),
            _ => None,
        }
    }

    /// Engine selected by the `MBAL_ENGINE` environment variable, or the
    /// default ([`EngineKind::SlabLru`]) when unset/unrecognized. CI uses
    /// this to run the whole test suite under each engine.
    pub fn from_env() -> Self {
        std::env::var("MBAL_ENGINE")
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or_default()
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cumulative engine statistics. Counters are monotone over the life of
/// the engine; `len`/`value_bytes`/`used_bytes` are point-in-time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Live (unexpired-or-not-yet-reclaimed) entries.
    pub len: usize,
    /// Bytes of stored values.
    pub value_bytes: usize,
    /// Total bytes charged (values + per-object metadata).
    pub used_bytes: usize,
    /// Entries dropped by the eviction policy.
    pub evictions: u64,
    /// Entries dropped because they had expired.
    pub expirations: u64,
    /// Value bytes released by eviction.
    pub evicted_bytes: u64,
    /// Value bytes released by expiry.
    pub expired_bytes: u64,
    /// Whole segments reclaimed by proactive TTL-bucket expiry
    /// (seg engine only).
    pub segments_expired: u64,
    /// Merge-based eviction passes (seg engine only).
    pub seg_merges: u64,
}

impl EngineStats {
    /// Counter-wise delta since `base` (saturating); point-in-time
    /// fields are taken from `self`.
    pub fn counter_delta(&self, base: &EngineStats) -> EngineStats {
        EngineStats {
            len: self.len,
            value_bytes: self.value_bytes,
            used_bytes: self.used_bytes,
            evictions: self.evictions.saturating_sub(base.evictions),
            expirations: self.expirations.saturating_sub(base.expirations),
            evicted_bytes: self.evicted_bytes.saturating_sub(base.evicted_bytes),
            expired_bytes: self.expired_bytes.saturating_sub(base.expired_bytes),
            segments_expired: self.segments_expired.saturating_sub(base.segments_expired),
            seg_merges: self.seg_merges.saturating_sub(base.seg_merges),
        }
    }
}

/// One tenant's slice of a multiplexing engine: point-in-time occupancy
/// against its arbitrated budget, plus reclamation counters, as surfaced
/// by [`Engine::tenant_usage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantUsage {
    /// The tenant this row describes.
    pub tenant: TenantId,
    /// Live entries in the tenant's namespace.
    pub len: usize,
    /// Bytes charged to the tenant (values + metadata).
    pub used_bytes: usize,
    /// The tenant's current arbitrated byte budget.
    pub budget_bytes: usize,
    /// Entries evicted from this tenant's namespace (always by its own
    /// pressure — isolation is structural).
    pub evictions: u64,
    /// Value bytes released by those evictions.
    pub evicted_bytes: u64,
}

/// A pluggable storage engine: index + eviction + expiry + accounting.
///
/// Engines are single-writer like everything else in a cachelet: all
/// methods take `&mut self` (even logical reads, which may reclaim
/// expired entries and update recency/frequency state) and implementors
/// only need to be [`Send`] so a unit can migrate between worker
/// threads.
pub trait Engine: Send + fmt::Debug {
    /// Looks up `key`, refreshing its recency/frequency state. Expired
    /// entries are reclaimed lazily and reported as a miss.
    ///
    /// Returns a reference-counted [`Value`]: engines whose storage can
    /// be shared (the `Bytes`-backed heap store) serve it zero-copy;
    /// arena-backed engines copy once here and never again downstream.
    fn get(&mut self, key: &[u8], now_ms: u64) -> Option<Value>;

    /// Inserts or replaces `key` → `value`. `expiry_ms` of 0 means no
    /// expiry. Replacing an *expired* entry reports `Inserted`.
    fn set(
        &mut self,
        key: &[u8],
        value: &[u8],
        now_ms: u64,
        expiry_ms: u64,
    ) -> Result<SetOutcome, CacheError>;

    /// Deletes `key`, returning `true` if it was present and unexpired.
    fn delete(&mut self, key: &[u8], now_ms: u64) -> bool;

    /// Returns `true` if `key` is present and unexpired, reclaiming an
    /// expired entry it finds.
    fn contains(&mut self, key: &[u8], now_ms: u64) -> bool;

    /// Updates the expiry of a live key (Memcached `touch`); `true` on
    /// success. An expired entry is reclaimed and reported absent.
    fn touch(&mut self, key: &[u8], now_ms: u64, expiry_ms: u64) -> bool;

    /// Reads a live value and its current expiry for a read-modify-write
    /// (`concat`/`incr`), without refreshing recency. Expired entries
    /// are reclaimed and reported as a miss.
    fn read_for_update(&mut self, key: &[u8], now_ms: u64) -> Option<(Vec<u8>, u64)>;

    /// Stores `key` only if absent (Memcached `add`).
    fn add(
        &mut self,
        key: &[u8],
        value: &[u8],
        now_ms: u64,
        expiry_ms: u64,
    ) -> Result<bool, CacheError> {
        if self.contains(key, now_ms) {
            return Ok(false);
        }
        self.set(key, value, now_ms, expiry_ms)?;
        Ok(true)
    }

    /// Stores `key` only if present (Memcached `replace`).
    fn replace(
        &mut self,
        key: &[u8],
        value: &[u8],
        now_ms: u64,
        expiry_ms: u64,
    ) -> Result<bool, CacheError> {
        if !self.contains(key, now_ms) {
            return Ok(false);
        }
        self.set(key, value, now_ms, expiry_ms)?;
        Ok(true)
    }

    /// Appends (or with `front`, prepends) to an existing value,
    /// preserving its expiry. Returns the new length, `Ok(None)` on a
    /// miss.
    fn concat(
        &mut self,
        key: &[u8],
        suffix: &[u8],
        front: bool,
        now_ms: u64,
    ) -> Result<Option<usize>, CacheError> {
        let Some((current, expiry)) = self.read_for_update(key, now_ms) else {
            return Ok(None);
        };
        let mut combined = Vec::with_capacity(current.len() + suffix.len());
        if front {
            combined.extend_from_slice(suffix);
            combined.extend_from_slice(&current);
        } else {
            combined.extend_from_slice(&current);
            combined.extend_from_slice(suffix);
        }
        self.set(key, &combined, now_ms, expiry)?;
        Ok(Some(combined.len()))
    }

    /// Adds `delta` to an ASCII-decimal `u64` value, saturating at the
    /// ends, preserving expiry. Returns the new value, `Ok(None)` on a
    /// miss, `Err` on a non-numeric value.
    fn incr(&mut self, key: &[u8], delta: i64, now_ms: u64) -> Result<Option<u64>, CacheError> {
        let Some((current, expiry)) = self.read_for_update(key, now_ms) else {
            return Ok(None);
        };
        let text = std::str::from_utf8(&current)
            .map_err(|_| CacheError::Internal("counter is not valid UTF-8"))?;
        let n: u64 = text
            .trim()
            .parse()
            .map_err(|_| CacheError::Internal("counter is not a decimal number"))?;
        let new = if delta >= 0 {
            n.saturating_add(delta as u64)
        } else {
            n.saturating_sub(delta.unsigned_abs())
        };
        self.set(key, new.to_string().as_bytes(), now_ms, expiry)?;
        Ok(Some(new))
    }

    /// Background maintenance: proactive expiry (bounded work). Called
    /// once per epoch by the worker.
    fn maintain(&mut self, now_ms: u64);

    /// Live entry count.
    fn len(&self) -> usize;

    /// Returns `true` when the engine holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes charged to this engine (values + metadata overhead).
    fn used_bytes(&self) -> usize;

    /// Byte budget, `usize::MAX` when unbounded or externally governed.
    fn capacity_bytes(&self) -> usize;

    /// Adjusts the byte budget at runtime (memory arbitration moves
    /// budget between tenants each epoch). Enforcement is lazy: an
    /// engine shrunk below its current usage converges by evicting on
    /// subsequent inserts rather than reclaiming immediately. Engines
    /// whose budget is externally governed ignore the call.
    fn set_capacity_bytes(&mut self, _bytes: usize) {}

    // --- multi-tenant surface (implemented by tenant multiplexers) ---

    /// Per-tenant occupancy/budget breakdown. Non-empty only for engines
    /// that multiplex tenants (`mbal-tenant`'s `TenantEngine`); plain
    /// single-namespace engines report nothing.
    fn tenant_usage(&self) -> Vec<TenantUsage> {
        Vec::new()
    }

    /// Sets one tenant's byte budget; `true` if the engine routes
    /// tenants and applied the change. Plain engines refuse.
    fn set_tenant_budget(&mut self, _tenant: TenantId, _bytes: usize) -> bool {
        false
    }

    /// Point-in-time statistics snapshot.
    fn stats(&self) -> EngineStats;

    // --- migration surface (§3.4: per-partition, Write-Invalidate) ---

    /// Freezes partition indices so [`Engine::partition_of`] stays
    /// stable while a drain is in flight.
    fn freeze(&mut self);

    /// Thaws partition indices after a finished/aborted migration.
    fn thaw(&mut self);

    /// Whether partitions are currently frozen.
    fn is_frozen(&self) -> bool;

    /// Number of drainable partitions (stable while frozen).
    fn partition_count(&self) -> usize;

    /// The partition `key` maps to (stable while frozen).
    fn partition_of(&self, key: &[u8]) -> usize;

    /// Removes every entry of partition `p`, returning `(key, value,
    /// expiry_ms)` triples — the unit of migration transfer. Entries are
    /// moved with their remaining TTL, expired or not.
    fn drain_partition(&mut self, p: usize) -> Vec<(Box<[u8]>, Vec<u8>, u64)>;
}

/// Builds a boxed engine of the given kind.
///
/// `capacity_bytes` is the engine's byte budget. The slab engine ignores
/// it here (its budget is enforced by the [`crate::store::ValueStore`]
/// it is built over — pass the store explicitly via
/// [`SlabLru::new`] for that); this helper builds the slab engine over
/// an unbounded heap store and is what tests and single-process tools
/// use. Servers construct engines through `CacheUnit` so the slab
/// variant draws from the shared global pool.
pub fn build_engine(kind: EngineKind, capacity_bytes: usize) -> Box<dyn Engine> {
    match kind {
        EngineKind::SlabLru => {
            Box::new(SlabLru::new(crate::store::MallocStore::new(capacity_bytes)))
        }
        EngineKind::Seg => Box::new(SegEngine::new(capacity_bytes)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_roundtrip() {
        for k in [EngineKind::SlabLru, EngineKind::Seg] {
            assert_eq!(EngineKind::parse(k.label()), Some(k));
        }
        assert_eq!(EngineKind::parse("segcache"), Some(EngineKind::Seg));
        assert_eq!(EngineKind::parse("bogus"), None);
        assert_eq!(EngineKind::default(), EngineKind::SlabLru);
    }

    #[test]
    fn stats_counter_delta_saturates() {
        let a = EngineStats {
            evictions: 5,
            expired_bytes: 100,
            ..EngineStats::default()
        };
        let b = EngineStats {
            evictions: 7,
            len: 3,
            ..EngineStats::default()
        };
        let d = b.counter_delta(&a);
        assert_eq!(d.evictions, 2);
        assert_eq!(d.expired_bytes, 0, "saturates, never underflows");
        assert_eq!(d.len, 3, "point-in-time fields come from self");
    }

    #[test]
    fn build_engine_produces_both_kinds() {
        for kind in [EngineKind::SlabLru, EngineKind::Seg] {
            let mut e = build_engine(kind, 1 << 20);
            e.set(b"k", b"v", 0, 0).expect("set");
            assert_eq!(e.get(b"k", 0).expect("hit").as_ref(), b"v");
            assert_eq!(e.len(), 1);
        }
    }
}
