//! The single-writer open-chaining hash table with an intrusive LRU list.
//!
//! Every cachelet owns one [`HashTable`]. Tables are only ever touched by
//! the worker thread that owns the cachelet, so no operation takes a lock —
//! this is the "fine-grained, partitioned, lockless design" of §2.2.
//!
//! Entries live in a slab (`Vec<Entry>`) addressed by `u32` handles; chains
//! and the LRU list are threaded through the slab with handle links rather
//! than pointers, which keeps the implementation in safe Rust while
//! preserving the intrusive-list performance shape. Values live in a
//! [`ValueStore`]; the table stores only [`ValRef`] handles.

use crate::hash::bucket_hash;
use crate::store::{ValRef, ValueStore};
use crate::types::{CacheError, MAX_KEY_LEN, MAX_VALUE_LEN};
use bytes::Bytes;

/// Sentinel "null" handle for chain and LRU links.
const NIL: u32 = u32::MAX;

/// Reads a value as shared [`Bytes`]: zero-copy where the backend
/// supports it, one copy at the engine boundary otherwise.
fn shared_read<S: ValueStore>(store: &S, val: &ValRef) -> Bytes {
    store
        .read_shared(val)
        .unwrap_or_else(|| Bytes::from(store.read(val).into_owned()))
}

/// Approximate per-entry bookkeeping overhead in bytes, charged to memory
/// accounting (entry struct + bucket share).
pub const ENTRY_OVERHEAD: usize = 64;

/// Outcome of a successful `set`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOutcome {
    /// The key was not present and has been inserted.
    Inserted,
    /// The key existed and its value was replaced.
    Updated,
}

#[derive(Debug)]
struct Entry {
    key: Box<[u8]>,
    hash: u64,
    val: ValRef,
    /// Next entry in the bucket chain.
    next: u32,
    /// Towards most-recently-used.
    lru_prev: u32,
    /// Towards least-recently-used.
    lru_next: u32,
    /// Absolute expiry in milliseconds; 0 means no expiry.
    expiry_ms: u64,
}

/// Point-in-time table statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Live entries.
    pub len: usize,
    /// Bucket count.
    pub buckets: usize,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries dropped because they had expired.
    pub expirations: u64,
    /// Value bytes released by LRU eviction.
    pub evicted_bytes: u64,
    /// Value bytes released by expiry (lazy or purged).
    pub expired_bytes: u64,
    /// Number of rehash operations performed.
    pub rehashes: u64,
}

/// A single-writer hash table with LRU replacement.
#[derive(Debug)]
pub struct HashTable {
    buckets: Vec<u32>,
    entries: Vec<Entry>,
    free_entries: Vec<u32>,
    len: usize,
    lru_head: u32,
    lru_tail: u32,
    key_bytes: usize,
    evictions: u64,
    expirations: u64,
    evicted_bytes: u64,
    expired_bytes: u64,
    rehashes: u64,
    /// While `true`, rehashing is suppressed so bucket indices stay
    /// stable — required during per-bucket migration (§3.4), where "which
    /// bucket has already moved" is tracked by index.
    frozen: bool,
}

impl HashTable {
    /// Creates a table with capacity for roughly `capacity_hint` entries
    /// before the first rehash.
    pub fn new(capacity_hint: usize) -> Self {
        let buckets = (capacity_hint.max(8) * 4 / 3).next_power_of_two();
        Self {
            buckets: vec![NIL; buckets],
            entries: Vec::new(),
            free_entries: Vec::new(),
            len: 0,
            lru_head: NIL,
            lru_tail: NIL,
            key_bytes: 0,
            evictions: 0,
            expirations: 0,
            evicted_bytes: 0,
            expired_bytes: 0,
            rehashes: 0,
            frozen: false,
        }
    }

    /// Freezes (or thaws) bucket indices: while frozen, the table will
    /// not rehash, so [`HashTable::bucket_of`] stays stable. Used by the
    /// migration protocol.
    pub fn set_frozen(&mut self, frozen: bool) {
        self.frozen = frozen;
    }

    /// Whether bucket indices are currently frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of buckets currently allocated.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket index `key` maps to (used by the per-bucket migration
    /// protocol of §3.4 to decide whether a request hits an in-flight
    /// bucket).
    pub fn bucket_of(&self, key: &[u8]) -> usize {
        (bucket_hash(key) & (self.buckets.len() as u64 - 1)) as usize
    }

    /// Bytes charged to this table: keys plus per-entry overhead. Value
    /// bytes are accounted by the [`ValueStore`].
    pub fn overhead_bytes(&self) -> usize {
        self.key_bytes + self.len * ENTRY_OVERHEAD
    }

    /// Snapshot of the table statistics.
    pub fn stats(&self) -> TableStats {
        TableStats {
            len: self.len,
            buckets: self.buckets.len(),
            evictions: self.evictions,
            expirations: self.expirations,
            evicted_bytes: self.evicted_bytes,
            expired_bytes: self.expired_bytes,
            rehashes: self.rehashes,
        }
    }

    fn find(&self, key: &[u8], hash: u64) -> Option<u32> {
        let mut idx = self.buckets[(hash & (self.buckets.len() as u64 - 1)) as usize];
        while idx != NIL {
            let e = &self.entries[idx as usize];
            if e.hash == hash && e.key.as_ref() == key {
                return Some(idx);
            }
            idx = e.next;
        }
        None
    }

    fn lru_unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let e = &self.entries[idx as usize];
            (e.lru_prev, e.lru_next)
        };
        if prev != NIL {
            self.entries[prev as usize].lru_next = next;
        } else {
            self.lru_head = next;
        }
        if next != NIL {
            self.entries[next as usize].lru_prev = prev;
        } else {
            self.lru_tail = prev;
        }
    }

    fn lru_push_front(&mut self, idx: u32) {
        let old_head = self.lru_head;
        {
            let e = &mut self.entries[idx as usize];
            e.lru_prev = NIL;
            e.lru_next = old_head;
        }
        if old_head != NIL {
            self.entries[old_head as usize].lru_prev = idx;
        } else {
            self.lru_tail = idx;
        }
        self.lru_head = idx;
    }

    fn chain_unlink(&mut self, idx: u32) {
        let hash = self.entries[idx as usize].hash;
        let b = (hash & (self.buckets.len() as u64 - 1)) as usize;
        let mut cur = self.buckets[b];
        if cur == idx {
            self.buckets[b] = self.entries[idx as usize].next;
            return;
        }
        while cur != NIL {
            let next = self.entries[cur as usize].next;
            if next == idx {
                self.entries[cur as usize].next = self.entries[idx as usize].next;
                return;
            }
            cur = next;
        }
        debug_assert!(false, "entry missing from its chain");
    }

    /// Removes entry `idx` from all structures and releases its value.
    fn remove_entry<S: ValueStore>(&mut self, idx: u32, store: &mut S) -> Box<[u8]> {
        self.chain_unlink(idx);
        self.lru_unlink(idx);
        let e = &mut self.entries[idx as usize];
        let key = std::mem::take(&mut e.key);
        let val = e.val;
        e.next = NIL;
        self.key_bytes -= key.len();
        self.len -= 1;
        self.free_entries.push(idx);
        store.free(val);
        key
    }

    fn is_expired(&self, idx: u32, now_ms: u64) -> bool {
        let exp = self.entries[idx as usize].expiry_ms;
        exp != 0 && exp <= now_ms
    }

    /// Removes an expired entry, freeing its value bytes and charging
    /// the expiration counters. Every path that discovers an expired
    /// entry (`get`, `contains`, `touch`, `set`, `delete`, `concat`,
    /// `incr`, `purge_expired`) reclaims through here, so no path leaks
    /// value bytes or undercounts `expirations`.
    fn expire_entry<S: ValueStore>(&mut self, idx: u32, store: &mut S) {
        self.expired_bytes += self.entries[idx as usize].val.len() as u64;
        self.remove_entry(idx, store);
        self.expirations += 1;
    }

    /// Looks up `key`, refreshing its LRU position.
    ///
    /// Expired entries are removed lazily and reported as a miss.
    ///
    /// Returns a reference-counted [`Bytes`] view: backends that can
    /// share their storage ([`ValueStore::read_shared`]) serve it with a
    /// refcount bump and zero copies; arena-backed stores copy once here
    /// at the engine boundary.
    pub fn get<S: ValueStore>(&mut self, key: &[u8], store: &mut S, now_ms: u64) -> Option<Bytes> {
        let hash = bucket_hash(key);
        let idx = self.find(key, hash)?;
        if self.is_expired(idx, now_ms) {
            self.expire_entry(idx, store);
            return None;
        }
        self.lru_unlink(idx);
        self.lru_push_front(idx);
        let val = self.entries[idx as usize].val;
        Some(shared_read(store, &val))
    }

    /// Looks up `key` without touching the LRU (used by migration reads).
    pub fn peek<S: ValueStore>(&self, key: &[u8], store: &S, now_ms: u64) -> Option<Bytes> {
        let hash = bucket_hash(key);
        let idx = self.find(key, hash)?;
        if self.is_expired(idx, now_ms) {
            return None;
        }
        Some(shared_read(store, &self.entries[idx as usize].val))
    }

    /// Returns `true` if `key` is present and unexpired.
    ///
    /// An expired entry discovered here is reclaimed immediately (its
    /// value bytes freed, `expirations` charged) just like on the `get`
    /// path, so repeated membership probes cannot pin dead values.
    pub fn contains<S: ValueStore>(&mut self, key: &[u8], store: &mut S, now_ms: u64) -> bool {
        let hash = bucket_hash(key);
        match self.find(key, hash) {
            Some(idx) if self.is_expired(idx, now_ms) => {
                self.expire_entry(idx, store);
                false
            }
            Some(_) => true,
            None => false,
        }
    }

    /// Inserts or replaces `key` → `value`, evicting LRU entries as needed
    /// to make room.
    ///
    /// `expiry_ms` of 0 means no expiry. Returns whether the key was
    /// inserted or updated.
    pub fn set<S: ValueStore>(
        &mut self,
        key: &[u8],
        value: &[u8],
        store: &mut S,
        now_ms: u64,
        expiry_ms: u64,
    ) -> Result<SetOutcome, CacheError> {
        if key.len() > MAX_KEY_LEN {
            return Err(CacheError::KeyTooLong(key.len()));
        }
        if value.len() > MAX_VALUE_LEN {
            return Err(CacheError::ValueTooLong(value.len()));
        }
        let hash = bucket_hash(key);
        let existed = if let Some(idx) = self.find(key, hash) {
            if self.is_expired(idx, now_ms) {
                // An expired entry counts as absent: reclaim it and
                // report the set as an insert, so the outcome depends
                // only on live state (engines that physically remove
                // expired entries at different times must still agree).
                self.expire_entry(idx, store);
                false
            } else {
                // Replace: free the old value first so in-place updates
                // of the same size recycle their own slot.
                self.remove_entry(idx, store);
                true
            }
        } else {
            false
        };

        // Allocate, evicting from our own LRU tail on memory pressure.
        let val = loop {
            match store.alloc_write(value) {
                Some(v) => break v,
                None => {
                    if !self.evict_one(store) {
                        return Err(CacheError::OutOfMemory);
                    }
                }
            }
        };

        self.insert_fresh(key, hash, val, expiry_ms);
        Ok(if existed {
            SetOutcome::Updated
        } else {
            SetOutcome::Inserted
        })
    }

    fn insert_fresh(&mut self, key: &[u8], hash: u64, val: ValRef, expiry_ms: u64) {
        if !self.frozen && self.len + 1 > self.buckets.len() * 3 / 4 {
            self.rehash(self.buckets.len() * 2);
        }
        let idx = match self.free_entries.pop() {
            Some(i) => {
                let e = &mut self.entries[i as usize];
                e.key = key.into();
                e.hash = hash;
                e.val = val;
                e.expiry_ms = expiry_ms;
                i
            }
            None => {
                self.entries.push(Entry {
                    key: key.into(),
                    hash,
                    val,
                    next: NIL,
                    lru_prev: NIL,
                    lru_next: NIL,
                    expiry_ms,
                });
                (self.entries.len() - 1) as u32
            }
        };
        let b = (hash & (self.buckets.len() as u64 - 1)) as usize;
        self.entries[idx as usize].next = self.buckets[b];
        self.buckets[b] = idx;
        self.lru_push_front(idx);
        self.key_bytes += key.len();
        self.len += 1;
    }

    /// Stores `key` only if it is absent (Memcached `add`). Returns
    /// `Ok(true)` if stored, `Ok(false)` if the key already existed.
    pub fn add<S: ValueStore>(
        &mut self,
        key: &[u8],
        value: &[u8],
        store: &mut S,
        now_ms: u64,
        expiry_ms: u64,
    ) -> Result<bool, CacheError> {
        if self.contains(key, store, now_ms) {
            return Ok(false);
        }
        self.set(key, value, store, now_ms, expiry_ms)?;
        Ok(true)
    }

    /// Stores `key` only if it is present (Memcached `replace`). Returns
    /// `Ok(true)` if replaced, `Ok(false)` on a miss.
    pub fn replace<S: ValueStore>(
        &mut self,
        key: &[u8],
        value: &[u8],
        store: &mut S,
        now_ms: u64,
        expiry_ms: u64,
    ) -> Result<bool, CacheError> {
        if !self.contains(key, store, now_ms) {
            return Ok(false);
        }
        self.set(key, value, store, now_ms, expiry_ms)?;
        Ok(true)
    }

    /// Appends (or, with `front`, prepends) `suffix` to an existing
    /// value. Returns the new length, or `Ok(None)` on a miss.
    pub fn concat<S: ValueStore>(
        &mut self,
        key: &[u8],
        suffix: &[u8],
        front: bool,
        store: &mut S,
        now_ms: u64,
    ) -> Result<Option<usize>, CacheError> {
        let (current, expiry) = {
            let hash = bucket_hash(key);
            let Some(idx) = self.find(key, hash) else {
                return Ok(None);
            };
            if self.is_expired(idx, now_ms) {
                self.expire_entry(idx, store);
                return Ok(None);
            }
            let e = &self.entries[idx as usize];
            (store.read(&e.val).into_owned(), e.expiry_ms)
        };
        let mut combined = Vec::with_capacity(current.len() + suffix.len());
        if front {
            combined.extend_from_slice(suffix);
            combined.extend_from_slice(&current);
        } else {
            combined.extend_from_slice(&current);
            combined.extend_from_slice(suffix);
        }
        self.set(key, &combined, store, now_ms, expiry)?;
        Ok(Some(combined.len()))
    }

    /// Adds `delta` to a numeric (ASCII decimal `u64`) value
    /// (Memcached `incr`/`decr` with a negative delta saturating at 0).
    /// Returns the new value, `Ok(None)` on a miss.
    pub fn incr<S: ValueStore>(
        &mut self,
        key: &[u8],
        delta: i64,
        store: &mut S,
        now_ms: u64,
    ) -> Result<Option<u64>, CacheError> {
        let (current, expiry) = {
            let hash = bucket_hash(key);
            let Some(idx) = self.find(key, hash) else {
                return Ok(None);
            };
            if self.is_expired(idx, now_ms) {
                self.expire_entry(idx, store);
                return Ok(None);
            }
            let e = &self.entries[idx as usize];
            (store.read(&e.val).into_owned(), e.expiry_ms)
        };
        let text = std::str::from_utf8(&current)
            .map_err(|_| CacheError::Internal("counter is not valid UTF-8"))?;
        let n: u64 = text
            .trim()
            .parse()
            .map_err(|_| CacheError::Internal("counter is not a decimal number"))?;
        let new = if delta >= 0 {
            n.saturating_add(delta as u64)
        } else {
            n.saturating_sub(delta.unsigned_abs())
        };
        self.set(key, new.to_string().as_bytes(), store, now_ms, expiry)?;
        Ok(Some(new))
    }

    /// Reads a live value and its expiry for a read-modify-write
    /// (`concat`/`incr`-style) path, without refreshing the LRU.
    /// An expired entry is reclaimed and reported as a miss.
    pub fn read_for_update<S: ValueStore>(
        &mut self,
        key: &[u8],
        store: &mut S,
        now_ms: u64,
    ) -> Option<(Vec<u8>, u64)> {
        let hash = bucket_hash(key);
        let idx = self.find(key, hash)?;
        if self.is_expired(idx, now_ms) {
            self.expire_entry(idx, store);
            return None;
        }
        let e = &self.entries[idx as usize];
        Some((store.read(&e.val).into_owned(), e.expiry_ms))
    }

    /// Updates the expiry of an existing key (Memcached `touch`).
    /// Returns `true` if the key was present and unexpired.
    ///
    /// An expired entry discovered here is reclaimed immediately,
    /// like on the `get`/`contains` paths.
    pub fn touch<S: ValueStore>(
        &mut self,
        key: &[u8],
        store: &mut S,
        now_ms: u64,
        expiry_ms: u64,
    ) -> bool {
        let hash = bucket_hash(key);
        match self.find(key, hash) {
            Some(idx) if self.is_expired(idx, now_ms) => {
                self.expire_entry(idx, store);
                false
            }
            Some(idx) => {
                self.entries[idx as usize].expiry_ms = expiry_ms;
                true
            }
            None => false,
        }
    }

    /// Deletes `key`, returning `true` if it was present and unexpired.
    ///
    /// Deleting an already-expired entry reclaims it but reports `false`
    /// (it was logically absent), charged as an expiration — not a
    /// delete-hit.
    pub fn delete<S: ValueStore>(&mut self, key: &[u8], store: &mut S, now_ms: u64) -> bool {
        let hash = bucket_hash(key);
        match self.find(key, hash) {
            Some(idx) if self.is_expired(idx, now_ms) => {
                self.expire_entry(idx, store);
                false
            }
            Some(idx) => {
                self.remove_entry(idx, store);
                true
            }
            None => false,
        }
    }

    /// Evicts the least-recently-used entry; returns `false` on an empty
    /// table.
    pub fn evict_one<S: ValueStore>(&mut self, store: &mut S) -> bool {
        let tail = self.lru_tail;
        if tail == NIL {
            return false;
        }
        self.evicted_bytes += self.entries[tail as usize].val.len() as u64;
        self.remove_entry(tail, store);
        self.evictions += 1;
        true
    }

    /// Removes up to `limit` expired entries, returning how many were
    /// purged.
    pub fn purge_expired<S: ValueStore>(
        &mut self,
        store: &mut S,
        now_ms: u64,
        limit: usize,
    ) -> usize {
        // Walk the LRU from the tail; expired entries cluster there under
        // lease-style usage but we scan the whole list bounded by `limit`
        // visits for correctness.
        let mut purged = 0;
        let mut visited = 0;
        let mut idx = self.lru_tail;
        while idx != NIL && visited < limit {
            let prev = self.entries[idx as usize].lru_prev;
            if self.is_expired(idx, now_ms) {
                self.expire_entry(idx, store);
                purged += 1;
            }
            visited += 1;
            idx = prev;
        }
        purged
    }

    fn rehash(&mut self, new_buckets: usize) {
        let new_len = new_buckets.next_power_of_two();
        let mut buckets = vec![NIL; new_len];
        // Rebuild chains; order within a chain is irrelevant.
        let mut idx = self.lru_head;
        while idx != NIL {
            let (hash, next_lru) = {
                let e = &self.entries[idx as usize];
                (e.hash, e.lru_next)
            };
            let b = (hash & (new_len as u64 - 1)) as usize;
            self.entries[idx as usize].next = buckets[b];
            buckets[b] = idx;
            idx = next_lru;
        }
        self.buckets = buckets;
        self.rehashes += 1;
    }

    /// Keys currently stored in bucket `b` (unexpired ones included; the
    /// migrator moves them with their remaining TTL).
    pub fn keys_in_bucket(&self, b: usize) -> Vec<Box<[u8]>> {
        let mut out = Vec::new();
        let mut idx = self.buckets[b];
        while idx != NIL {
            let e = &self.entries[idx as usize];
            out.push(e.key.clone());
            idx = e.next;
        }
        out
    }

    /// Removes every entry in bucket `b`, returning `(key, value,
    /// expiry_ms)` triples — the unit of transfer for coordinated cachelet
    /// migration (§3.4).
    pub fn drain_bucket<S: ValueStore>(
        &mut self,
        b: usize,
        store: &mut S,
    ) -> Vec<(Box<[u8]>, Vec<u8>, u64)> {
        let mut out = Vec::new();
        while self.buckets[b] != NIL {
            let idx = self.buckets[b];
            let (val, expiry) = {
                let e = &self.entries[idx as usize];
                (e.val, e.expiry_ms)
            };
            let value = store.read(&val).into_owned();
            let key = self.remove_entry(idx, store);
            out.push((key, value, expiry));
        }
        out
    }

    /// Iterates `(key, value, expiry_ms)` over the whole table in LRU
    /// order (most recent first) without modifying it.
    pub fn snapshot<S: ValueStore>(&self, store: &S) -> Vec<(Box<[u8]>, Vec<u8>, u64)> {
        let mut out = Vec::with_capacity(self.len);
        let mut idx = self.lru_head;
        while idx != NIL {
            let e = &self.entries[idx as usize];
            out.push((e.key.clone(), store.read(&e.val).into_owned(), e.expiry_ms));
            idx = e.lru_next;
        }
        out
    }

    /// The key of the least-recently-used entry, if any (test/debug aid).
    pub fn lru_victim(&self) -> Option<&[u8]> {
        if self.lru_tail == NIL {
            None
        } else {
            Some(&self.entries[self.lru_tail as usize].key)
        }
    }

    /// Verifies internal invariants; used by tests and debug assertions.
    ///
    /// # Panics
    ///
    /// Panics if any chain/LRU/accounting invariant is violated.
    pub fn check_invariants(&self) {
        // Every chain entry is live and hashes into its bucket.
        let mut chained = 0;
        for (b, &head) in self.buckets.iter().enumerate() {
            let mut idx = head;
            while idx != NIL {
                let e = &self.entries[idx as usize];
                assert_eq!(
                    (e.hash & (self.buckets.len() as u64 - 1)) as usize,
                    b,
                    "entry in wrong bucket"
                );
                chained += 1;
                idx = e.next;
                assert!(chained <= self.len, "chain cycle");
            }
        }
        assert_eq!(chained, self.len, "chain count mismatch");
        // LRU list covers exactly the live entries, both directions.
        let mut fwd = 0;
        let mut idx = self.lru_head;
        let mut prev = NIL;
        while idx != NIL {
            assert_eq!(self.entries[idx as usize].lru_prev, prev, "lru prev link");
            prev = idx;
            idx = self.entries[idx as usize].lru_next;
            fwd += 1;
            assert!(fwd <= self.len, "lru cycle");
        }
        assert_eq!(fwd, self.len, "lru count mismatch");
        assert_eq!(self.lru_tail, prev, "lru tail mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MallocStore;

    fn fixture() -> (HashTable, MallocStore) {
        (HashTable::new(16), MallocStore::new(usize::MAX))
    }

    #[test]
    fn set_get_delete_roundtrip() {
        let (mut t, mut s) = fixture();
        assert_eq!(
            t.set(b"k1", b"v1", &mut s, 0, 0).expect("set"),
            SetOutcome::Inserted
        );
        assert_eq!(t.get(b"k1", &mut s, 0).expect("hit").as_ref(), b"v1");
        assert_eq!(
            t.set(b"k1", b"v2", &mut s, 0, 0).expect("set"),
            SetOutcome::Updated
        );
        assert_eq!(t.get(b"k1", &mut s, 0).expect("hit").as_ref(), b"v2");
        assert!(t.delete(b"k1", &mut s, 0));
        assert!(!t.delete(b"k1", &mut s, 0));
        assert!(t.get(b"k1", &mut s, 0).is_none());
        assert_eq!(s.used_bytes(), 0, "value storage leaked");
        t.check_invariants();
    }

    #[test]
    fn rejects_oversize_key_and_value() {
        let (mut t, mut s) = fixture();
        let long_key = vec![b'k'; MAX_KEY_LEN + 1];
        assert_eq!(
            t.set(&long_key, b"v", &mut s, 0, 0),
            Err(CacheError::KeyTooLong(MAX_KEY_LEN + 1))
        );
        let long_val = vec![0u8; MAX_VALUE_LEN + 1];
        assert_eq!(
            t.set(b"k", &long_val, &mut s, 0, 0),
            Err(CacheError::ValueTooLong(MAX_VALUE_LEN + 1))
        );
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = HashTable::new(16);
        let mut s = MallocStore::new(usize::MAX);
        for i in 0..4 {
            t.set(format!("k{i}").as_bytes(), b"v", &mut s, 0, 0)
                .expect("set");
        }
        // Touch k0 so k1 becomes the victim.
        assert!(t.get(b"k0", &mut s, 0).is_some());
        assert_eq!(t.lru_victim().expect("victim"), b"k1");
        assert!(t.evict_one(&mut s));
        assert!(!t.contains(b"k1", &mut s, 0));
        assert!(t.contains(b"k0", &mut s, 0));
        t.check_invariants();
    }

    #[test]
    fn set_evicts_under_memory_pressure() {
        let mut t = HashTable::new(16);
        // Capacity for ~4 values of 100 bytes.
        let mut s = MallocStore::new(400);
        for i in 0..8 {
            t.set(format!("k{i}").as_bytes(), &[i as u8; 100], &mut s, 0, 0)
                .expect("set with eviction");
        }
        assert_eq!(t.len(), 4);
        assert!(t.stats().evictions >= 4);
        // The most recent four survive.
        for i in 4..8 {
            assert!(
                t.contains(format!("k{i}").as_bytes(), &mut s, 0),
                "k{i} missing"
            );
        }
        t.check_invariants();
    }

    #[test]
    fn oversize_value_on_empty_table_is_oom() {
        let mut t = HashTable::new(4);
        let mut s = MallocStore::new(10);
        assert_eq!(
            t.set(b"k", &[0u8; 100], &mut s, 0, 0),
            Err(CacheError::OutOfMemory)
        );
        assert!(t.is_empty());
    }

    #[test]
    fn expiry_is_lazy_and_purgeable() {
        let (mut t, mut s) = fixture();
        t.set(b"fresh", b"v", &mut s, 0, 0).expect("set");
        t.set(b"stale", b"v", &mut s, 0, 100).expect("set");
        assert!(t.get(b"stale", &mut s, 50).is_some());
        assert!(t.get(b"stale", &mut s, 100).is_none(), "expired at t=100");
        assert_eq!(t.len(), 1);
        t.set(b"stale2", b"v", &mut s, 0, 100).expect("set");
        assert_eq!(t.purge_expired(&mut s, 200, 100), 1);
        assert!(t.contains(b"fresh", &mut s, 200));
        t.check_invariants();
    }

    #[test]
    fn grows_and_rehashes() {
        let (mut t, mut s) = fixture();
        for i in 0..10_000u32 {
            t.set(
                format!("key:{i}").as_bytes(),
                &i.to_le_bytes(),
                &mut s,
                0,
                0,
            )
            .expect("set");
        }
        assert!(t.stats().rehashes > 0);
        assert_eq!(t.len(), 10_000);
        for i in (0..10_000u32).step_by(97) {
            assert_eq!(
                t.get(format!("key:{i}").as_bytes(), &mut s, 0)
                    .expect("hit")
                    .as_ref(),
                &i.to_le_bytes()
            );
        }
        t.check_invariants();
    }

    #[test]
    fn drain_bucket_moves_everything_once() {
        let (mut t, mut s) = fixture();
        for i in 0..500u32 {
            t.set(
                format!("key:{i}").as_bytes(),
                &i.to_le_bytes(),
                &mut s,
                0,
                0,
            )
            .expect("set");
        }
        let mut moved = 0;
        for b in 0..t.bucket_count() {
            moved += t.drain_bucket(b, &mut s).len();
        }
        assert_eq!(moved, 500);
        assert!(t.is_empty());
        assert_eq!(s.used_bytes(), 0);
        t.check_invariants();
    }

    #[test]
    fn snapshot_is_lru_ordered() {
        let (mut t, mut s) = fixture();
        t.set(b"a", b"1", &mut s, 0, 0).expect("set");
        t.set(b"b", b"2", &mut s, 0, 0).expect("set");
        t.set(b"c", b"3", &mut s, 0, 0).expect("set");
        let _ = t.get(b"a", &mut s, 0);
        let snap = t.snapshot(&s);
        let keys: Vec<&[u8]> = snap.iter().map(|(k, _, _)| k.as_ref()).collect();
        assert_eq!(keys, vec![b"a" as &[u8], b"c", b"b"]);
    }

    #[test]
    fn frozen_table_never_rehashes() {
        let (mut t, mut s) = fixture();
        t.set_frozen(true);
        let buckets = t.bucket_count();
        for i in 0..2_000u32 {
            t.set(format!("k{i}").as_bytes(), b"v", &mut s, 0, 0)
                .expect("set");
        }
        assert_eq!(t.bucket_count(), buckets, "frozen table grew");
        assert_eq!(t.stats().rehashes, 0);
        t.set_frozen(false);
        t.set(b"one-more", b"v", &mut s, 0, 0).expect("set");
        assert!(t.stats().rehashes > 0, "thawed table rehashes");
        t.check_invariants();
    }

    #[test]
    fn add_and_replace_are_conditional() {
        let (mut t, mut s) = fixture();
        assert_eq!(t.add(b"k", b"v1", &mut s, 0, 0), Ok(true));
        assert_eq!(t.add(b"k", b"v2", &mut s, 0, 0), Ok(false), "add on hit");
        assert_eq!(t.get(b"k", &mut s, 0).expect("hit").as_ref(), b"v1");
        assert_eq!(t.replace(b"k", b"v3", &mut s, 0, 0), Ok(true));
        assert_eq!(t.get(b"k", &mut s, 0).expect("hit").as_ref(), b"v3");
        assert_eq!(
            t.replace(b"missing", b"v", &mut s, 0, 0),
            Ok(false),
            "replace on miss"
        );
        // Expired keys count as absent for add.
        t.set(b"ttl", b"v", &mut s, 0, 100).expect("set");
        assert_eq!(t.add(b"ttl", b"new", &mut s, 200, 0), Ok(true));
        t.check_invariants();
    }

    #[test]
    fn concat_appends_and_prepends() {
        let (mut t, mut s) = fixture();
        t.set(b"k", b"mid", &mut s, 0, 500).expect("set");
        assert_eq!(t.concat(b"k", b"-end", false, &mut s, 0), Ok(Some(7)));
        assert_eq!(t.concat(b"k", b"pre-", true, &mut s, 0), Ok(Some(11)));
        assert_eq!(
            t.get(b"k", &mut s, 0).expect("hit").as_ref(),
            b"pre-mid-end"
        );
        assert_eq!(t.concat(b"nope", b"x", false, &mut s, 0), Ok(None));
        // Expiry is preserved across concat.
        assert!(t.get(b"k", &mut s, 499).is_some());
        assert!(t.get(b"k", &mut s, 500).is_none());
    }

    #[test]
    fn incr_decr_semantics() {
        let (mut t, mut s) = fixture();
        t.set(b"n", b"10", &mut s, 0, 0).expect("set");
        assert_eq!(t.incr(b"n", 5, &mut s, 0), Ok(Some(15)));
        assert_eq!(t.incr(b"n", -20, &mut s, 0), Ok(Some(0)), "decr saturates");
        assert_eq!(t.incr(b"missing", 1, &mut s, 0), Ok(None));
        t.set(b"text", b"abc", &mut s, 0, 0).expect("set");
        assert!(t.incr(b"text", 1, &mut s, 0).is_err(), "non-numeric");
        // Overflow saturates rather than wrapping.
        t.set(b"big", u64::MAX.to_string().as_bytes(), &mut s, 0, 0)
            .expect("set");
        assert_eq!(t.incr(b"big", 1, &mut s, 0), Ok(Some(u64::MAX)));
    }

    #[test]
    fn touch_updates_expiry() {
        let (mut t, mut s) = fixture();
        t.set(b"k", b"v", &mut s, 0, 100).expect("set");
        assert!(t.touch(b"k", &mut s, 50, 1_000));
        assert!(t.get(b"k", &mut s, 500).is_some(), "touch extended life");
        assert!(!t.touch(b"missing", &mut s, 0, 1_000));
        assert!(
            !t.touch(b"k", &mut s, 2_000, 9_000),
            "expired key cannot be touched"
        );
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let (mut t, mut s) = fixture();
        t.set(b"a", b"1", &mut s, 0, 0).expect("set");
        t.set(b"b", b"2", &mut s, 0, 0).expect("set");
        assert_eq!(t.peek(b"a", &s, 0).expect("hit").as_ref(), b"1");
        assert_eq!(
            t.lru_victim().expect("victim"),
            b"a",
            "peek must not refresh"
        );
    }
}
