//! Epoch-based access statistics and EWMA load tracking.
//!
//! Each MBal server monitors its workers by tracking object access metrics
//! and cachelet popularity through access rates, collected over
//! configurable epochs (§3.1). The balancer consumes [`LoadSnapshot`]s and
//! triggers rebalancing only when imbalance persists across a configurable
//! number of consecutive epochs (four in the paper's implementation).

use serde::{Deserialize, Serialize};

/// Cumulative access counters for one cachelet (or one worker, summed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessStats {
    /// GET requests observed.
    pub reads: u64,
    /// SET/DELETE requests observed.
    pub writes: u64,
    /// GETs that found the key.
    pub hits: u64,
    /// GETs that missed.
    pub misses: u64,
    /// Payload bytes received (SET values).
    pub bytes_in: u64,
    /// Payload bytes sent (GET values).
    pub bytes_out: u64,
}

impl AccessStats {
    /// Total operations observed.
    pub fn ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of operations that are reads, in `[0, 1]`; 1.0 when idle.
    pub fn read_ratio(&self) -> f64 {
        let ops = self.ops();
        if ops == 0 {
            1.0
        } else {
            self.reads as f64 / ops as f64
        }
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &AccessStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.hits += other.hits;
        self.misses += other.misses;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
    }

    /// Returns the difference `self - earlier` (for epoch deltas).
    ///
    /// Subtraction saturates at zero: if a counter was reset between
    /// the two snapshots (worker restart, `stats reset`), the delta is
    /// zero for that field rather than an underflow.
    pub fn delta(&self, earlier: &AccessStats) -> AccessStats {
        AccessStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            bytes_in: self.bytes_in.saturating_sub(earlier.bytes_in),
            bytes_out: self.bytes_out.saturating_sub(earlier.bytes_out),
        }
    }
}

/// An exponentially-weighted moving average of a request rate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ewma {
    value: f64,
    alpha: f64,
    primed: bool,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range");
        Self {
            value: 0.0,
            alpha,
            primed: false,
        }
    }

    /// Feeds one epoch sample.
    pub fn update(&mut self, sample: f64) {
        if self.primed {
            self.value = self.alpha * sample + (1.0 - self.alpha) * self.value;
        } else {
            self.value = sample;
            self.primed = true;
        }
    }

    /// Current smoothed value (0.0 before the first sample).
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl Default for Ewma {
    fn default() -> Self {
        Self::new(0.3)
    }
}

/// Per-epoch load snapshot of one cachelet, as shipped to the balancer and
/// (in Phase 3) to the central coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheletLoad {
    /// Cachelet identifier.
    pub cachelet: crate::types::CacheletId,
    /// Smoothed request arrival rate (ops per second).
    pub load: f64,
    /// Memory consumed by the cachelet in bytes (keys + values + overhead).
    pub mem_bytes: u64,
    /// Read fraction of the epoch's traffic.
    pub read_ratio: f64,
}

/// Per-epoch load snapshot of one worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSnapshot {
    /// Worker these cachelets belong to.
    pub worker: crate::types::WorkerId,
    /// Per-cachelet loads.
    pub cachelets: Vec<CacheletLoad>,
}

impl LoadSnapshot {
    /// Total smoothed load across the worker's cachelets.
    pub fn total_load(&self) -> f64 {
        self.cachelets.iter().map(|c| c.load).sum()
    }

    /// Total memory across the worker's cachelets.
    pub fn total_mem(&self) -> u64 {
        self.cachelets.iter().map(|c| c.mem_bytes).sum()
    }
}

/// Mean absolute deviation of `values` from their mean — the `dev(LOAD)`
/// measure the balancer state machine compares against `IMB_thresh`
/// (Figure 4).
pub fn mean_abs_deviation(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| (v - mean).abs()).sum::<f64>() / values.len() as f64
}

/// Relative imbalance: mean absolute deviation normalized by the mean,
/// in `[0, ∞)`; 0 for perfectly balanced or all-idle workers.
pub fn relative_imbalance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if mean <= f64::EPSILON {
        0.0
    } else {
        mean_abs_deviation(values) / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{CacheletId, WorkerId};

    #[test]
    fn access_stats_ratios_and_merge() {
        let mut a = AccessStats {
            reads: 95,
            writes: 5,
            hits: 90,
            misses: 5,
            bytes_in: 100,
            bytes_out: 9_000,
        };
        assert!((a.read_ratio() - 0.95).abs() < 1e-9);
        let b = AccessStats {
            reads: 5,
            writes: 95,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.ops(), 200);
        assert!((a.read_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(AccessStats::default().read_ratio(), 1.0);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let early = AccessStats {
            reads: 10,
            writes: 2,
            ..Default::default()
        };
        let late = AccessStats {
            reads: 25,
            writes: 7,
            ..Default::default()
        };
        let d = late.delta(&early);
        assert_eq!(d.reads, 15);
        assert_eq!(d.writes, 5);
    }

    #[test]
    fn delta_saturates_after_counter_reset() {
        // A worker restart (or `stats reset`) makes `self` smaller than
        // `earlier`; the delta must clamp to zero, not underflow.
        let early = AccessStats {
            reads: 100,
            writes: 50,
            hits: 90,
            ..Default::default()
        };
        let after_reset = AccessStats {
            reads: 3,
            writes: 60,
            ..Default::default()
        };
        let d = after_reset.delta(&early);
        assert_eq!(d.reads, 0);
        assert_eq!(d.writes, 10);
        assert_eq!(d.hits, 0);
    }

    #[test]
    fn ewma_primes_then_smooths() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), 0.0);
        e.update(100.0);
        assert_eq!(e.value(), 100.0, "first sample primes");
        e.update(0.0);
        assert_eq!(e.value(), 50.0);
        e.update(0.0);
        assert_eq!(e.value(), 25.0);
    }

    #[test]
    #[should_panic(expected = "alpha out of range")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn deviation_measures() {
        assert_eq!(mean_abs_deviation(&[]), 0.0);
        assert_eq!(mean_abs_deviation(&[5.0, 5.0, 5.0]), 0.0);
        let d = mean_abs_deviation(&[0.0, 10.0]);
        assert!((d - 5.0).abs() < 1e-9);
        assert!((relative_imbalance(&[0.0, 10.0]) - 1.0).abs() < 1e-9);
        assert_eq!(relative_imbalance(&[0.0, 0.0]), 0.0, "idle is balanced");
    }

    #[test]
    fn snapshot_totals() {
        let snap = LoadSnapshot {
            worker: WorkerId(0),
            cachelets: vec![
                CacheletLoad {
                    cachelet: CacheletId(0),
                    load: 100.0,
                    mem_bytes: 1_000,
                    read_ratio: 0.9,
                },
                CacheletLoad {
                    cachelet: CacheletId(1),
                    load: 50.0,
                    mem_bytes: 500,
                    read_ratio: 0.5,
                },
            ],
        };
        assert_eq!(snap.total_load(), 150.0);
        assert_eq!(snap.total_mem(), 1_500);
    }
}
