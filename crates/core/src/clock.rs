//! Pluggable time sources.
//!
//! Lease expiry, epoch statistics and hot-key recency all need a notion of
//! "now". Real servers use the monotonic OS clock; the cluster simulator
//! advances a manual clock on simulated-event boundaries. Everything in the
//! workspace takes a [`Clock`] so the same balancer code runs in both
//! worlds deterministically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic microsecond time source.
pub trait Clock: Send + Sync {
    /// Returns the current time in microseconds since an arbitrary epoch.
    fn now_micros(&self) -> u64;

    /// Returns the current time in whole milliseconds.
    fn now_millis(&self) -> u64 {
        self.now_micros() / 1_000
    }
}

/// Wall-clock [`Clock`] backed by [`Instant`].
#[derive(Debug, Clone)]
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    /// Creates a clock whose epoch is the moment of construction.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A manually advanced [`Clock`] for tests and simulation.
///
/// Cloning shares the underlying counter, so a simulator can hand one
/// handle to every component and advance them all at once.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    micros: Arc<AtomicU64>,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock starting at `micros`.
    pub fn at(micros: u64) -> Self {
        let c = Self::new();
        c.set(micros);
        c
    }

    /// Advances the clock by `delta` microseconds.
    pub fn advance(&self, delta: u64) {
        self.micros.fetch_add(delta, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute value.
    ///
    /// # Panics
    ///
    /// Panics if `micros` would move the clock backwards; the trait
    /// guarantees monotonicity.
    pub fn set(&self, micros: u64) {
        let prev = self.micros.swap(micros, Ordering::SeqCst);
        assert!(
            prev <= micros,
            "ManualClock moved backwards: {prev} -> {micros}"
        );
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let c = RealClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advance_and_share() {
        let c = ManualClock::new();
        let c2 = c.clone();
        assert_eq!(c.now_micros(), 0);
        c.advance(1_500);
        assert_eq!(c2.now_micros(), 1_500);
        assert_eq!(c2.now_millis(), 1);
        c2.set(10_000);
        assert_eq!(c.now_micros(), 10_000);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn manual_clock_rejects_backwards() {
        let c = ManualClock::at(100);
        c.set(50);
    }
}
