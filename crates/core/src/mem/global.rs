//! The global chunk pool — the top tier of MBal's memory hierarchy.

use parking_lot::Mutex;

/// A raw memory chunk handed between the global pool and worker-local
/// pools. Carries its NUMA-domain tag so reuse stays local.
#[derive(Debug)]
pub(crate) struct RawChunk {
    pub data: Box<[u8]>,
    pub numa: u8,
}

/// Point-in-time statistics of the global pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalPoolStats {
    /// Total budget in bytes.
    pub capacity: usize,
    /// Bytes currently handed out to local pools.
    pub in_use: usize,
    /// Bytes cached as free chunks inside the global pool.
    pub cached_free: usize,
    /// Number of chunk acquisitions served.
    pub acquires: u64,
    /// Number of chunk releases received.
    pub releases: u64,
    /// Number of lock acquisitions on the pool mutex (a contention proxy).
    pub lock_ops: u64,
}

#[derive(Debug, Default)]
struct Inner {
    free: Vec<RawChunk>,
    in_use: usize,
    cached_free: usize,
    acquires: u64,
    releases: u64,
    lock_ops: u64,
}

/// The global memory pool: owns the cache-wide budget and serves large
/// chunks to worker-local pools under a single mutex.
///
/// The mutex is only on the refill/return path in the default
/// ([`super::MemPolicy::ThreadLocal`]) policy; per-object allocation never
/// touches it.
#[derive(Debug)]
pub struct GlobalPool {
    inner: Mutex<Inner>,
    capacity: usize,
    chunk_size: usize,
    numa_domains: u8,
}

impl GlobalPool {
    /// Creates a pool with the given `capacity` budget, serving chunks of
    /// `chunk_size` bytes, spread over `numa_domains` NUMA domains.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero or exceeds `capacity`.
    pub fn new(capacity: usize, chunk_size: usize, numa_domains: u8) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        assert!(chunk_size <= capacity, "capacity below one chunk");
        Self {
            inner: Mutex::new(Inner::default()),
            capacity,
            chunk_size,
            numa_domains: numa_domains.max(1),
        }
    }

    /// The chunk size in bytes.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// The number of NUMA domains chunks are tagged with.
    pub fn numa_domains(&self) -> u8 {
        self.numa_domains
    }

    /// Acquires one chunk, preferring the caller's NUMA `domain`.
    ///
    /// Returns `None` when the budget is exhausted — the caller must then
    /// evict (the cachelet LRU path) and retry, or fail the insert.
    pub(crate) fn acquire(&self, domain: u8) -> Option<RawChunk> {
        let mut g = self.inner.lock();
        g.lock_ops += 1;
        // Prefer a cached free chunk from the same NUMA domain.
        if let Some(pos) = g.free.iter().position(|c| c.numa == domain) {
            let c = g.free.swap_remove(pos);
            g.cached_free -= self.chunk_size;
            g.in_use += self.chunk_size;
            g.acquires += 1;
            return Some(c);
        }
        // Any cached free chunk next (cross-domain reuse beats a fresh map).
        if let Some(c) = g.free.pop() {
            g.cached_free -= self.chunk_size;
            g.in_use += self.chunk_size;
            g.acquires += 1;
            return Some(c);
        }
        // Fresh allocation if budget allows.
        if g.in_use + g.cached_free + self.chunk_size <= self.capacity {
            g.in_use += self.chunk_size;
            g.acquires += 1;
            drop(g);
            return Some(RawChunk {
                data: vec![0u8; self.chunk_size].into_boxed_slice(),
                numa: domain % self.numa_domains,
            });
        }
        None
    }

    /// Returns a fully-free chunk from a local pool.
    pub(crate) fn release(&self, chunk: RawChunk) {
        let mut g = self.inner.lock();
        g.lock_ops += 1;
        g.in_use -= self.chunk_size;
        g.cached_free += self.chunk_size;
        g.releases += 1;
        g.free.push(chunk);
    }

    /// Bytes available (budget headroom plus cached free chunks).
    pub fn free_bytes(&self) -> usize {
        let g = self.inner.lock();
        self.capacity - g.in_use
    }

    /// Records a synchronization touch on the pool mutex.
    ///
    /// Used by the `GlobalOnly` ablation (the "global LRU" configuration of
    /// Figure 6) which pays a global lock per allocation and per free, as
    /// Memcached and Mercury do.
    pub(crate) fn contended_touch(&self) {
        let mut g = self.inner.lock();
        g.lock_ops += 1;
        // Model the shared-structure cacheline write that a global free
        // list performs under the lock.
        g.acquires = g.acquires.wrapping_add(0);
        std::hint::black_box(&mut g.lock_ops);
    }

    /// Snapshots pool statistics.
    pub fn stats(&self) -> GlobalPoolStats {
        let g = self.inner.lock();
        GlobalPoolStats {
            capacity: self.capacity,
            in_use: g.in_use,
            cached_free: g.cached_free,
            acquires: g.acquires,
            releases: g.releases,
            lock_ops: g.lock_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_until_budget_exhausted() {
        let p = GlobalPool::new(4 << 10, 1 << 10, 1);
        let mut chunks = Vec::new();
        for _ in 0..4 {
            chunks.push(p.acquire(0).expect("within budget"));
        }
        assert!(p.acquire(0).is_none(), "budget must be enforced");
        assert_eq!(p.free_bytes(), 0);
        let s = p.stats();
        assert_eq!(s.in_use, 4 << 10);
        assert_eq!(s.acquires, 4);
    }

    #[test]
    fn release_recycles_chunks() {
        let p = GlobalPool::new(2 << 10, 1 << 10, 1);
        let a = p.acquire(0).expect("first");
        let _b = p.acquire(0).expect("second");
        assert!(p.acquire(0).is_none());
        p.release(a);
        let again = p.acquire(0).expect("recycled");
        assert_eq!(again.data.len(), 1 << 10);
        assert_eq!(p.stats().releases, 1);
    }

    #[test]
    fn numa_domain_preference() {
        let p = GlobalPool::new(8 << 10, 1 << 10, 2);
        let c0 = p.acquire(0).expect("d0");
        let c1 = p.acquire(1).expect("d1");
        assert_eq!(c0.numa, 0);
        assert_eq!(c1.numa, 1);
        p.release(c0);
        p.release(c1);
        // Requesting domain 1 should return the domain-1 chunk first.
        let c = p.acquire(1).expect("cached");
        assert_eq!(c.numa, 1);
    }

    #[test]
    #[should_panic(expected = "capacity below one chunk")]
    fn rejects_tiny_capacity() {
        let _ = GlobalPool::new(10, 1 << 10, 1);
    }
}
