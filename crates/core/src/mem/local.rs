//! Worker-local slab pools — the lock-free bottom tier of the hierarchy.

use super::global::{GlobalPool, RawChunk};
use super::sizeclass::SizeClasses;
use super::MemConfig;
use std::sync::Arc;

/// A handle to a slab-allocated value extent.
///
/// Extents are only meaningful to the [`LocalPool`] (or
/// [`crate::store::ValueStore`]) that produced them; they are plain data so
/// the hash table can store them inline in its entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Local chunk slot index within the owning pool.
    pub chunk: u32,
    /// Byte offset of the slot within the chunk.
    pub offset: u32,
    /// Logical length of the stored bytes (≤ slot size).
    pub len: u32,
    /// Size class of the slot.
    pub class: u8,
}

/// Memory-management policy, selecting between MBal's thread-local design
/// and the global-pool ablation of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemPolicy {
    /// MBal default: frees return to the owning thread's local pool;
    /// the global mutex is touched only on bulk refill/return.
    ThreadLocal,
    /// Ablation (`MBal global lru` in the paper): every allocation and
    /// free synchronizes on the global pool, as Memcached/Mercury do.
    GlobalOnly,
}

/// Point-in-time statistics of a local pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalPoolStats {
    /// Bytes held in chunks by this pool (free + used slots).
    pub held_bytes: usize,
    /// Bytes currently free in local slots.
    pub free_bytes: usize,
    /// Slot allocations served.
    pub allocs: u64,
    /// Slot frees received.
    pub frees: u64,
    /// Chunk refills pulled from the global pool.
    pub refills: u64,
    /// Chunks returned to the global pool.
    pub returns: u64,
}

#[derive(Debug)]
struct Chunk {
    data: Box<[u8]>,
    class: u8,
    numa: u8,
    /// Free slot indices within this chunk.
    free: Vec<u32>,
    /// Slots handed out.
    used: u32,
}

#[derive(Debug, Default)]
struct ClassState {
    /// Chunk slots (indices into `LocalPool::chunks`) with ≥1 free slot.
    partial: Vec<u32>,
}

/// A per-worker slab pool.
///
/// All per-object operations (`alloc`, `write`, `read`, `free`) are
/// lock-free: only chunk refill and chunk return touch the shared
/// [`GlobalPool`].
#[derive(Debug)]
pub struct LocalPool {
    global: Arc<GlobalPool>,
    classes: SizeClasses,
    policy: MemPolicy,
    numa_domain: u8,
    glob_low: usize,
    local_high: usize,
    chunks: Vec<Option<Chunk>>,
    free_chunk_slots: Vec<u32>,
    class_state: Vec<ClassState>,
    free_bytes: usize,
    held_bytes: usize,
    stats: LocalPoolStats,
}

impl LocalPool {
    /// Creates a local pool drawing from `global`, pinned to NUMA
    /// `numa_domain`, with the thresholds from `cfg`.
    pub fn new(
        global: Arc<GlobalPool>,
        cfg: &MemConfig,
        numa_domain: u8,
        policy: MemPolicy,
    ) -> Self {
        let classes = SizeClasses::new(global.chunk_size(), cfg.growth_factor);
        let n = classes.len();
        Self {
            global,
            classes,
            policy,
            numa_domain,
            glob_low: cfg.glob_mem_low_thresh,
            local_high: cfg.thr_mem_high_thresh,
            chunks: Vec::new(),
            free_chunk_slots: Vec::new(),
            class_state: (0..n).map(|_| ClassState::default()).collect(),
            free_bytes: 0,
            held_bytes: 0,
            stats: LocalPoolStats::default(),
        }
    }

    /// The pool's NUMA domain.
    pub fn numa_domain(&self) -> u8 {
        self.numa_domain
    }

    /// The active memory policy.
    pub fn policy(&self) -> MemPolicy {
        self.policy
    }

    /// Allocates a slot fitting `len` bytes.
    ///
    /// Returns `None` when both the local pool and the global budget are
    /// exhausted; the caller is expected to evict and retry.
    pub fn alloc(&mut self, len: usize) -> Option<Extent> {
        if self.policy == MemPolicy::GlobalOnly {
            self.global.contended_touch();
        }
        let class = self.classes.class_for(len.max(1))?;
        let slot_size = self.classes.slot_size(class);
        loop {
            if let Some(&cslot) = self.class_state[class as usize].partial.last() {
                let chunk = self.chunks[cslot as usize]
                    .as_mut()
                    .expect("partial list points at live chunk");
                let slot = chunk.free.pop().expect("partial chunk has a free slot");
                chunk.used += 1;
                if chunk.free.is_empty() {
                    self.class_state[class as usize].partial.pop();
                }
                self.free_bytes -= slot_size;
                self.stats.allocs += 1;
                return Some(Extent {
                    chunk: cslot,
                    offset: slot * slot_size as u32,
                    len: len as u32,
                    class,
                });
            }
            // Refill: pull one chunk from the global pool and carve it.
            let raw = self.global.acquire(self.numa_domain)?;
            self.admit_chunk(raw, class);
        }
    }

    fn admit_chunk(&mut self, raw: RawChunk, class: u8) {
        let slot_size = self.classes.slot_size(class);
        let nslots = self.classes.slots_per_chunk(class) as u32;
        let chunk = Chunk {
            data: raw.data,
            class,
            numa: raw.numa,
            free: (0..nslots).rev().collect(),
            used: 0,
        };
        let cslot = match self.free_chunk_slots.pop() {
            Some(s) => {
                self.chunks[s as usize] = Some(chunk);
                s
            }
            None => {
                self.chunks.push(Some(chunk));
                (self.chunks.len() - 1) as u32
            }
        };
        self.class_state[class as usize].partial.push(cslot);
        self.free_bytes += nslots as usize * slot_size;
        self.held_bytes += self.global.chunk_size();
        self.stats.refills += 1;
    }

    /// Writes `data` into a freshly allocated extent and returns it.
    pub fn alloc_write(&mut self, data: &[u8]) -> Option<Extent> {
        let ext = self.alloc(data.len())?;
        self.write(&ext, data);
        Some(ext)
    }

    /// Copies `data` into the extent's slot.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the extent's recorded length.
    pub fn write(&mut self, ext: &Extent, data: &[u8]) {
        assert_eq!(data.len(), ext.len as usize, "extent length mismatch");
        let chunk = self.chunks[ext.chunk as usize]
            .as_mut()
            .expect("extent points at live chunk");
        let start = ext.offset as usize;
        chunk.data[start..start + data.len()].copy_from_slice(data);
    }

    /// Reads the bytes stored in `ext`.
    pub fn read(&self, ext: &Extent) -> &[u8] {
        let chunk = self.chunks[ext.chunk as usize]
            .as_ref()
            .expect("extent points at live chunk");
        let start = ext.offset as usize;
        &chunk.data[start..start + ext.len as usize]
    }

    /// Returns a slot to the pool, possibly returning a fully-free chunk to
    /// the global pool per the threshold policy.
    pub fn free(&mut self, ext: Extent) {
        if self.policy == MemPolicy::GlobalOnly {
            self.global.contended_touch();
        }
        let slot_size = self.classes.slot_size(ext.class);
        let chunk_size = self.global.chunk_size();
        let fully_free;
        {
            let chunk = self.chunks[ext.chunk as usize]
                .as_mut()
                .expect("freeing into live chunk");
            debug_assert_eq!(chunk.class, ext.class, "class mismatch on free");
            let was_full = chunk.free.is_empty();
            chunk.free.push(ext.offset / slot_size as u32);
            chunk.used -= 1;
            fully_free = chunk.used == 0;
            if was_full {
                self.class_state[ext.class as usize].partial.push(ext.chunk);
            }
        }
        self.free_bytes += slot_size;
        self.stats.frees += 1;

        // Threshold policy from §2.4: return chunks when the global pool is
        // starved and we are hoarding. The GlobalOnly ablation always
        // returns fully free chunks (global free pool semantics).
        let should_return = fully_free
            && match self.policy {
                MemPolicy::ThreadLocal => {
                    self.free_bytes > self.local_high && self.global.free_bytes() < self.glob_low
                }
                MemPolicy::GlobalOnly => true,
            };
        if should_return {
            self.return_chunk(ext.chunk, chunk_size);
        }
    }

    fn return_chunk(&mut self, cslot: u32, chunk_size: usize) {
        let chunk = self.chunks[cslot as usize]
            .take()
            .expect("returning live chunk");
        debug_assert_eq!(chunk.used, 0);
        let slot_size = self.classes.slot_size(chunk.class);
        self.free_bytes -= chunk.free.len() * slot_size;
        self.held_bytes -= chunk_size;
        self.class_state[chunk.class as usize]
            .partial
            .retain(|&c| c != cslot);
        self.free_chunk_slots.push(cslot);
        self.stats.returns += 1;
        self.global.release(RawChunk {
            data: chunk.data,
            numa: chunk.numa,
        });
    }

    /// Snapshots pool statistics.
    pub fn stats(&self) -> LocalPoolStats {
        LocalPoolStats {
            held_bytes: self.held_bytes,
            free_bytes: self.free_bytes,
            ..self.stats
        }
    }

    /// Bytes currently free in local slots.
    pub fn free_bytes(&self) -> usize {
        self.free_bytes
    }

    /// Bytes held by this pool in chunks (free + used).
    pub fn held_bytes(&self) -> usize {
        self.held_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(capacity: usize) -> LocalPool {
        let cfg = MemConfig::with_capacity(capacity);
        let global = Arc::new(GlobalPool::new(capacity, 1 << 12, 1));
        let mut cfg = cfg;
        cfg.chunk_size = 1 << 12;
        LocalPool::new(global, &cfg, 0, MemPolicy::ThreadLocal)
    }

    #[test]
    fn roundtrip_write_read() {
        let mut p = pool(1 << 16);
        let ext = p.alloc_write(b"hello world").expect("fits");
        assert_eq!(p.read(&ext), b"hello world");
        assert_eq!(ext.len, 11);
        p.free(ext);
        assert_eq!(p.stats().frees, 1);
    }

    #[test]
    fn slot_reuse_after_free() {
        let mut p = pool(1 << 16);
        let a = p.alloc_write(&[7u8; 40]).expect("a");
        p.free(a);
        let b = p.alloc_write(&[9u8; 40]).expect("b");
        // Same class, same chunk, slot recycled locally without a refill.
        assert_eq!(a.chunk, b.chunk);
        assert_eq!(p.stats().refills, 1);
        assert_eq!(p.read(&b), &[9u8; 40][..]);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut p = pool(1 << 12); // exactly one chunk
        let mut held = Vec::new();
        while let Some(e) = p.alloc(64) {
            held.push(e);
            assert!(held.len() < 10_000, "runaway");
        }
        assert!(!held.is_empty());
        assert!(p.alloc(64).is_none());
        // Free one and allocation works again.
        p.free(held.pop().expect("held one"));
        assert!(p.alloc(64).is_some());
    }

    #[test]
    fn global_only_policy_returns_chunks_eagerly() {
        let cfg = {
            let mut c = MemConfig::with_capacity(1 << 14);
            c.chunk_size = 1 << 12;
            c
        };
        let global = Arc::new(GlobalPool::new(1 << 14, 1 << 12, 1));
        let mut p = LocalPool::new(Arc::clone(&global), &cfg, 0, MemPolicy::GlobalOnly);
        let e = p.alloc_write(&[1u8; 100]).expect("alloc");
        let before = global.stats().releases;
        p.free(e);
        assert_eq!(global.stats().releases, before + 1, "chunk must go back");
        assert_eq!(p.held_bytes(), 0);
        // Every op touched the global mutex.
        assert!(global.stats().lock_ops >= 4);
    }

    #[test]
    fn accounting_balances() {
        let mut p = pool(1 << 16);
        let mut exts = Vec::new();
        for i in 0..100usize {
            let data = vec![i as u8; 16 + (i % 200)];
            exts.push((p.alloc_write(&data).expect("alloc"), data));
        }
        for (e, data) in &exts {
            assert_eq!(p.read(e), &data[..]);
        }
        let held = p.held_bytes();
        for (e, _) in exts {
            p.free(e);
        }
        // Nothing forced a return (global pool not starved), so held bytes
        // stay put and everything is free.
        assert_eq!(p.held_bytes(), held);
        assert_eq!(p.free_bytes(), held / (1 << 12) * (1 << 12) - waste(&p));
    }

    // Free bytes differ from held bytes by per-chunk carving waste; compute
    // it from the pool's class table for the assertion above.
    fn waste(p: &LocalPool) -> usize {
        let mut w = 0;
        for c in p.chunks.iter().flatten() {
            let slot = p.classes.slot_size(c.class);
            w += p.global.chunk_size() - p.classes.slots_per_chunk(c.class) * slot;
        }
        w
    }
}
