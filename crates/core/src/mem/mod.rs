//! Hierarchical slab memory management (§2.4 of the paper).
//!
//! MBal manages cache memory in two tiers:
//!
//! - a [`GlobalPool`] that owns the whole cache budget and hands out large
//!   chunks (default 1 MiB) under a mutex, and
//! - one [`LocalPool`] per worker thread, which carves chunks into
//!   size-class slots and satisfies allocations/frees with **no
//!   synchronization at all** on the hot path.
//!
//! Workers refill from the global pool in bulk and return fully-free chunks
//! only when the global pool shrinks below [`MemConfig::glob_mem_low_thresh`]
//! while the local free pool exceeds [`MemConfig::thr_mem_high_thresh`] —
//! the `GLOB_MEM_LOW_THRESH` / `THR_MEM_HIGH_THRESH` policy of the paper.
//! Object deletes return memory to the *owning thread's* pool for reuse,
//! which is what gives MBal its order-of-magnitude advantage over a global
//! free pool on eviction-heavy workloads (Figure 6).
//!
//! NUMA awareness: chunks carry a NUMA-domain tag; a worker prefers chunks
//! from its own domain when refilling. On hosts without exposed NUMA the
//! tag still localizes reuse; the cluster simulator additionally charges a
//! cross-domain access penalty.

mod global;
mod local;
mod sizeclass;

pub use global::{GlobalPool, GlobalPoolStats};
pub use local::{Extent, LocalPool, LocalPoolStats, MemPolicy};
pub use sizeclass::{SizeClasses, DEFAULT_GROWTH_FACTOR, MIN_SLOT_SIZE};

/// Configuration of the two-tier memory manager.
#[derive(Debug, Clone)]
pub struct MemConfig {
    /// Total cache memory budget in bytes across all workers.
    pub capacity: usize,
    /// Chunk size in bytes requested from the global pool (default 1 MiB).
    pub chunk_size: usize,
    /// Global pool low watermark in bytes: below this, workers with fat
    /// local free pools start returning chunks.
    pub glob_mem_low_thresh: usize,
    /// Local free-pool high watermark in bytes: above this, a worker is
    /// eligible to return fully-free chunks to the global pool.
    pub thr_mem_high_thresh: usize,
    /// Slab size-class growth factor (Memcached uses 1.25).
    pub growth_factor: f64,
    /// Number of NUMA domains to spread chunks across.
    pub numa_domains: u8,
    /// Whether workers prefer chunks from their own NUMA domain.
    pub numa_aware: bool,
}

impl MemConfig {
    /// Creates a config with the paper's defaults for a cache of
    /// `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            chunk_size: 1 << 20,
            glob_mem_low_thresh: capacity / 8,
            thr_mem_high_thresh: 4 << 20,
            growth_factor: DEFAULT_GROWTH_FACTOR,
            numa_domains: 1,
            numa_aware: true,
        }
    }

    /// Sets the number of NUMA domains and returns `self`.
    pub fn numa_domains(mut self, domains: u8) -> Self {
        self.numa_domains = domains.max(1);
        self
    }

    /// Enables or disables NUMA-aware placement and returns `self`.
    pub fn numa_aware(mut self, aware: bool) -> Self {
        self.numa_aware = aware;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = MemConfig::with_capacity(64 << 20);
        assert_eq!(c.capacity, 64 << 20);
        assert_eq!(c.chunk_size, 1 << 20);
        assert!(c.glob_mem_low_thresh < c.capacity);
        assert!(c.numa_aware);
        assert_eq!(c.numa_domains, 1);
    }

    #[test]
    fn numa_builder_clamps_to_one() {
        let c = MemConfig::with_capacity(1 << 20).numa_domains(0);
        assert_eq!(c.numa_domains, 1);
    }
}
