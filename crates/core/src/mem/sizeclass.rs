//! Slab size classes.
//!
//! Slots grow geometrically from [`MIN_SLOT_SIZE`] by the configured growth
//! factor (Memcached's default 1.25), rounded up to 8-byte alignment, until
//! a class spans the whole chunk payload.

/// Smallest slot size in bytes.
pub const MIN_SLOT_SIZE: usize = 64;

/// Default geometric growth factor between consecutive classes.
pub const DEFAULT_GROWTH_FACTOR: f64 = 1.25;

/// The table of slab size classes for a given chunk size.
#[derive(Debug, Clone)]
pub struct SizeClasses {
    sizes: Vec<u32>,
    chunk_size: usize,
}

impl SizeClasses {
    /// Builds the class table for chunks of `chunk_size` bytes using the
    /// geometric `growth_factor`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size < MIN_SLOT_SIZE` or `growth_factor <= 1.0`.
    pub fn new(chunk_size: usize, growth_factor: f64) -> Self {
        assert!(chunk_size >= MIN_SLOT_SIZE, "chunk too small");
        assert!(growth_factor > 1.0, "growth factor must exceed 1.0");
        let mut sizes = Vec::new();
        let mut s = MIN_SLOT_SIZE as f64;
        loop {
            let mut sz = s.ceil() as usize;
            // Round up to 8-byte alignment.
            sz = (sz + 7) & !7;
            if sz >= chunk_size {
                sizes.push(chunk_size as u32);
                break;
            }
            if sizes.last().is_none_or(|&last| sz as u32 > last) {
                sizes.push(sz as u32);
            }
            s *= growth_factor;
        }
        Self { sizes, chunk_size }
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Returns `true` if the table is empty (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Slot size in bytes of class `class`.
    pub fn slot_size(&self, class: u8) -> usize {
        self.sizes[class as usize] as usize
    }

    /// Number of slots a chunk of this class holds.
    pub fn slots_per_chunk(&self, class: u8) -> usize {
        self.chunk_size / self.slot_size(class)
    }

    /// Smallest class whose slot fits `len` bytes, or `None` if `len`
    /// exceeds the largest class (i.e. the chunk payload).
    pub fn class_for(&self, len: usize) -> Option<u8> {
        if len > self.chunk_size {
            return None;
        }
        let idx = self.sizes.partition_point(|&s| (s as usize) < len);
        if idx >= self.sizes.len() {
            None
        } else {
            Some(idx as u8)
        }
    }

    /// The chunk size this table was built for.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_monotonic_and_aligned() {
        let sc = SizeClasses::new(1 << 20, DEFAULT_GROWTH_FACTOR);
        assert!(sc.len() > 10);
        let mut prev = 0u32;
        for c in 0..sc.len() as u8 {
            let s = sc.slot_size(c) as u32;
            assert!(s > prev, "class {c} not monotonic");
            assert_eq!(s % 8, 0, "class {c} misaligned");
            prev = s;
        }
        assert_eq!(sc.slot_size(sc.len() as u8 - 1), 1 << 20);
    }

    #[test]
    fn class_for_exact_and_between() {
        let sc = SizeClasses::new(1 << 20, DEFAULT_GROWTH_FACTOR);
        assert_eq!(sc.class_for(1), Some(0));
        assert_eq!(sc.class_for(MIN_SLOT_SIZE), Some(0));
        assert_eq!(sc.class_for(MIN_SLOT_SIZE + 1), Some(1));
        // Every length fits in its class.
        for len in [1usize, 63, 64, 65, 100, 1000, 4096, 65536, 1 << 20] {
            let c = sc.class_for(len).expect("fits");
            assert!(sc.slot_size(c) >= len);
            if c > 0 {
                assert!(sc.slot_size(c - 1) < len, "len {len} in class {c} too big");
            }
        }
        assert_eq!(sc.class_for((1 << 20) + 1), None);
    }

    #[test]
    fn slots_per_chunk_is_consistent() {
        let sc = SizeClasses::new(1 << 16, 2.0);
        for c in 0..sc.len() as u8 {
            let n = sc.slots_per_chunk(c);
            assert!(n >= 1);
            assert!(n * sc.slot_size(c) <= 1 << 16);
        }
    }

    #[test]
    #[should_panic(expected = "growth factor")]
    fn rejects_non_growing_factor() {
        let _ = SizeClasses::new(1 << 20, 1.0);
    }
}
