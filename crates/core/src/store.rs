//! Pluggable value-storage backends.
//!
//! The hash table stores values through the [`ValueStore`] trait so the
//! allocator ablation of Figure 8 (slab vs `malloc` vs static vs a
//! contended jemalloc-like arena) swaps backends without touching the
//! table. The production backend is [`SlabStore`], a thin wrapper over
//! [`crate::mem::LocalPool`].

use crate::mem::{Extent, LocalPool};
use bytes::Bytes;
use parking_lot::Mutex;
use std::borrow::Cow;
use std::sync::Arc;

/// Backend-agnostic value reference stored inline in hash-table entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValRef(pub(crate) Extent);

impl ValRef {
    /// Logical length of the referenced bytes.
    pub fn len(&self) -> usize {
        self.0.len as usize
    }

    /// Returns `true` for a zero-length value.
    pub fn is_empty(&self) -> bool {
        self.0.len == 0
    }
}

/// A value storage backend.
///
/// Implementations own the bytes; the hash table only keeps [`ValRef`]
/// handles. All methods are `&mut self`/`&self` because every store is
/// owned by exactly one worker thread (the single-writer discipline) —
/// shared-state backends do their own internal locking.
pub trait ValueStore {
    /// Stores `data`, returning a handle, or `None` when out of memory.
    fn alloc_write(&mut self, data: &[u8]) -> Option<ValRef>;

    /// Reads the bytes behind `r`.
    ///
    /// Returns borrowed bytes for thread-owned backends; shared backends
    /// (which cannot lend borrows across their internal mutex) return an
    /// owned copy.
    fn read(&self, r: &ValRef) -> Cow<'_, [u8]>;

    /// Returns a reference-counted shared view of the bytes behind `r`,
    /// or `None` for backends whose storage cannot be safely shared
    /// outside the store (slab/static arenas recycle extents eagerly, so
    /// a refcounted view could observe a recycled slot). Callers fall
    /// back to one copy at the engine boundary via [`ValueStore::read`].
    fn read_shared(&self, _r: &ValRef) -> Option<Bytes> {
        None
    }

    /// Releases the storage behind `r`.
    fn free(&mut self, r: ValRef);

    /// Bytes of payload currently stored (logical, not slot-rounded).
    fn used_bytes(&self) -> usize;

    /// Adjusts the store's byte budget at runtime; stores whose budget
    /// is externally governed (the slab pool hierarchy) ignore this.
    /// Shrinking below current usage is allowed — the engine above
    /// converges by evicting on subsequent allocation failures.
    fn set_capacity(&mut self, _bytes: usize) {}
}

/// The production backend: MBal's hierarchical slab pool.
#[derive(Debug)]
pub struct SlabStore {
    pool: LocalPool,
    used: usize,
}

impl SlabStore {
    /// Wraps a worker-local pool.
    pub fn new(pool: LocalPool) -> Self {
        Self { pool, used: 0 }
    }

    /// Access the underlying pool (for statistics).
    pub fn pool(&self) -> &LocalPool {
        &self.pool
    }
}

impl ValueStore for SlabStore {
    fn alloc_write(&mut self, data: &[u8]) -> Option<ValRef> {
        let ext = self.pool.alloc_write(data)?;
        self.used += data.len();
        Some(ValRef(ext))
    }

    fn read(&self, r: &ValRef) -> Cow<'_, [u8]> {
        Cow::Borrowed(self.pool.read(&r.0))
    }

    fn free(&mut self, r: ValRef) {
        self.used -= r.0.len as usize;
        self.pool.free(r.0);
    }

    fn used_bytes(&self) -> usize {
        self.used
    }
}

/// `malloc` ablation: every value is an individual heap allocation.
///
/// Models running a cache instance on per-request dynamic allocation
/// (`Multi-inst Mc(malloc)` / `MBal(malloc)` in Figure 8). Slots hold
/// reference-counted [`Bytes`], so [`ValueStore::read_shared`] serves a
/// zero-copy view: freeing the slot drops this store's reference while
/// in-flight readers keep theirs alive.
#[derive(Debug, Default)]
pub struct MallocStore {
    slots: Vec<Option<Bytes>>,
    free_ids: Vec<u32>,
    used: usize,
    /// Budget in bytes; `usize::MAX` means unlimited.
    capacity: usize,
}

impl MallocStore {
    /// Creates a store with a byte `capacity` budget.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    /// Current byte budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl ValueStore for MallocStore {
    fn alloc_write(&mut self, data: &[u8]) -> Option<ValRef> {
        if self.used + data.len() > self.capacity {
            return None;
        }
        let shared = Bytes::copy_from_slice(data);
        let id = match self.free_ids.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(shared);
                id
            }
            None => {
                self.slots.push(Some(shared));
                (self.slots.len() - 1) as u32
            }
        };
        self.used += data.len();
        Some(ValRef(Extent {
            chunk: id,
            offset: 0,
            len: data.len() as u32,
            class: 0,
        }))
    }

    fn read(&self, r: &ValRef) -> Cow<'_, [u8]> {
        Cow::Borrowed(
            self.slots[r.0.chunk as usize]
                .as_deref()
                .expect("live malloc slot"),
        )
    }

    fn read_shared(&self, r: &ValRef) -> Option<Bytes> {
        Some(
            self.slots[r.0.chunk as usize]
                .clone()
                .expect("live malloc slot"),
        )
    }

    fn free(&mut self, r: ValRef) {
        let slot = self.slots[r.0.chunk as usize]
            .take()
            .expect("freeing live malloc slot");
        self.used -= slot.len();
        self.free_ids.push(r.0.chunk);
    }

    fn used_bytes(&self) -> usize {
        self.used
    }

    fn set_capacity(&mut self, bytes: usize) {
        self.capacity = bytes;
    }
}

/// Static-preallocation ablation: fixed-size slots carved up front
/// (`Multi-inst Mc(static)` in Figure 8). Fast but wastes memory on small
/// values and caps value size.
#[derive(Debug)]
pub struct StaticStore {
    arena: Box<[u8]>,
    slot_size: usize,
    free: Vec<u32>,
    lens: Vec<u32>,
    used: usize,
}

impl StaticStore {
    /// Preallocates `slots` slots of `slot_size` bytes each.
    pub fn new(slots: usize, slot_size: usize) -> Self {
        Self {
            arena: vec![0u8; slots * slot_size].into_boxed_slice(),
            slot_size,
            free: (0..slots as u32).rev().collect(),
            lens: vec![0; slots],
            used: 0,
        }
    }
}

impl ValueStore for StaticStore {
    fn alloc_write(&mut self, data: &[u8]) -> Option<ValRef> {
        if data.len() > self.slot_size {
            return None;
        }
        let id = self.free.pop()?;
        let start = id as usize * self.slot_size;
        self.arena[start..start + data.len()].copy_from_slice(data);
        self.lens[id as usize] = data.len() as u32;
        self.used += data.len();
        Some(ValRef(Extent {
            chunk: id,
            offset: 0,
            len: data.len() as u32,
            class: 0,
        }))
    }

    fn read(&self, r: &ValRef) -> Cow<'_, [u8]> {
        let start = r.0.chunk as usize * self.slot_size;
        Cow::Borrowed(&self.arena[start..start + r.0.len as usize])
    }

    fn free(&mut self, r: ValRef) {
        self.used -= self.lens[r.0.chunk as usize] as usize;
        self.lens[r.0.chunk as usize] = 0;
        self.free.push(r.0.chunk);
    }

    fn used_bytes(&self) -> usize {
        self.used
    }
}

/// Shared-arena ablation approximating a general-purpose multithreaded
/// allocator (`MBal(jemalloc)` in Figure 8): allocations and frees go
/// through an arena shared by all workers behind a mutex, so concurrency
/// pays lock contention the slab design avoids.
#[derive(Debug, Clone)]
pub struct SharedArenaStore {
    arena: Arc<Mutex<SharedArena>>,
    used: usize,
}

#[derive(Debug, Default)]
struct SharedArena {
    slots: Vec<Option<Box<[u8]>>>,
    free_ids: Vec<u32>,
    used: usize,
    capacity: usize,
}

impl SharedArenaStore {
    /// Creates a shared arena with a byte `capacity` budget; clone the
    /// returned store once per worker.
    pub fn new(capacity: usize) -> Self {
        Self {
            arena: Arc::new(Mutex::new(SharedArena {
                capacity,
                ..SharedArena::default()
            })),
            used: 0,
        }
    }
}

impl ValueStore for SharedArenaStore {
    fn alloc_write(&mut self, data: &[u8]) -> Option<ValRef> {
        let mut a = self.arena.lock();
        if a.used + data.len() > a.capacity {
            return None;
        }
        let boxed: Box<[u8]> = data.into();
        let id = match a.free_ids.pop() {
            Some(id) => {
                a.slots[id as usize] = Some(boxed);
                id
            }
            None => {
                a.slots.push(Some(boxed));
                (a.slots.len() - 1) as u32
            }
        };
        a.used += data.len();
        self.used += data.len();
        Some(ValRef(Extent {
            chunk: id,
            offset: 0,
            len: data.len() as u32,
            class: 0,
        }))
    }

    fn read(&self, r: &ValRef) -> Cow<'_, [u8]> {
        // The arena cannot lend borrows across its mutex, so reads copy.
        // This per-read copy is part of the cost a shared general-purpose
        // allocator pays versus the slab design.
        Cow::Owned(self.read_owned(r))
    }

    fn free(&mut self, r: ValRef) {
        let mut a = self.arena.lock();
        let slot = a.slots[r.0.chunk as usize]
            .take()
            .expect("freeing live shared slot");
        a.used -= slot.len();
        self.used -= slot.len();
        a.free_ids.push(r.0.chunk);
    }

    fn used_bytes(&self) -> usize {
        self.used
    }
}

impl SharedArenaStore {
    /// Reads the bytes behind `r` as an owned copy (the shared arena
    /// cannot lend borrows across its mutex).
    pub fn read_owned(&self, r: &ValRef) -> Vec<u8> {
        let a = self.arena.lock();
        a.slots[r.0.chunk as usize]
            .as_deref()
            .expect("live shared slot")
            .to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{GlobalPool, MemConfig, MemPolicy};

    fn slab() -> SlabStore {
        let mut cfg = MemConfig::with_capacity(1 << 20);
        cfg.chunk_size = 1 << 14;
        let global = Arc::new(GlobalPool::new(1 << 20, 1 << 14, 1));
        SlabStore::new(LocalPool::new(global, &cfg, 0, MemPolicy::ThreadLocal))
    }

    fn exercise<S: ValueStore>(mut s: S) {
        let a = s.alloc_write(b"alpha").expect("a");
        let b = s.alloc_write(b"beta-beta").expect("b");
        assert_eq!(s.read(&a).as_ref(), b"alpha");
        assert_eq!(s.read(&b).as_ref(), b"beta-beta");
        assert_eq!(s.used_bytes(), 5 + 9);
        s.free(a);
        assert_eq!(s.used_bytes(), 9);
        let c = s.alloc_write(&[3u8; 500]).expect("c");
        assert_eq!(s.read(&c).as_ref(), &[3u8; 500][..]);
        s.free(b);
        s.free(c);
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn slab_store_roundtrip() {
        exercise(slab());
    }

    #[test]
    fn malloc_store_roundtrip() {
        exercise(MallocStore::new(usize::MAX));
    }

    #[test]
    fn static_store_roundtrip() {
        exercise(StaticStore::new(64, 1024));
    }

    #[test]
    fn malloc_store_respects_capacity() {
        let mut s = MallocStore::new(10);
        assert!(s.alloc_write(&[0u8; 11]).is_none());
        let a = s.alloc_write(&[0u8; 10]).expect("exact fit");
        assert!(s.alloc_write(&[0u8; 1]).is_none());
        s.free(a);
        assert!(s.alloc_write(&[0u8; 1]).is_some());
    }

    #[test]
    fn static_store_rejects_oversize_and_exhaustion() {
        let mut s = StaticStore::new(2, 16);
        assert!(s.alloc_write(&[0u8; 17]).is_none());
        let _a = s.alloc_write(&[1u8; 16]).expect("slot 1");
        let _b = s.alloc_write(&[2u8; 8]).expect("slot 2");
        assert!(s.alloc_write(&[3u8; 1]).is_none(), "slots exhausted");
    }

    #[test]
    fn shared_arena_concurrent_alloc_free() {
        let base = SharedArenaStore::new(1 << 20);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let mut s = base.clone();
                std::thread::spawn(move || {
                    let mut refs = Vec::new();
                    for i in 0..200usize {
                        let data = vec![t as u8; 1 + (i % 64)];
                        refs.push((s.alloc_write(&data).expect("alloc"), data));
                    }
                    for (r, data) in refs {
                        assert_eq!(s.read_owned(&r), data);
                        s.free(r);
                    }
                    assert_eq!(s.used_bytes(), 0);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panic");
        }
    }
}
