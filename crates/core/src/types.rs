//! Shared identifiers, value types and errors for the MBal workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A cache key: an opaque byte string (Memcached keys are ≤ 250 bytes).
pub type Key = Vec<u8>;

/// A cache value: an opaque, reference-counted byte string.
///
/// `bytes::Bytes` end-to-end means a GET can serve a refcounted view of
/// the engine's own buffer — cloning a `Value` bumps a refcount instead
/// of copying payload bytes, and the TCP write path hands the same
/// buffer to `writev` untouched.
pub type Value = bytes::Bytes;

/// Maximum key length accepted by the cache, matching Memcached's limit.
pub const MAX_KEY_LEN: usize = 250;

/// Maximum value length accepted by the cache (1 MiB, Memcached default).
pub const MAX_VALUE_LEN: usize = 1 << 20;

/// Identifier of a virtual node (VN) — a subset of the key hash space.
///
/// Consistent hashing maps keys to VNs; many VNs map onto one cachelet
/// (typically an order of magnitude more VNs than cachelets, §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VnId(pub u32);

/// Identifier of a cachelet — a configurable resource container that
/// encapsulates multiple VNs and is managed by a single worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CacheletId(pub u32);

/// Identifier of a cache tenant (an application sharing the cluster).
///
/// Tenant 0 is the **default tenant**: requests that carry no tenant
/// envelope belong to it, which keeps single-tenant deployments and the
/// pre-tenancy wire format working unchanged. On the wire the id rides
/// the Memcached binary extras field (2 bytes, big-endian); inside an
/// engine it prefixes the key (see `mbal-tenant`).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct TenantId(pub u16);

impl TenantId {
    /// The default tenant: unwrapped requests and pre-tenancy clients.
    pub const DEFAULT: TenantId = TenantId(0);

    /// `true` for the default tenant.
    pub fn is_default(self) -> bool {
        self.0 == 0
    }
}

/// Identifier of a worker thread within one cache server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub u16);

/// Identifier of a cache server within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServerId(pub u16);

/// Globally unique address of a worker: `(server, worker)`.
///
/// Each worker owns a dedicated transport endpoint (a TCP/UDP port in the
/// paper) so clients route to workers directly, without a dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerAddr {
    /// Server hosting the worker.
    pub server: ServerId,
    /// Worker index within the server.
    pub worker: WorkerId,
}

impl WorkerAddr {
    /// Creates a worker address from raw server and worker indices.
    pub fn new(server: u16, worker: u16) -> Self {
        Self {
            server: ServerId(server),
            worker: WorkerId(worker),
        }
    }
}

impl fmt::Display for WorkerAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}w{}", self.server.0, self.worker.0)
    }
}

macro_rules! fmt_display_newtype {
    ($($t:ty),+) => {$(
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    )+};
}
fmt_display_newtype!(CacheletId, VnId, WorkerId, ServerId, TenantId);

/// Errors surfaced by core cache operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// The key exceeds [`MAX_KEY_LEN`].
    KeyTooLong(usize),
    /// The value exceeds [`MAX_VALUE_LEN`].
    ValueTooLong(usize),
    /// The cache is out of memory and eviction could not make room.
    OutOfMemory,
    /// The addressed cachelet is not owned by this worker.
    WrongCachelet(CacheletId),
    /// The addressed cachelet is mid-migration and the bucket is locked.
    BucketMigrating,
    /// An internal invariant was violated; carries a diagnostic message.
    Internal(&'static str),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::KeyTooLong(n) => write!(f, "key too long: {n} bytes"),
            CacheError::ValueTooLong(n) => write!(f, "value too long: {n} bytes"),
            CacheError::OutOfMemory => write!(f, "out of memory"),
            CacheError::WrongCachelet(c) => write!(f, "cachelet {c} not owned here"),
            CacheError::BucketMigrating => write!(f, "bucket is being migrated"),
            CacheError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for CacheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_addr_display() {
        let a = WorkerAddr::new(3, 7);
        assert_eq!(a.to_string(), "s3w7");
        assert_eq!(a.server, ServerId(3));
        assert_eq!(a.worker, WorkerId(7));
    }

    #[test]
    fn error_display_is_descriptive() {
        assert!(CacheError::KeyTooLong(300).to_string().contains("300"));
        assert!(CacheError::OutOfMemory.to_string().contains("memory"));
        assert!(CacheError::WrongCachelet(CacheletId(9))
            .to_string()
            .contains('9'));
    }

    #[test]
    fn ids_order_and_hash() {
        assert!(CacheletId(1) < CacheletId(2));
        assert!(VnId(0) < VnId(10));
        let mut set = std::collections::HashSet::new();
        set.insert(WorkerAddr::new(0, 0));
        set.insert(WorkerAddr::new(0, 0));
        assert_eq!(set.len(), 1);
    }
}
