//! The cachelet: MBal's unit of partitioning and load balancing (§2.1).
//!
//! A cachelet is a configurable resource container that encapsulates
//! multiple virtual nodes and is managed as a separate entity by a single
//! worker thread. It bundles a storage [`Engine`] (the slab+LRU table or
//! the segment-structured engine), access statistics, an EWMA load
//! estimate, and migration/lease state. Because exactly one worker owns a
//! cachelet at any time, none of its operations synchronize.

use crate::engine::{slab_lru::SlabLru, Engine, EngineStats};
use crate::stats::{AccessStats, CacheletLoad, Ewma};
use crate::table::SetOutcome;
use crate::types::{CacheError, CacheletId, Value, WorkerId};

/// Where a cachelet currently lives relative to its home worker.
///
/// Server-local migration (Phase 2) and coordinated migration (Phase 3) are
/// lease-based for ephemeral hotspots: a migrated cachelet returns to its
/// home worker when the lease expires and the hotspot has cooled (§3.3).
/// Phase 3 migrations are permanent (no lease).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// The cachelet is on its home worker.
    Home,
    /// Migrated within the server; returns home when the lease expires.
    Leased {
        /// The original (home) worker.
        home: WorkerId,
        /// Absolute lease expiry in milliseconds.
        lease_expiry_ms: u64,
    },
    /// Permanently migrated across servers (Phase 3).
    Adopted,
}

/// A cachelet: storage engine + statistics + residency state.
#[derive(Debug)]
pub struct Cachelet {
    id: CacheletId,
    engine: Box<dyn Engine>,
    stats: AccessStats,
    epoch_base: AccessStats,
    load: Ewma,
    residency: Residency,
}

impl Cachelet {
    /// Creates an empty cachelet with the given `id`, backed by an
    /// unbounded heap slab+LRU engine (tests and tools; servers inject
    /// their engine via [`Cachelet::with_engine`]).
    pub fn new(id: CacheletId) -> Self {
        Self::with_engine(id, Box::new(SlabLru::unbounded()))
    }

    /// Creates an empty cachelet over the given storage engine.
    pub fn with_engine(id: CacheletId, engine: Box<dyn Engine>) -> Self {
        Self {
            id,
            engine,
            stats: AccessStats::default(),
            epoch_base: AccessStats::default(),
            load: Ewma::default(),
            residency: Residency::Home,
        }
    }

    /// The cachelet identifier.
    pub fn id(&self) -> CacheletId {
        self.id
    }

    /// Current residency state.
    pub fn residency(&self) -> Residency {
        self.residency
    }

    /// Marks the cachelet as leased out from `home` until
    /// `lease_expiry_ms` (Phase 2 migration).
    pub fn lease_out(&mut self, home: WorkerId, lease_expiry_ms: u64) {
        self.residency = Residency::Leased {
            home,
            lease_expiry_ms,
        };
    }

    /// Marks the cachelet as permanently adopted by its current worker.
    pub fn adopt(&mut self) {
        self.residency = Residency::Adopted;
    }

    /// Restores home residency (lease expiry or explicit return).
    pub fn restore_home(&mut self) {
        self.residency = Residency::Home;
    }

    /// Returns `Some(home)` if the lease has expired at `now_ms`.
    pub fn lease_expired(&self, now_ms: u64) -> Option<WorkerId> {
        match self.residency {
            Residency::Leased {
                home,
                lease_expiry_ms,
            } if lease_expiry_ms <= now_ms => Some(home),
            _ => None,
        }
    }

    /// Looks up `key` and records the access. The returned [`Value`] is
    /// a refcounted view shared with the engine where its storage
    /// permits (see [`Engine::get`]).
    pub fn get(&mut self, key: &[u8], now_ms: u64) -> Option<Value> {
        self.stats.reads += 1;
        match self.engine.get(key, now_ms) {
            Some(v) => {
                self.stats.hits += 1;
                self.stats.bytes_out += v.len() as u64;
                Some(v)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts or replaces `key` and records the access.
    pub fn set(
        &mut self,
        key: &[u8],
        value: &[u8],
        now_ms: u64,
        expiry_ms: u64,
    ) -> Result<SetOutcome, CacheError> {
        self.stats.writes += 1;
        self.stats.bytes_in += value.len() as u64;
        self.engine.set(key, value, now_ms, expiry_ms)
    }

    /// Deletes `key` and records the access.
    pub fn delete(&mut self, key: &[u8], now_ms: u64) -> bool {
        self.stats.writes += 1;
        self.engine.delete(key, now_ms)
    }

    /// Conditional insert (Memcached `add`); records the write.
    pub fn add(
        &mut self,
        key: &[u8],
        value: &[u8],
        now_ms: u64,
        expiry_ms: u64,
    ) -> Result<bool, CacheError> {
        self.stats.writes += 1;
        self.stats.bytes_in += value.len() as u64;
        self.engine.add(key, value, now_ms, expiry_ms)
    }

    /// Conditional overwrite (Memcached `replace`); records the write.
    pub fn replace(
        &mut self,
        key: &[u8],
        value: &[u8],
        now_ms: u64,
        expiry_ms: u64,
    ) -> Result<bool, CacheError> {
        self.stats.writes += 1;
        self.stats.bytes_in += value.len() as u64;
        self.engine.replace(key, value, now_ms, expiry_ms)
    }

    /// Append/prepend (Memcached `append`/`prepend`); records the write.
    pub fn concat(
        &mut self,
        key: &[u8],
        suffix: &[u8],
        front: bool,
        now_ms: u64,
    ) -> Result<Option<usize>, CacheError> {
        self.stats.writes += 1;
        self.stats.bytes_in += suffix.len() as u64;
        self.engine.concat(key, suffix, front, now_ms)
    }

    /// Counter arithmetic (Memcached `incr`/`decr`); records the write.
    pub fn incr(&mut self, key: &[u8], delta: i64, now_ms: u64) -> Result<Option<u64>, CacheError> {
        self.stats.writes += 1;
        self.engine.incr(key, delta, now_ms)
    }

    /// TTL refresh (Memcached `touch`); records the write.
    pub fn touch(&mut self, key: &[u8], now_ms: u64, expiry_ms: u64) -> bool {
        self.stats.writes += 1;
        self.engine.touch(key, now_ms, expiry_ms)
    }

    /// Read access to the storage engine (migration & inspection).
    pub fn engine(&self) -> &dyn Engine {
        self.engine.as_ref()
    }

    /// Mutable access to the storage engine (migration machinery,
    /// epoch maintenance).
    pub fn engine_mut(&mut self) -> &mut dyn Engine {
        self.engine.as_mut()
    }

    /// Cumulative access statistics.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Engine statistics (length, evictions, expirations, …).
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Closes an epoch of `epoch_secs` seconds: feeds the request rate into
    /// the EWMA and returns the epoch's raw counters.
    pub fn end_epoch(&mut self, epoch_secs: f64) -> AccessStats {
        let delta = self.stats.delta(&self.epoch_base);
        self.epoch_base = self.stats;
        let rate = if epoch_secs > 0.0 {
            delta.ops() as f64 / epoch_secs
        } else {
            0.0
        };
        self.load.update(rate);
        delta
    }

    /// Smoothed request rate in ops/second.
    pub fn load(&self) -> f64 {
        self.load.value()
    }

    /// Memory charged to this cachelet in bytes: values plus key/entry
    /// overhead, as accounted by the engine.
    pub fn mem_bytes(&self) -> u64 {
        self.engine.used_bytes() as u64
    }

    /// Builds the balancer-facing load record.
    pub fn load_record(&self) -> CacheletLoad {
        let delta = self.stats.delta(&self.epoch_base);
        CacheletLoad {
            cachelet: self.id,
            load: self.load(),
            mem_bytes: self.mem_bytes(),
            read_ratio: if delta.ops() > 0 {
                delta.read_ratio()
            } else {
                self.stats.read_ratio()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::seg::SegEngine;

    fn fixture() -> Cachelet {
        Cachelet::new(CacheletId(3))
    }

    #[test]
    fn get_set_updates_stats() {
        let mut c = fixture();
        assert!(c.get(b"missing", 0).is_none());
        c.set(b"k", b"value", 0, 0).expect("set");
        assert_eq!(c.get(b"k", 0).expect("hit").as_ref(), b"value");
        let st = c.stats();
        assert_eq!(st.reads, 2);
        assert_eq!(st.writes, 1);
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
        assert_eq!(st.bytes_in, 5);
        assert_eq!(st.bytes_out, 5);
    }

    #[test]
    fn epoch_updates_ewma_load() {
        let mut c = fixture();
        for i in 0..100u32 {
            c.set(format!("k{i}").as_bytes(), b"v", 0, 0).expect("set");
        }
        let delta = c.end_epoch(1.0);
        assert_eq!(delta.writes, 100);
        assert!((c.load() - 100.0).abs() < 1e-9, "first epoch primes EWMA");
        let _ = c.end_epoch(1.0);
        assert!(c.load() < 100.0, "idle epoch decays the load");
    }

    #[test]
    fn lease_lifecycle() {
        let mut c = fixture();
        assert_eq!(c.residency(), Residency::Home);
        c.lease_out(WorkerId(1), 1_000);
        assert_eq!(c.lease_expired(999), None);
        assert_eq!(c.lease_expired(1_000), Some(WorkerId(1)));
        c.restore_home();
        assert_eq!(c.residency(), Residency::Home);
        c.adopt();
        assert_eq!(c.residency(), Residency::Adopted);
        assert_eq!(c.lease_expired(u64::MAX), None, "adoption is permanent");
    }

    #[test]
    fn mem_accounting_includes_overhead() {
        let mut c = fixture();
        c.set(b"key-bytes", b"0123456789", 0, 0).expect("set");
        let m = c.mem_bytes();
        assert!(m >= (9 + 10) as u64, "must cover key and value bytes");
        let rec = c.load_record();
        assert_eq!(rec.cachelet, CacheletId(3));
        assert_eq!(rec.mem_bytes, m);
    }

    #[test]
    fn seg_backed_cachelet_serves_the_same_surface() {
        let mut c = Cachelet::with_engine(CacheletId(9), Box::new(SegEngine::new(1 << 20)));
        c.set(b"k", b"v", 0, 1_000).expect("set");
        assert_eq!(c.get(b"k", 500).expect("hit").as_ref(), b"v");
        assert!(c.touch(b"k", 500, 2_000));
        assert!(c.get(b"k", 1_500).is_some(), "touch extended life");
        assert!(c.delete(b"k", 1_500));
        assert_eq!(c.engine_stats().len, 0);
        assert_eq!(c.stats().writes, 3);
    }
}
