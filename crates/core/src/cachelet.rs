//! The cachelet: MBal's unit of partitioning and load balancing (§2.1).
//!
//! A cachelet is a configurable resource container that encapsulates
//! multiple virtual nodes and is managed as a separate entity by a single
//! worker thread. It bundles a [`HashTable`], access statistics, an EWMA
//! load estimate, and migration/lease state. Because exactly one worker
//! owns a cachelet at any time, none of its operations synchronize.

use crate::stats::{AccessStats, CacheletLoad, Ewma};
use crate::store::ValueStore;
use crate::table::{HashTable, SetOutcome, TableStats};
use crate::types::{CacheError, CacheletId, WorkerId};
use std::borrow::Cow;

/// Where a cachelet currently lives relative to its home worker.
///
/// Server-local migration (Phase 2) and coordinated migration (Phase 3) are
/// lease-based for ephemeral hotspots: a migrated cachelet returns to its
/// home worker when the lease expires and the hotspot has cooled (§3.3).
/// Phase 3 migrations are permanent (no lease).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// The cachelet is on its home worker.
    Home,
    /// Migrated within the server; returns home when the lease expires.
    Leased {
        /// The original (home) worker.
        home: WorkerId,
        /// Absolute lease expiry in milliseconds.
        lease_expiry_ms: u64,
    },
    /// Permanently migrated across servers (Phase 3).
    Adopted,
}

/// A cachelet: hash table + statistics + residency state.
#[derive(Debug)]
pub struct Cachelet {
    id: CacheletId,
    table: HashTable,
    stats: AccessStats,
    epoch_base: AccessStats,
    load: Ewma,
    residency: Residency,
}

impl Cachelet {
    /// Creates an empty cachelet with the given `id`.
    pub fn new(id: CacheletId) -> Self {
        Self {
            id,
            table: HashTable::new(64),
            stats: AccessStats::default(),
            epoch_base: AccessStats::default(),
            load: Ewma::default(),
            residency: Residency::Home,
        }
    }

    /// The cachelet identifier.
    pub fn id(&self) -> CacheletId {
        self.id
    }

    /// Current residency state.
    pub fn residency(&self) -> Residency {
        self.residency
    }

    /// Marks the cachelet as leased out from `home` until
    /// `lease_expiry_ms` (Phase 2 migration).
    pub fn lease_out(&mut self, home: WorkerId, lease_expiry_ms: u64) {
        self.residency = Residency::Leased {
            home,
            lease_expiry_ms,
        };
    }

    /// Marks the cachelet as permanently adopted by its current worker.
    pub fn adopt(&mut self) {
        self.residency = Residency::Adopted;
    }

    /// Restores home residency (lease expiry or explicit return).
    pub fn restore_home(&mut self) {
        self.residency = Residency::Home;
    }

    /// Returns `Some(home)` if the lease has expired at `now_ms`.
    pub fn lease_expired(&self, now_ms: u64) -> Option<WorkerId> {
        match self.residency {
            Residency::Leased {
                home,
                lease_expiry_ms,
            } if lease_expiry_ms <= now_ms => Some(home),
            _ => None,
        }
    }

    /// Looks up `key` and records the access.
    pub fn get<'s, S: ValueStore>(
        &mut self,
        key: &[u8],
        store: &'s mut S,
        now_ms: u64,
    ) -> Option<Cow<'s, [u8]>> {
        self.stats.reads += 1;
        match self.table.get(key, store, now_ms) {
            Some(v) => {
                self.stats.hits += 1;
                self.stats.bytes_out += v.len() as u64;
                Some(v)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts or replaces `key` and records the access.
    pub fn set<S: ValueStore>(
        &mut self,
        key: &[u8],
        value: &[u8],
        store: &mut S,
        now_ms: u64,
        expiry_ms: u64,
    ) -> Result<SetOutcome, CacheError> {
        self.stats.writes += 1;
        self.stats.bytes_in += value.len() as u64;
        self.table.set(key, value, store, now_ms, expiry_ms)
    }

    /// Deletes `key` and records the access.
    pub fn delete<S: ValueStore>(&mut self, key: &[u8], store: &mut S) -> bool {
        self.stats.writes += 1;
        self.table.delete(key, store)
    }

    /// Conditional insert (Memcached `add`); records the write.
    pub fn add<S: ValueStore>(
        &mut self,
        key: &[u8],
        value: &[u8],
        store: &mut S,
        now_ms: u64,
        expiry_ms: u64,
    ) -> Result<bool, CacheError> {
        self.stats.writes += 1;
        self.stats.bytes_in += value.len() as u64;
        self.table.add(key, value, store, now_ms, expiry_ms)
    }

    /// Conditional overwrite (Memcached `replace`); records the write.
    pub fn replace<S: ValueStore>(
        &mut self,
        key: &[u8],
        value: &[u8],
        store: &mut S,
        now_ms: u64,
        expiry_ms: u64,
    ) -> Result<bool, CacheError> {
        self.stats.writes += 1;
        self.stats.bytes_in += value.len() as u64;
        self.table.replace(key, value, store, now_ms, expiry_ms)
    }

    /// Append/prepend (Memcached `append`/`prepend`); records the write.
    pub fn concat<S: ValueStore>(
        &mut self,
        key: &[u8],
        suffix: &[u8],
        front: bool,
        store: &mut S,
        now_ms: u64,
    ) -> Result<Option<usize>, CacheError> {
        self.stats.writes += 1;
        self.stats.bytes_in += suffix.len() as u64;
        self.table.concat(key, suffix, front, store, now_ms)
    }

    /// Counter arithmetic (Memcached `incr`/`decr`); records the write.
    pub fn incr<S: ValueStore>(
        &mut self,
        key: &[u8],
        delta: i64,
        store: &mut S,
        now_ms: u64,
    ) -> Result<Option<u64>, CacheError> {
        self.stats.writes += 1;
        self.table.incr(key, delta, store, now_ms)
    }

    /// TTL refresh (Memcached `touch`); records the write.
    pub fn touch(&mut self, key: &[u8], now_ms: u64, expiry_ms: u64) -> bool {
        self.stats.writes += 1;
        self.table.touch(key, now_ms, expiry_ms)
    }

    /// Read access to the underlying table (migration & inspection).
    pub fn table(&self) -> &HashTable {
        &self.table
    }

    /// Mutable access to the underlying table (migration machinery).
    pub fn table_mut(&mut self) -> &mut HashTable {
        &mut self.table
    }

    /// Cumulative access statistics.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Table statistics (length, evictions, …).
    pub fn table_stats(&self) -> TableStats {
        self.table.stats()
    }

    /// Closes an epoch of `epoch_secs` seconds: feeds the request rate into
    /// the EWMA and returns the epoch's raw counters.
    pub fn end_epoch(&mut self, epoch_secs: f64) -> AccessStats {
        let delta = self.stats.delta(&self.epoch_base);
        self.epoch_base = self.stats;
        let rate = if epoch_secs > 0.0 {
            delta.ops() as f64 / epoch_secs
        } else {
            0.0
        };
        self.load.update(rate);
        delta
    }

    /// Smoothed request rate in ops/second.
    pub fn load(&self) -> f64 {
        self.load.value()
    }

    /// Memory charged to this cachelet in bytes. `value_bytes` is the
    /// caller-tracked portion held in the worker's [`ValueStore`]; the
    /// cachelet adds its key and entry overhead.
    pub fn mem_bytes(&self, value_bytes: usize) -> u64 {
        (self.table.overhead_bytes() + value_bytes) as u64
    }

    /// Builds the balancer-facing load record.
    pub fn load_record(&self, value_bytes: usize) -> CacheletLoad {
        let delta = self.stats.delta(&self.epoch_base);
        CacheletLoad {
            cachelet: self.id,
            load: self.load(),
            mem_bytes: self.mem_bytes(value_bytes),
            read_ratio: if delta.ops() > 0 {
                delta.read_ratio()
            } else {
                self.stats.read_ratio()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MallocStore;

    fn fixture() -> (Cachelet, MallocStore) {
        (Cachelet::new(CacheletId(3)), MallocStore::new(usize::MAX))
    }

    #[test]
    fn get_set_updates_stats() {
        let (mut c, mut s) = fixture();
        assert!(c.get(b"missing", &mut s, 0).is_none());
        c.set(b"k", b"value", &mut s, 0, 0).expect("set");
        assert_eq!(c.get(b"k", &mut s, 0).expect("hit").as_ref(), b"value");
        let st = c.stats();
        assert_eq!(st.reads, 2);
        assert_eq!(st.writes, 1);
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
        assert_eq!(st.bytes_in, 5);
        assert_eq!(st.bytes_out, 5);
    }

    #[test]
    fn epoch_updates_ewma_load() {
        let (mut c, mut s) = fixture();
        for i in 0..100u32 {
            c.set(format!("k{i}").as_bytes(), b"v", &mut s, 0, 0)
                .expect("set");
        }
        let delta = c.end_epoch(1.0);
        assert_eq!(delta.writes, 100);
        assert!((c.load() - 100.0).abs() < 1e-9, "first epoch primes EWMA");
        let _ = c.end_epoch(1.0);
        assert!(c.load() < 100.0, "idle epoch decays the load");
    }

    #[test]
    fn lease_lifecycle() {
        let (mut c, _s) = fixture();
        assert_eq!(c.residency(), Residency::Home);
        c.lease_out(WorkerId(1), 1_000);
        assert_eq!(c.lease_expired(999), None);
        assert_eq!(c.lease_expired(1_000), Some(WorkerId(1)));
        c.restore_home();
        assert_eq!(c.residency(), Residency::Home);
        c.adopt();
        assert_eq!(c.residency(), Residency::Adopted);
        assert_eq!(c.lease_expired(u64::MAX), None, "adoption is permanent");
    }

    #[test]
    fn mem_accounting_includes_overhead() {
        let (mut c, mut s) = fixture();
        c.set(b"key-bytes", b"0123456789", &mut s, 0, 0)
            .expect("set");
        let m = c.mem_bytes(10);
        assert!(m >= (9 + 10) as u64, "must cover key and value bytes");
        let rec = c.load_record(10);
        assert_eq!(rec.cachelet, CacheletId(3));
        assert_eq!(rec.mem_bytes, m);
    }
}
