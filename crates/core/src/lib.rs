//! # mbal-core
//!
//! Core building blocks of the MBal in-memory object caching framework
//! (Cheng, Gupta, Butt — EuroSys 2015).
//!
//! MBal partitions user objects and compute/memory resources into
//! non-overlapping subsets called *cachelets*. Each cachelet is owned by
//! exactly one worker thread, so inserts (`SET`) and lookups (`GET`) take no
//! locks at all — the single-writer discipline replaces synchronization.
//!
//! This crate provides:
//!
//! - [`types`] — keys, identifiers, errors shared across the workspace.
//! - [`hash`] — the 64-bit key hash functions used for sharding and bucket
//!   placement.
//! - [`mem`] — the hierarchical slab memory manager of §2.4 of the paper:
//!   a global chunk pool plus thread-local per-size-class free lists, with
//!   NUMA-aware placement and the `GLOB_MEM_LOW_THRESH` /
//!   `THR_MEM_HIGH_THRESH` rebalancing thresholds.
//! - [`store`] — pluggable value storage backends ([`store::ValueStore`]):
//!   the slab store plus the `malloc`/`static`/shared-arena ablations used
//!   by Figure 8 of the paper.
//! - [`table`] — the single-writer open-chaining hash table with an
//!   intrusive LRU list threaded through its entry slab.
//! - [`engine`] — pluggable storage engines behind the [`engine::Engine`]
//!   trait: the slab+LRU table as [`engine::slab_lru`], plus a
//!   Segcache-style segment-structured engine ([`engine::seg`]) with
//!   TTL-bucketed segments, whole-segment expiry, and merge-based
//!   eviction.
//! - [`cachelet`] — the cachelet abstraction: storage engine + statistics +
//!   memory accounting + lease state.
//! - [`stats`] — epoch-based access statistics and EWMA load tracking
//!   consumed by the load balancer.
//! - [`hotkey`] — SPORE-style proportional-sampling hot-key tracker with
//!   weighted read increments and write decrements.
//! - [`replica`] — the separate replica hash table kept by shadow workers
//!   during Phase 1 key replication.
//! - [`clock`] — a pluggable time source so the same code runs on real
//!   time (servers) and simulated time (the cluster simulator).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cachelet;
pub mod clock;
pub mod engine;
pub mod hash;
pub mod hotkey;
pub mod mem;
pub mod replica;
pub mod stats;
pub mod store;
pub mod table;
pub mod types;

pub use cachelet::Cachelet;
pub use clock::{Clock, ManualClock, RealClock};
pub use engine::{Engine, EngineKind, EngineStats};
pub use stats::AccessStats;
pub use types::{CacheError, CacheletId, Key, ServerId, TenantId, Value, VnId, WorkerId};
