//! Protocol fuzzing: every representable message round-trips through
//! the wire codec bit-exactly, and arbitrary byte soup never panics the
//! decoder — it errors.

use mbal_core::types::{CacheletId, Value, WorkerAddr};
use mbal_proto::codec::{
    decode_batch_request, decode_request, decode_response, encode_batch_request, encode_request,
    encode_response, opcode_of,
};
use mbal_proto::{Request, Response, Status};
use proptest::prelude::*;

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 1..64)
}

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..512)
}

fn bytes_strategy() -> impl Strategy<Value = Value> {
    value_strategy().prop_map(Value::from)
}

fn cachelet_strategy() -> impl Strategy<Value = CacheletId> {
    (0u32..=u16::MAX as u32).prop_map(CacheletId)
}

fn worker_strategy() -> impl Strategy<Value = WorkerAddr> {
    (any::<u16>(), any::<u16>()).prop_map(|(s, w)| WorkerAddr::new(s, w))
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        (cachelet_strategy(), key_strategy()).prop_map(|(c, k)| Request::Get {
            cachelet: c,
            key: k
        }),
        (
            cachelet_strategy(),
            key_strategy(),
            bytes_strategy(),
            any::<u64>()
        )
            .prop_map(|(c, k, v, e)| Request::Set {
                cachelet: c,
                key: k,
                value: v,
                expiry_ms: e
            }),
        (cachelet_strategy(), key_strategy()).prop_map(|(c, k)| Request::Delete {
            cachelet: c,
            key: k
        }),
        prop::collection::vec((cachelet_strategy(), key_strategy()), 0..32)
            .prop_map(|keys| Request::MultiGet { keys }),
        key_strategy().prop_map(|k| Request::ReplicaRead { key: k }),
        (key_strategy(), bytes_strategy(), any::<u64>()).prop_map(|(k, v, l)| {
            Request::ReplicaInstall {
                key: k,
                value: v,
                lease_expiry_ms: l,
            }
        }),
        (key_strategy(), bytes_strategy())
            .prop_map(|(k, v)| Request::ReplicaUpdate { key: k, value: v }),
        key_strategy().prop_map(|k| Request::ReplicaInvalidate { key: k }),
        (
            cachelet_strategy(),
            prop::collection::vec((key_strategy(), bytes_strategy(), any::<u64>()), 0..16)
        )
            .prop_map(|(c, entries)| Request::MigrateEntries {
                cachelet: c,
                entries
            }),
        cachelet_strategy().prop_map(|c| Request::MigrateCommit { cachelet: c }),
        (cachelet_strategy(), worker_strategy()).prop_map(|(c, h)| Request::MigrateAbort {
            cachelet: c,
            home: h
        }),
        any::<bool>().prop_map(|reset| Request::Stats { reset }),
        any::<u64>().prop_map(|v| Request::Heartbeat { version: v }),
        (
            cachelet_strategy(),
            key_strategy(),
            bytes_strategy(),
            any::<u64>()
        )
            .prop_map(|(c, k, v, e)| Request::Add {
                cachelet: c,
                key: k,
                value: v,
                expiry_ms: e
            }),
        (
            cachelet_strategy(),
            key_strategy(),
            bytes_strategy(),
            any::<u64>()
        )
            .prop_map(|(c, k, v, e)| Request::Replace {
                cachelet: c,
                key: k,
                value: v,
                expiry_ms: e
            }),
        (
            cachelet_strategy(),
            key_strategy(),
            bytes_strategy(),
            any::<bool>()
        )
            .prop_map(|(c, k, v, f)| Request::Concat {
                cachelet: c,
                key: k,
                value: v,
                front: f
            }),
        (cachelet_strategy(), key_strategy(), any::<i64>()).prop_map(|(c, k, d)| Request::Incr {
            cachelet: c,
            key: k,
            delta: d
        }),
        (cachelet_strategy(), key_strategy(), any::<u64>()).prop_map(|(c, k, e)| Request::Touch {
            cachelet: c,
            key: k,
            expiry_ms: e
        }),
    ]
}

fn response_strategy() -> impl Strategy<Value = (Response, Request)> {
    // Pair each response with a request whose opcode legitimizes it.
    prop_oneof![
        (
            bytes_strategy(),
            prop::collection::vec(worker_strategy(), 0..8),
            key_strategy()
        )
            .prop_map(|(v, r, k)| (
                Response::Value {
                    value: v,
                    replicas: r
                },
                Request::Get {
                    cachelet: CacheletId(0),
                    key: k
                },
            )),
        prop::collection::vec(prop::option::of(bytes_strategy()), 0..32).prop_map(|values| (
            Response::Values { values },
            Request::MultiGet { keys: vec![] },
        )),
        key_strategy().prop_map(|k| (
            Response::NotFound,
            Request::Get {
                cachelet: CacheletId(0),
                key: k
            }
        )),
        key_strategy().prop_map(|k| (
            Response::Stored,
            Request::Set {
                cachelet: CacheletId(0),
                key: k,
                value: Value::new(),
                expiry_ms: 0
            }
        )),
        key_strategy().prop_map(|k| (
            Response::Deleted,
            Request::Delete {
                cachelet: CacheletId(0),
                key: k
            }
        )),
        (cachelet_strategy(), worker_strategy(), key_strategy()).prop_map(|(c, w, k)| (
            Response::Moved {
                cachelet: c,
                new_owner: w
            },
            Request::Get {
                cachelet: c,
                key: k
            },
        )),
        value_strategy().prop_map(|p| (
            Response::StatsBlob { payload: p },
            Request::Stats { reset: false }
        )),
        (any::<u64>(), key_strategy()).prop_map(|(v, k)| (
            Response::Counter { value: v },
            Request::Incr {
                cachelet: CacheletId(0),
                key: k,
                delta: 0
            },
        )),
        key_strategy().prop_map(|k| (
            Response::Touched,
            Request::Touch {
                cachelet: CacheletId(0),
                key: k,
                expiry_ms: 0
            },
        )),
        (
            any::<u64>(),
            prop::collection::vec(
                (
                    any::<u64>(),
                    any::<u32>().prop_map(CacheletId),
                    worker_strategy()
                ),
                0..16
            ),
            any::<bool>()
        )
            .prop_map(|(v, d, f)| (
                Response::HeartbeatAck {
                    version: v,
                    deltas: d,
                    full_refetch: f
                },
                Request::Heartbeat { version: 0 },
            )),
        (
            prop_oneof![Just(Status::OutOfMemory), Just(Status::Error)],
            "[ -~]{0,64}",
            key_strategy()
        )
            .prop_map(|(st, msg, k)| (
                Response::Fail {
                    status: st,
                    message: msg
                },
                Request::Set {
                    cachelet: CacheletId(0),
                    key: k,
                    value: Value::new(),
                    expiry_ms: 0
                },
            )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_roundtrip(req in request_strategy(), opaque in any::<u32>()) {
        let frame = encode_request(&req, opaque).expect("encode");
        let (decoded, op) = decode_request(&frame).expect("decode");
        prop_assert_eq!(decoded, req);
        prop_assert_eq!(op, opaque);
    }

    #[test]
    fn responses_roundtrip((resp, req) in response_strategy(), opaque in any::<u32>()) {
        let frame = encode_response(&resp, opcode_of(&req), opaque).expect("encode");
        let (decoded, _, op) = decode_response(&frame).expect("decode");
        prop_assert_eq!(decoded, resp);
        prop_assert_eq!(op, opaque);
    }

    /// Arbitrary bytes never panic the decoders.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Truncating a valid frame anywhere errors cleanly.
    #[test]
    fn truncation_always_errors(req in request_strategy(), cut in 0usize..100) {
        let frame = encode_request(&req, 9).expect("encode");
        if cut < frame.len() {
            let _ = decode_request(&frame[..cut]); // must not panic
            if cut < 24 {
                prop_assert!(decode_request(&frame[..cut]).is_err());
            }
        }
    }

    /// Single-byte corruption either decodes to *something* or errors —
    /// never panics, never loops.
    #[test]
    fn bitflips_never_panic(req in request_strategy(), pos in any::<usize>(), bit in 0u8..8) {
        let mut frame = encode_request(&req, 1).expect("encode");
        let idx = pos % frame.len();
        frame[idx] ^= 1 << bit;
        let _ = decode_request(&frame);
    }

    /// Batch envelopes round-trip: same requests, same order, and each
    /// sub-request's opaque is its index in the batch.
    #[test]
    fn batches_roundtrip(reqs in prop::collection::vec(request_strategy(), 0..16)) {
        let frame = encode_batch_request(&reqs).expect("encode");
        let decoded = decode_batch_request(&frame).expect("decode");
        prop_assert_eq!(decoded.len(), reqs.len());
        for (i, ((got, opaque), want)) in decoded.into_iter().zip(&reqs).enumerate() {
            prop_assert_eq!(&got, want);
            prop_assert_eq!(opaque, i as u32);
        }
    }

    /// Arbitrary bytes never panic the batch decoder either.
    #[test]
    fn batch_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_batch_request(&bytes);
    }

    /// A batch frame truncated anywhere — mid-header, mid-count, or
    /// mid-sub-frame — errors cleanly, never panics.
    #[test]
    fn batch_truncation_always_errors(
        reqs in prop::collection::vec(request_strategy(), 1..8),
        cut in any::<usize>(),
    ) {
        let frame = encode_batch_request(&reqs).expect("encode");
        let cut = cut % frame.len();
        prop_assert!(decode_batch_request(&frame[..cut]).is_err());
    }

    /// Single-byte corruption of a batch frame never panics the decoder.
    #[test]
    fn batch_bitflips_never_panic(
        reqs in prop::collection::vec(request_strategy(), 1..8),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut frame = encode_batch_request(&reqs).expect("encode");
        let idx = pos % frame.len();
        frame[idx] ^= 1 << bit;
        let _ = decode_batch_request(&frame);
    }
}
