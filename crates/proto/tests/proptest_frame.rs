//! The nonblocking [`FrameDecoder`] must agree with the blocking
//! `read_frame` reader (crates/server tcp.rs) on every byte stream and
//! every split of that stream: same frames out, equivalent verdicts on
//! hostile headers, truncation, and garbage.

use mbal_core::types::CacheletId;
use mbal_proto::codec::{
    encode_request, CodecError, HEADER_LEN, MAGIC_REQUEST, MAGIC_RESPONSE, MAX_FRAME_LEN,
};
use mbal_proto::{FrameDecoder, Request};
use proptest::prelude::*;
use std::io::{Cursor, ErrorKind, Read};

/// Reference implementation: a verbatim port of the blocking
/// `read_frame` in the server's TCP transport, reading from an
/// in-memory cursor instead of a socket.
fn read_frame_blocking(stream: &mut Cursor<&[u8]>) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; HEADER_LEN];
    match stream.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    if header[0] != MAGIC_REQUEST && header[0] != MAGIC_RESPONSE {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("bad magic {:#x}", header[0]),
        ));
    }
    let total = match mbal_proto::codec::frame_len(&header) {
        Some(t) if t <= MAX_FRAME_LEN => t,
        Some(t) => {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("frame of {t} bytes exceeds the {MAX_FRAME_LEN} byte cap"),
            ))
        }
        None => {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                "short frame header",
            ))
        }
    };
    let mut frame = vec![0u8; total];
    frame[..HEADER_LEN].copy_from_slice(&header);
    stream.read_exact(&mut frame[HEADER_LEN..])?;
    Ok(Some(frame))
}

fn run_blocking(stream: &[u8]) -> (Vec<Vec<u8>>, Option<ErrorKind>) {
    let mut cur = Cursor::new(stream);
    let mut frames = Vec::new();
    loop {
        match read_frame_blocking(&mut cur) {
            Ok(Some(f)) => frames.push(f),
            Ok(None) => return (frames, None),
            Err(e) => return (frames, Some(e.kind())),
        }
    }
}

fn run_decoder(stream: &[u8], chunk: usize) -> (Vec<Vec<u8>>, Option<CodecError>, bool) {
    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    for piece in stream.chunks(chunk.max(1)) {
        dec.push(piece);
        loop {
            match dec.next_frame() {
                Ok(Some(f)) => frames.push(f.to_vec()),
                Ok(None) => break,
                Err(e) => return (frames, Some(e), dec.is_clean()),
            }
        }
    }
    let clean = dec.is_clean();
    (frames, None, clean)
}

/// A stream segment: a well-formed frame, raw garbage, or a crafted
/// header with chosen magic and body length (the hostile cases).
fn segment_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        3 => (prop::collection::vec(any::<u8>(), 1..16), prop::collection::vec(any::<u8>(), 0..128))
            .prop_map(|(k, v)| encode_request(
                &Request::Set {
                    cachelet: CacheletId(1),
                    key: k,
                    value: v.into(),
                    expiry_ms: 0,
                },
                9,
            )
            .expect("encode")),
        1 => prop::collection::vec(any::<u8>(), 1..64),
        1 => (
            prop_oneof![Just(MAGIC_REQUEST), Just(MAGIC_RESPONSE), any::<u8>()],
            any::<u32>(),
        )
            .prop_map(|(magic, body_len)| {
                let mut h = vec![0u8; HEADER_LEN];
                h[0] = magic;
                h[8..12].copy_from_slice(&body_len.to_be_bytes());
                h
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Any stream, any chunking — from byte-at-a-time up through the
    /// whole stream at once — yields exactly the frames the blocking
    /// reader extracts, with equivalent error verdicts.
    #[test]
    fn decoder_matches_blocking_reader(
        segments in prop::collection::vec(segment_strategy(), 0..6),
        chunk in 1usize..512,
        cut in any::<usize>(),
    ) {
        let mut stream: Vec<u8> = segments.concat();
        // Also exercise truncation: lop off a suffix half the time.
        if !stream.is_empty() && cut.is_multiple_of(2) {
            stream.truncate(cut % stream.len());
        }

        let (want, berr) = run_blocking(&stream);
        let (got, derr, clean) = run_decoder(&stream, chunk);
        prop_assert_eq!(&got, &want, "frames must match at chunk {}", chunk);

        match berr {
            // Header validation failure: the decoder must refuse the
            // same header (it cannot see InvalidData reasons, but the
            // variant must correspond).
            Some(ErrorKind::InvalidData) => prop_assert!(
                matches!(derr, Some(CodecError::BadMagic(_)) | Some(CodecError::FrameTooLarge(_))),
                "blocking rejected the header, decoder said {:?}", derr
            ),
            // EOF mid-body: the decoder just waits for more; the
            // stream ends dirty.
            Some(ErrorKind::UnexpectedEof) => {
                prop_assert_eq!(&derr, &None);
                prop_assert!(!clean, "mid-frame EOF must not look clean");
            }
            Some(k) => prop_assert!(false, "unexpected blocking error {k:?}"),
            // Clean stop: the decoder errors on nothing, and is clean
            // exactly when the blocking reader consumed every byte at
            // a frame boundary.
            None => {
                prop_assert_eq!(&derr, &None);
                let consumed: usize = want.iter().map(Vec::len).sum();
                prop_assert_eq!(clean, consumed == stream.len());
            }
        }
    }

    /// Frames recovered through the decoder decode to the same request
    /// the blocking path would see.
    #[test]
    fn decoded_frames_parse_identically(
        key in prop::collection::vec(any::<u8>(), 1..32),
        value in prop::collection::vec(any::<u8>(), 0..256),
        chunk in 1usize..64,
    ) {
        let req = Request::Set {
            cachelet: CacheletId(2),
            key,
            value: value.into(),
            expiry_ms: 5,
        };
        let frame = encode_request(&req, 11).expect("encode");
        let (got, err, clean) = run_decoder(&frame, chunk);
        prop_assert_eq!(err, None);
        prop_assert!(clean);
        prop_assert_eq!(got.len(), 1);
        let (decoded, opaque) = mbal_proto::codec::decode_request(&got[0]).expect("decode");
        prop_assert_eq!(decoded, req);
        prop_assert_eq!(opaque, 11);
    }
}
