//! # mbal-proto
//!
//! The Memcached-style binary wire protocol used between MBal clients,
//! workers, and the coordinator (§2.3).
//!
//! As in the paper, the 2-byte field the Memcached binary protocol
//! reserves for the *virtual bucket* is overloaded to carry the **cachelet
//! id**, so protocol-compliant clients route requests to the owning worker
//! with no server-side dispatcher. Frames are the classic 24-byte header
//! plus body; MBal's extension opcodes (replica management, bucket
//! migration, heartbeats, statistics) use the same envelope.
//!
//! [`message`] defines the typed [`message::Request`]/[`message::Response`]
//! model used throughout the workspace; [`codec`] maps it to and from wire
//! bytes. In-process transports pass the typed messages directly; the TCP
//! transport round-trips them through [`codec`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod frame;
pub mod message;

pub use codec::{decode_request, decode_response, encode_request, encode_response, CodecError};
pub use frame::FrameDecoder;
pub use message::{Request, Response, Status};
