//! Binary wire codec.
//!
//! Frames follow the Memcached binary protocol envelope: a 24-byte header
//! followed by `total_body_len` body bytes. The vbucket field carries the
//! cachelet id on requests and the status code on responses. The 8-byte
//! CAS field is reused for expiry/lease/version payloads, which keeps all
//! standard ops inside the stock envelope; MBal's extension opcodes place
//! structured lists in the body.

use crate::message::{Request, Response, Status};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mbal_core::types::{CacheletId, ServerId, TenantId, Value, WorkerAddr, WorkerId};

/// Request magic byte.
pub const MAGIC_REQUEST: u8 = 0x80;
/// Response magic byte.
pub const MAGIC_RESPONSE: u8 = 0x81;
/// Header size in bytes.
pub const HEADER_LEN: usize = 24;
/// Upper bound on a single frame accepted off the wire. Body lengths are
/// attacker-controlled u32s; without a cap a malicious header could make
/// the framing layer allocate 4 GiB before reading a single body byte.
pub const MAX_FRAME_LEN: usize = 64 << 20;
/// Extras length carried by a request acting for a non-default tenant:
/// a big-endian `u16` tenant id in the (otherwise unused) extras field.
/// Default-tenant frames carry no extras, so pre-tenant peers and frames
/// interoperate unchanged.
pub const TENANT_EXTRAS_LEN: u8 = 2;

/// Wire opcodes. Standard Memcached values where they exist; MBal
/// extensions start at 0x40.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Single-key lookup.
    Get = 0x00,
    /// Insert/replace.
    Set = 0x01,
    /// Delete.
    Delete = 0x04,
    /// Statistics fetch.
    Stats = 0x10,
    /// Batched lookup.
    MultiGet = 0x40,
    /// Replica read at a shadow worker.
    ReplicaRead = 0x41,
    /// Replica install/refresh.
    ReplicaInstall = 0x42,
    /// Replica write propagation.
    ReplicaUpdate = 0x43,
    /// Replica drop.
    ReplicaInvalidate = 0x44,
    /// Bucket-granular migration data.
    MigrateEntries = 0x45,
    /// Migration completion marker.
    MigrateCommit = 0x46,
    /// Client ↔ coordinator heartbeat.
    Heartbeat = 0x47,
    /// Batched-RPC envelope: the body carries a count plus that many
    /// complete request sub-frames, each with its own opaque. Responses
    /// are *not* wrapped — the responder pipelines one response frame
    /// per sub-request (echoing its opaque) so a connection drop
    /// mid-batch still yields per-operation outcomes.
    Batch = 0x48,
    /// Migration rollback marker: the destination discards partial
    /// state for the cachelet and forwards clients to the home worker.
    MigrateAbort = 0x49,
    /// Membership: admit a server (coordinator-served).
    Join = 0x4A,
    /// Membership: drain a server ahead of removal (coordinator-served).
    Drain = 0x4B,
    /// Fetch the cached cluster membership view from a server.
    ClusterStatus = 0x4C,
    /// Conditional insert.
    Add = 0x02,
    /// Conditional overwrite.
    Replace = 0x03,
    /// Counter increment/decrement (signed delta in CAS).
    Incr = 0x05,
    /// Append/prepend (vbucket high bit unused; direction in CAS).
    Concat = 0x0E,
    /// TTL refresh.
    Touch = 0x1C,
}

impl Opcode {
    fn from_u8(v: u8) -> Option<Opcode> {
        Some(match v {
            0x00 => Opcode::Get,
            0x01 => Opcode::Set,
            0x02 => Opcode::Add,
            0x03 => Opcode::Replace,
            0x04 => Opcode::Delete,
            0x05 => Opcode::Incr,
            0x0E => Opcode::Concat,
            0x1C => Opcode::Touch,
            0x10 => Opcode::Stats,
            0x40 => Opcode::MultiGet,
            0x41 => Opcode::ReplicaRead,
            0x42 => Opcode::ReplicaInstall,
            0x43 => Opcode::ReplicaUpdate,
            0x44 => Opcode::ReplicaInvalidate,
            0x45 => Opcode::MigrateEntries,
            0x46 => Opcode::MigrateCommit,
            0x47 => Opcode::Heartbeat,
            0x48 => Opcode::Batch,
            0x49 => Opcode::MigrateAbort,
            0x4A => Opcode::Join,
            0x4B => Opcode::Drain,
            0x4C => Opcode::ClusterStatus,
            _ => return None,
        })
    }
}

/// Codec failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The frame is shorter than its header demands.
    Truncated,
    /// Unknown magic byte.
    BadMagic(u8),
    /// Unknown opcode.
    BadOpcode(u8),
    /// Unknown status code.
    BadStatus(u16),
    /// A cachelet id exceeded the 16-bit vbucket field.
    CacheletOverflow(u32),
    /// A frame header advertised a body past [`MAX_FRAME_LEN`].
    FrameTooLarge(usize),
    /// Structured body failed to parse.
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated frame"),
            CodecError::BadMagic(m) => write!(f, "bad magic {m:#x}"),
            CodecError::BadOpcode(o) => write!(f, "bad opcode {o:#x}"),
            CodecError::BadStatus(s) => write!(f, "bad status {s}"),
            CodecError::CacheletOverflow(c) => {
                write!(f, "cachelet id {c} exceeds the 16-bit vbucket field")
            }
            CodecError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_LEN} byte cap")
            }
            CodecError::Malformed(m) => write!(f, "malformed body: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn vbucket(c: CacheletId) -> Result<u16, CodecError> {
    u16::try_from(c.0).map_err(|_| CodecError::CacheletOverflow(c.0))
}

struct Header {
    magic: u8,
    opcode: u8,
    key_len: u16,
    extras_len: u8,
    vbucket_or_status: u16,
    body_len: u32,
    opaque: u32,
    cas: u64,
}

fn put_header(buf: &mut BytesMut, h: &Header) {
    buf.put_u8(h.magic);
    buf.put_u8(h.opcode);
    buf.put_u16(h.key_len);
    buf.put_u8(h.extras_len);
    buf.put_u8(0); // data type
    buf.put_u16(h.vbucket_or_status);
    buf.put_u32(h.body_len);
    buf.put_u32(h.opaque);
    buf.put_u64(h.cas);
}

fn parse_header(frame: &[u8]) -> Result<Header, CodecError> {
    if frame.len() < HEADER_LEN {
        return Err(CodecError::Truncated);
    }
    let mut b = frame;
    let magic = b.get_u8();
    let opcode = b.get_u8();
    let key_len = b.get_u16();
    let extras_len = b.get_u8();
    let _data_type = b.get_u8();
    let vbucket_or_status = b.get_u16();
    let body_len = b.get_u32();
    let opaque = b.get_u32();
    let cas = b.get_u64();
    if frame.len() < HEADER_LEN + body_len as usize {
        return Err(CodecError::Truncated);
    }
    Ok(Header {
        magic,
        opcode,
        key_len,
        extras_len,
        vbucket_or_status,
        body_len,
        opaque,
        cas,
    })
}

/// Total frame length implied by a 24-byte header prefix, for stream
/// framing. Returns `None` if fewer than [`HEADER_LEN`] bytes are given.
pub fn frame_len(prefix: &[u8]) -> Option<usize> {
    if prefix.len() < HEADER_LEN {
        return None;
    }
    let body = u32::from_be_bytes(prefix[8..12].try_into().expect("4 bytes")) as usize;
    Some(HEADER_LEN + body)
}

fn simple_request(
    opcode: Opcode,
    vb: u16,
    key: &[u8],
    value: &[u8],
    opaque: u32,
    cas: u64,
) -> BytesMut {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + key.len() + value.len());
    put_header(
        &mut buf,
        &Header {
            magic: MAGIC_REQUEST,
            opcode: opcode as u8,
            key_len: key.len() as u16,
            extras_len: 0,
            vbucket_or_status: vb,
            body_len: (key.len() + value.len()) as u32,
            opaque,
            cas,
        },
    );
    buf.put_slice(key);
    buf.put_slice(value);
    buf
}

/// Encodes a request into a complete wire frame. `opaque` is echoed in the
/// matching response for correlation.
///
/// A [`Request::ForTenant`] wrapper is not an opcode of its own: the
/// inner request is encoded normally and the tenant id rides the
/// header's extras field ([`TENANT_EXTRAS_LEN`] bytes before the key).
pub fn encode_request(req: &Request, opaque: u32) -> Result<Vec<u8>, CodecError> {
    let (tenant, req) = match req {
        Request::ForTenant { tenant, req } => {
            if matches!(req.as_ref(), Request::ForTenant { .. }) {
                return Err(CodecError::Malformed("nested tenant wrapper"));
            }
            (tenant.0, req.as_ref())
        }
        other => (0u16, other),
    };
    let buf = match req {
        Request::Get { cachelet, key } => {
            simple_request(Opcode::Get, vbucket(*cachelet)?, key, &[], opaque, 0)
        }
        Request::Set {
            cachelet,
            key,
            value,
            expiry_ms,
        } => simple_request(
            Opcode::Set,
            vbucket(*cachelet)?,
            key,
            value,
            opaque,
            *expiry_ms,
        ),
        Request::Delete { cachelet, key } => {
            simple_request(Opcode::Delete, vbucket(*cachelet)?, key, &[], opaque, 0)
        }
        Request::Add {
            cachelet,
            key,
            value,
            expiry_ms,
        } => simple_request(
            Opcode::Add,
            vbucket(*cachelet)?,
            key,
            value,
            opaque,
            *expiry_ms,
        ),
        Request::Replace {
            cachelet,
            key,
            value,
            expiry_ms,
        } => simple_request(
            Opcode::Replace,
            vbucket(*cachelet)?,
            key,
            value,
            opaque,
            *expiry_ms,
        ),
        Request::Concat {
            cachelet,
            key,
            value,
            front,
        } => simple_request(
            Opcode::Concat,
            vbucket(*cachelet)?,
            key,
            value,
            opaque,
            u64::from(*front),
        ),
        Request::Incr {
            cachelet,
            key,
            delta,
        } => simple_request(
            Opcode::Incr,
            vbucket(*cachelet)?,
            key,
            &[],
            opaque,
            *delta as u64,
        ),
        Request::Touch {
            cachelet,
            key,
            expiry_ms,
        } => simple_request(
            Opcode::Touch,
            vbucket(*cachelet)?,
            key,
            &[],
            opaque,
            *expiry_ms,
        ),
        Request::ReplicaRead { key } => simple_request(Opcode::ReplicaRead, 0, key, &[], opaque, 0),
        Request::ReplicaInstall {
            key,
            value,
            lease_expiry_ms,
        } => simple_request(
            Opcode::ReplicaInstall,
            0,
            key,
            value,
            opaque,
            *lease_expiry_ms,
        ),
        Request::ReplicaUpdate { key, value } => {
            simple_request(Opcode::ReplicaUpdate, 0, key, value, opaque, 0)
        }
        Request::ReplicaInvalidate { key } => {
            simple_request(Opcode::ReplicaInvalidate, 0, key, &[], opaque, 0)
        }
        Request::Stats { reset } => {
            // The reset flag rides in the cas field, like Concat's
            // front flag.
            simple_request(Opcode::Stats, 0, &[], &[], opaque, u64::from(*reset))
        }
        Request::Heartbeat { version } => {
            simple_request(Opcode::Heartbeat, 0, &[], &[], opaque, *version)
        }
        Request::MultiGet { keys } => {
            let mut body = BytesMut::new();
            body.put_u32(keys.len() as u32);
            for (c, k) in keys {
                body.put_u16(vbucket(*c)?);
                body.put_u16(k.len() as u16);
                body.put_slice(k);
            }
            framed(Opcode::MultiGet, 0, body, opaque, 0)
        }
        Request::MigrateEntries { cachelet, entries } => {
            let mut body = BytesMut::new();
            body.put_u32(entries.len() as u32);
            for (k, v, exp) in entries {
                body.put_u16(k.len() as u16);
                body.put_u32(v.len() as u32);
                body.put_u64(*exp);
                body.put_slice(k);
                body.put_slice(v);
            }
            framed(Opcode::MigrateEntries, vbucket(*cachelet)?, body, opaque, 0)
        }
        Request::MigrateCommit { cachelet } => simple_request(
            Opcode::MigrateCommit,
            vbucket(*cachelet)?,
            &[],
            &[],
            opaque,
            0,
        ),
        Request::MigrateAbort { cachelet, home } => {
            let mut body = BytesMut::new();
            put_worker(&mut body, *home);
            framed(Opcode::MigrateAbort, vbucket(*cachelet)?, body, opaque, 0)
        }
        Request::Join {
            server,
            workers,
            incarnation,
        } => {
            // Server id and worker count ride in the body; the
            // incarnation rides in the cas field like other u64 payloads.
            let mut body = BytesMut::new();
            body.put_u16(server.0);
            body.put_u16(*workers);
            framed(Opcode::Join, 0, body, opaque, *incarnation)
        }
        Request::Drain { server } => {
            let mut body = BytesMut::new();
            body.put_u16(server.0);
            framed(Opcode::Drain, 0, body, opaque, 0)
        }
        Request::ClusterStatus => simple_request(Opcode::ClusterStatus, 0, &[], &[], opaque, 0),
        Request::ForTenant { .. } => unreachable!("tenant wrapper unwrapped above"),
    };
    let mut frame = buf.to_vec();
    if tenant != 0 {
        // Splice the tenant id in as extras and patch the two header
        // fields that change; every request frame above is built with
        // zero extras, so the insert point is fixed.
        frame.splice(HEADER_LEN..HEADER_LEN, tenant.to_be_bytes());
        frame[4] = TENANT_EXTRAS_LEN;
        let body_len = u32::from_be_bytes(frame[8..12].try_into().expect("4 bytes"))
            + TENANT_EXTRAS_LEN as u32;
        frame[8..12].copy_from_slice(&body_len.to_be_bytes());
    }
    Ok(frame)
}

fn framed(opcode: Opcode, vb: u16, body: BytesMut, opaque: u32, cas: u64) -> BytesMut {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + body.len());
    put_header(
        &mut buf,
        &Header {
            magic: MAGIC_REQUEST,
            opcode: opcode as u8,
            key_len: 0,
            extras_len: 0,
            vbucket_or_status: vb,
            body_len: body.len() as u32,
            opaque,
            cas,
        },
    );
    buf.put_slice(&body);
    buf
}

/// Decodes a request frame, returning the request and its opaque.
pub fn decode_request(frame: &[u8]) -> Result<(Request, u32), CodecError> {
    let h = parse_header(frame)?;
    if h.magic != MAGIC_REQUEST {
        return Err(CodecError::BadMagic(h.magic));
    }
    let op = Opcode::from_u8(h.opcode).ok_or(CodecError::BadOpcode(h.opcode))?;
    let body = &frame[HEADER_LEN..HEADER_LEN + h.body_len as usize];
    let key_end = h.extras_len as usize + h.key_len as usize;
    if key_end > body.len() {
        return Err(CodecError::Malformed("key extends past body"));
    }
    let key = body[h.extras_len as usize..key_end].to_vec();
    let value = Value::copy_from_slice(&body[key_end..]);
    // Structured bodies (counted lists) start after the extras too.
    let sbody = &body[h.extras_len as usize..];
    // A non-default tenant rides the extras field; absent extras mean
    // the default tenant, so pre-tenant frames decode unchanged.
    let tenant = if h.extras_len as usize >= TENANT_EXTRAS_LEN as usize {
        u16::from_be_bytes([body[0], body[1]])
    } else {
        0
    };
    let cachelet = CacheletId(h.vbucket_or_status as u32);
    let req = match op {
        Opcode::Get => Request::Get { cachelet, key },
        Opcode::Set => Request::Set {
            cachelet,
            key,
            value,
            expiry_ms: h.cas,
        },
        Opcode::Delete => Request::Delete { cachelet, key },
        Opcode::Add => Request::Add {
            cachelet,
            key,
            value,
            expiry_ms: h.cas,
        },
        Opcode::Replace => Request::Replace {
            cachelet,
            key,
            value,
            expiry_ms: h.cas,
        },
        Opcode::Concat => Request::Concat {
            cachelet,
            key,
            value,
            front: h.cas == 1,
        },
        Opcode::Incr => Request::Incr {
            cachelet,
            key,
            delta: h.cas as i64,
        },
        Opcode::Touch => Request::Touch {
            cachelet,
            key,
            expiry_ms: h.cas,
        },
        Opcode::ReplicaRead => Request::ReplicaRead { key },
        Opcode::ReplicaInstall => Request::ReplicaInstall {
            key,
            value,
            lease_expiry_ms: h.cas,
        },
        Opcode::ReplicaUpdate => Request::ReplicaUpdate { key, value },
        Opcode::ReplicaInvalidate => Request::ReplicaInvalidate { key },
        Opcode::Stats => Request::Stats { reset: h.cas == 1 },
        Opcode::Heartbeat => Request::Heartbeat { version: h.cas },
        Opcode::MigrateCommit => Request::MigrateCommit { cachelet },
        Opcode::MigrateAbort => {
            let mut b = sbody;
            let home = get_worker(&mut b)?;
            Request::MigrateAbort { cachelet, home }
        }
        Opcode::Batch => {
            return Err(CodecError::Malformed(
                "batch envelopes must go through decode_batch_request",
            ))
        }
        Opcode::Join => {
            let mut b = sbody;
            if b.remaining() < 4 {
                return Err(CodecError::Malformed("join body"));
            }
            Request::Join {
                server: ServerId(b.get_u16()),
                workers: b.get_u16(),
                incarnation: h.cas,
            }
        }
        Opcode::Drain => {
            let mut b = sbody;
            if b.remaining() < 2 {
                return Err(CodecError::Malformed("drain body"));
            }
            Request::Drain {
                server: ServerId(b.get_u16()),
            }
        }
        Opcode::ClusterStatus => Request::ClusterStatus,
        Opcode::MultiGet => {
            let mut b = sbody;
            if b.remaining() < 4 {
                return Err(CodecError::Malformed("multiget count"));
            }
            let n = b.get_u32() as usize;
            let mut keys = Vec::with_capacity(n.min(4_096));
            for _ in 0..n {
                if b.remaining() < 4 {
                    return Err(CodecError::Malformed("multiget key header"));
                }
                let c = CacheletId(b.get_u16() as u32);
                let klen = b.get_u16() as usize;
                if b.remaining() < klen {
                    return Err(CodecError::Malformed("multiget key bytes"));
                }
                keys.push((c, b.copy_to_bytes(klen).to_vec()));
            }
            Request::MultiGet { keys }
        }
        Opcode::MigrateEntries => {
            let mut b = sbody;
            if b.remaining() < 4 {
                return Err(CodecError::Malformed("migrate count"));
            }
            let n = b.get_u32() as usize;
            let mut entries = Vec::with_capacity(n.min(4_096));
            for _ in 0..n {
                if b.remaining() < 14 {
                    return Err(CodecError::Malformed("migrate entry header"));
                }
                let klen = b.get_u16() as usize;
                let vlen = b.get_u32() as usize;
                let exp = b.get_u64();
                if b.remaining() < klen + vlen {
                    return Err(CodecError::Malformed("migrate entry bytes"));
                }
                let k = b.copy_to_bytes(klen).to_vec();
                let v = b.copy_to_bytes(vlen);
                entries.push((k, v, exp));
            }
            Request::MigrateEntries { cachelet, entries }
        }
    };
    let req = if tenant != 0 {
        Request::ForTenant {
            tenant: TenantId(tenant),
            req: Box::new(req),
        }
    } else {
        req
    };
    Ok((req, h.opaque))
}

/// Encodes a pipelined batch of requests into one [`Opcode::Batch`]
/// envelope frame: a `u32` count followed by that many complete request
/// sub-frames. Each sub-frame's opaque is its index in `reqs`; responders
/// answer with one ordinary response frame per sub-request, echoing that
/// opaque, so callers can correlate per-operation outcomes even when the
/// connection dies mid-batch.
pub fn encode_batch_request(reqs: &[Request]) -> Result<Vec<u8>, CodecError> {
    let mut body = BytesMut::new();
    body.put_u32(reqs.len() as u32);
    for (i, req) in reqs.iter().enumerate() {
        body.put_slice(&encode_request(req, i as u32)?);
    }
    Ok(framed(Opcode::Batch, 0, body, 0, 0).to_vec())
}

/// Decodes an [`Opcode::Batch`] envelope into its sub-requests and their
/// opaques (batch indices when produced by [`encode_batch_request`]).
pub fn decode_batch_request(frame: &[u8]) -> Result<Vec<(Request, u32)>, CodecError> {
    let h = parse_header(frame)?;
    if h.magic != MAGIC_REQUEST {
        return Err(CodecError::BadMagic(h.magic));
    }
    if h.opcode != Opcode::Batch as u8 {
        return Err(CodecError::BadOpcode(h.opcode));
    }
    let mut body = &frame[HEADER_LEN..HEADER_LEN + h.body_len as usize];
    if body.remaining() < 4 {
        return Err(CodecError::Malformed("batch count"));
    }
    let n = body.get_u32() as usize;
    let mut reqs = Vec::with_capacity(n.min(4_096));
    for _ in 0..n {
        let sub_len = frame_len(body).ok_or(CodecError::Malformed("batch sub-header"))?;
        if body.len() < sub_len {
            return Err(CodecError::Malformed("batch sub-frame bytes"));
        }
        reqs.push(decode_request(&body[..sub_len])?);
        body.advance(sub_len);
    }
    if body.has_remaining() {
        return Err(CodecError::Malformed("trailing bytes after batch"));
    }
    Ok(reqs)
}

/// Cheap opcode-byte check for a batch envelope; callers still run the
/// full [`decode_batch_request`] decoder afterwards.
pub fn is_batch(frame: &[u8]) -> bool {
    frame.len() >= 2 && frame[0] == MAGIC_REQUEST && frame[1] == Opcode::Batch as u8
}

fn put_worker(buf: &mut BytesMut, w: WorkerAddr) {
    buf.put_u16(w.server.0);
    buf.put_u16(w.worker.0);
}

fn get_worker(b: &mut &[u8]) -> Result<WorkerAddr, CodecError> {
    if b.remaining() < 4 {
        return Err(CodecError::Malformed("worker addr"));
    }
    Ok(WorkerAddr {
        server: ServerId(b.get_u16()),
        worker: WorkerId(b.get_u16()),
    })
}

/// Accumulates a response body as iovec-ready fragments: metadata bytes
/// collect in one owned buffer, while value payloads are appended as
/// refcounted [`Bytes`] views — a refcount bump, never a copy.
#[derive(Default)]
struct FragBuf {
    frags: Vec<Bytes>,
    cur: BytesMut,
}

impl FragBuf {
    /// The owned accumulator for metadata bytes.
    fn owned(&mut self) -> &mut BytesMut {
        &mut self.cur
    }

    /// Appends a value payload by reference count, not by copy.
    fn put_shared(&mut self, b: &Bytes) {
        if b.is_empty() {
            return;
        }
        if !self.cur.is_empty() {
            self.frags.push(std::mem::take(&mut self.cur).freeze());
        }
        self.frags.push(b.clone());
    }

    fn len(&self) -> usize {
        self.frags.iter().map(Bytes::len).sum::<usize>() + self.cur.len()
    }

    fn finish(mut self) -> Vec<Bytes> {
        if !self.cur.is_empty() {
            self.frags.push(self.cur.freeze());
        }
        self.frags
    }
}

/// Encodes a response as write-ready fragments: an owned header/metadata
/// fragment followed by any value payloads as shared [`Bytes`] views of
/// the engine's buffer. Concatenated, the fragments are byte-identical
/// to the frame [`encode_response`] builds, but the value bytes are
/// never copied — event-loop writers hand the fragments straight to
/// vectored writes.
pub fn encode_response_frags(
    resp: &Response,
    opcode: Opcode,
    opaque: u32,
) -> Result<Vec<Bytes>, CodecError> {
    let mut body = FragBuf::default();
    let mut cas = 0u64;
    let mut vb_status = resp.status() as u16;
    match resp {
        Response::Value { value, replicas } => {
            body.owned().put_u16(replicas.len() as u16);
            for &r in replicas {
                put_worker(body.owned(), r);
            }
            body.put_shared(value);
        }
        Response::Values { values } => {
            body.owned().put_u32(values.len() as u32);
            for v in values {
                match v {
                    Some(bytes) => {
                        body.owned().put_u8(1);
                        body.owned().put_u32(bytes.len() as u32);
                        body.put_shared(bytes);
                    }
                    None => body.owned().put_u8(0),
                }
            }
        }
        Response::NotFound
        | Response::Stored
        | Response::Deleted
        | Response::Touched
        | Response::MigrateAck => {}
        Response::Counter { value } => cas = *value,
        Response::MembershipAck { epoch } => cas = *epoch,
        Response::Moved {
            cachelet,
            new_owner,
        } => {
            vb_status = Status::NotOwner as u16;
            body.owned().put_u16(vbucket(*cachelet)?);
            put_worker(body.owned(), *new_owner);
        }
        Response::StatsBlob { payload } => body.owned().put_slice(payload),
        Response::HeartbeatAck {
            version,
            deltas,
            full_refetch,
        } => {
            cas = *version;
            body.owned().put_u8(u8::from(*full_refetch));
            body.owned().put_u32(deltas.len() as u32);
            for (ver, c, w) in deltas {
                body.owned().put_u64(*ver);
                body.owned().put_u32(c.0);
                put_worker(body.owned(), *w);
            }
        }
        Response::Fail { message, .. } => body.owned().put_slice(message.as_bytes()),
    }
    let mut head = BytesMut::with_capacity(HEADER_LEN);
    put_header(
        &mut head,
        &Header {
            magic: MAGIC_RESPONSE,
            opcode: opcode as u8,
            key_len: 0,
            extras_len: 0,
            vbucket_or_status: vb_status,
            body_len: body.len() as u32,
            opaque,
            cas,
        },
    );
    let mut frags = Vec::with_capacity(1 + body.frags.len() + 1);
    frags.push(head.freeze());
    frags.extend(body.finish());
    Ok(frags)
}

/// Encodes a response into a complete wire frame. `opcode` is the opcode
/// of the request being answered; `opaque` is echoed back.
pub fn encode_response(
    resp: &Response,
    opcode: Opcode,
    opaque: u32,
) -> Result<Vec<u8>, CodecError> {
    let frags = encode_response_frags(resp, opcode, opaque)?;
    let mut out = Vec::with_capacity(frags.iter().map(Bytes::len).sum());
    for f in &frags {
        out.extend_from_slice(f);
    }
    Ok(out)
}

/// Decodes a response frame, returning the response, the opcode it
/// answers, and the echoed opaque.
pub fn decode_response(frame: &[u8]) -> Result<(Response, Opcode, u32), CodecError> {
    let h = parse_header(frame)?;
    if h.magic != MAGIC_RESPONSE {
        return Err(CodecError::BadMagic(h.magic));
    }
    let op = Opcode::from_u8(h.opcode).ok_or(CodecError::BadOpcode(h.opcode))?;
    let status =
        Status::from_u16(h.vbucket_or_status).ok_or(CodecError::BadStatus(h.vbucket_or_status))?;
    let mut body = &frame[HEADER_LEN..HEADER_LEN + h.body_len as usize];
    let resp = match (status, op) {
        (Status::NotFound, _) => Response::NotFound,
        (Status::NotOwner, _) => {
            if body.remaining() < 2 {
                return Err(CodecError::Malformed("moved cachelet"));
            }
            let cachelet = CacheletId(body.get_u16() as u32);
            let new_owner = get_worker(&mut body)?;
            Response::Moved {
                cachelet,
                new_owner,
            }
        }
        (Status::Ok, Opcode::Get) | (Status::Ok, Opcode::ReplicaRead) => {
            if body.remaining() < 2 {
                return Err(CodecError::Malformed("replica count"));
            }
            let n = body.get_u16() as usize;
            let mut replicas = Vec::with_capacity(n);
            for _ in 0..n {
                replicas.push(get_worker(&mut body)?);
            }
            Response::Value {
                value: Value::copy_from_slice(body),
                replicas,
            }
        }
        (Status::Ok, Opcode::MultiGet) => {
            if body.remaining() < 4 {
                return Err(CodecError::Malformed("values count"));
            }
            let n = body.get_u32() as usize;
            let mut values = Vec::with_capacity(n.min(4_096));
            for _ in 0..n {
                if body.remaining() < 1 {
                    return Err(CodecError::Malformed("value presence"));
                }
                if body.get_u8() == 1 {
                    if body.remaining() < 4 {
                        return Err(CodecError::Malformed("value len"));
                    }
                    let len = body.get_u32() as usize;
                    if body.remaining() < len {
                        return Err(CodecError::Malformed("value bytes"));
                    }
                    values.push(Some(body.copy_to_bytes(len)));
                } else {
                    values.push(None);
                }
            }
            Response::Values { values }
        }
        (Status::Ok, Opcode::Set)
        | (Status::Ok, Opcode::Add)
        | (Status::Ok, Opcode::Replace)
        | (Status::Ok, Opcode::Concat)
        | (Status::Ok, Opcode::ReplicaInstall)
        | (Status::Ok, Opcode::ReplicaUpdate) => Response::Stored,
        (Status::Ok, Opcode::Incr) => Response::Counter { value: h.cas },
        (Status::Ok, Opcode::Touch) => Response::Touched,
        (Status::Ok, Opcode::Delete) | (Status::Ok, Opcode::ReplicaInvalidate) => Response::Deleted,
        (Status::Ok, Opcode::MigrateEntries)
        | (Status::Ok, Opcode::MigrateCommit)
        | (Status::Ok, Opcode::MigrateAbort) => Response::MigrateAck,
        (Status::Ok, Opcode::Stats) | (Status::Ok, Opcode::ClusterStatus) => Response::StatsBlob {
            payload: body.to_vec(),
        },
        (Status::Ok, Opcode::Join) | (Status::Ok, Opcode::Drain) => {
            Response::MembershipAck { epoch: h.cas }
        }
        (Status::Ok, Opcode::Heartbeat) => {
            if body.remaining() < 5 {
                return Err(CodecError::Malformed("heartbeat header"));
            }
            let full_refetch = body.get_u8() == 1;
            let n = body.get_u32() as usize;
            let mut deltas = Vec::with_capacity(n.min(4_096));
            for _ in 0..n {
                if body.remaining() < 12 {
                    return Err(CodecError::Malformed("delta header"));
                }
                let ver = body.get_u64();
                let c = CacheletId(body.get_u32());
                let w = get_worker(&mut body)?;
                deltas.push((ver, c, w));
            }
            Response::HeartbeatAck {
                version: h.cas,
                deltas,
                full_refetch,
            }
        }
        (Status::Ok, Opcode::Batch) => {
            return Err(CodecError::Malformed(
                "batch envelopes are answered per sub-request, never as a unit",
            ))
        }
        (s, _) => Response::Fail {
            status: s,
            message: String::from_utf8_lossy(body).into_owned(),
        },
    };
    Ok((resp, op, h.opaque))
}

/// The opcode a request encodes to (used by responders to echo it).
pub fn opcode_of(req: &Request) -> Opcode {
    match req {
        Request::Get { .. } => Opcode::Get,
        Request::Set { .. } => Opcode::Set,
        Request::Delete { .. } => Opcode::Delete,
        Request::Add { .. } => Opcode::Add,
        Request::Replace { .. } => Opcode::Replace,
        Request::Concat { .. } => Opcode::Concat,
        Request::Incr { .. } => Opcode::Incr,
        Request::Touch { .. } => Opcode::Touch,
        Request::MultiGet { .. } => Opcode::MultiGet,
        Request::ReplicaRead { .. } => Opcode::ReplicaRead,
        Request::ReplicaInstall { .. } => Opcode::ReplicaInstall,
        Request::ReplicaUpdate { .. } => Opcode::ReplicaUpdate,
        Request::ReplicaInvalidate { .. } => Opcode::ReplicaInvalidate,
        Request::MigrateEntries { .. } => Opcode::MigrateEntries,
        Request::MigrateCommit { .. } => Opcode::MigrateCommit,
        Request::MigrateAbort { .. } => Opcode::MigrateAbort,
        Request::Stats { .. } => Opcode::Stats,
        Request::Heartbeat { .. } => Opcode::Heartbeat,
        Request::Join { .. } => Opcode::Join,
        Request::Drain { .. } => Opcode::Drain,
        Request::ClusterStatus => Opcode::ClusterStatus,
        Request::ForTenant { req, .. } => opcode_of(req),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let frame = encode_request(&req, 0xABCD).expect("encode");
        assert_eq!(frame_len(&frame), Some(frame.len()));
        let (decoded, opaque) = decode_request(&frame).expect("decode");
        assert_eq!(decoded, req);
        assert_eq!(opaque, 0xABCD);
    }

    fn roundtrip_resp(resp: Response, op: Opcode) {
        let frame = encode_response(&resp, op, 7).expect("encode");
        let (decoded, dop, opaque) = decode_response(&frame).expect("decode");
        assert_eq!(decoded, resp);
        assert_eq!(dop, op);
        assert_eq!(opaque, 7);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Get {
            cachelet: CacheletId(42),
            key: b"user:1001".to_vec(),
        });
        roundtrip_req(Request::Set {
            cachelet: CacheletId(9),
            key: b"k".to_vec(),
            value: vec![0xAB; 300].into(),
            expiry_ms: 123_456_789,
        });
        roundtrip_req(Request::Delete {
            cachelet: CacheletId(0),
            key: b"gone".to_vec(),
        });
        roundtrip_req(Request::MultiGet {
            keys: (0..100u32)
                .map(|i| (CacheletId(i % 16), format!("k{i}").into_bytes()))
                .collect(),
        });
        roundtrip_req(Request::ReplicaRead {
            key: b"hot".to_vec(),
        });
        roundtrip_req(Request::ReplicaInstall {
            key: b"hot".to_vec(),
            value: b"v".to_vec().into(),
            lease_expiry_ms: 99,
        });
        roundtrip_req(Request::ReplicaUpdate {
            key: b"hot".to_vec(),
            value: b"v2".to_vec().into(),
        });
        roundtrip_req(Request::ReplicaInvalidate {
            key: b"hot".to_vec(),
        });
        roundtrip_req(Request::MigrateEntries {
            cachelet: CacheletId(5),
            entries: vec![
                (b"a".to_vec(), b"1".to_vec().into(), 0),
                (b"b".to_vec(), vec![9; 1000].into(), 555),
            ],
        });
        roundtrip_req(Request::MigrateCommit {
            cachelet: CacheletId(5),
        });
        roundtrip_req(Request::MigrateAbort {
            cachelet: CacheletId(5),
            home: WorkerAddr::new(7, 1),
        });
        roundtrip_req(Request::Stats { reset: false });
        roundtrip_req(Request::Stats { reset: true });
        roundtrip_req(Request::Heartbeat { version: 77 });
        roundtrip_req(Request::Join {
            server: ServerId(3),
            workers: 4,
            incarnation: 2,
        });
        roundtrip_req(Request::Drain {
            server: ServerId(1),
        });
        roundtrip_req(Request::ClusterStatus);
        roundtrip_req(Request::Add {
            cachelet: CacheletId(2),
            key: b"k".to_vec(),
            value: b"v".to_vec().into(),
            expiry_ms: 42,
        });
        roundtrip_req(Request::Replace {
            cachelet: CacheletId(2),
            key: b"k".to_vec(),
            value: b"v".to_vec().into(),
            expiry_ms: 0,
        });
        roundtrip_req(Request::Concat {
            cachelet: CacheletId(3),
            key: b"k".to_vec(),
            value: b"-tail".to_vec().into(),
            front: false,
        });
        roundtrip_req(Request::Concat {
            cachelet: CacheletId(3),
            key: b"k".to_vec(),
            value: b"head-".to_vec().into(),
            front: true,
        });
        roundtrip_req(Request::Incr {
            cachelet: CacheletId(4),
            key: b"n".to_vec(),
            delta: -17,
        });
        roundtrip_req(Request::Touch {
            cachelet: CacheletId(5),
            key: b"k".to_vec(),
            expiry_ms: 123_456,
        });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(
            Response::Value {
                value: b"payload".to_vec().into(),
                replicas: vec![WorkerAddr::new(1, 2), WorkerAddr::new(3, 4)],
            },
            Opcode::Get,
        );
        roundtrip_resp(
            Response::Values {
                values: vec![Some(b"x".to_vec().into()), None, Some(Value::new())],
            },
            Opcode::MultiGet,
        );
        roundtrip_resp(Response::NotFound, Opcode::Get);
        roundtrip_resp(Response::Stored, Opcode::Set);
        roundtrip_resp(Response::Deleted, Opcode::Delete);
        roundtrip_resp(Response::MigrateAck, Opcode::MigrateEntries);
        roundtrip_resp(Response::MigrateAck, Opcode::MigrateAbort);
        roundtrip_resp(
            Response::Moved {
                cachelet: CacheletId(3),
                new_owner: WorkerAddr::new(2, 1),
            },
            Opcode::Get,
        );
        roundtrip_resp(
            Response::StatsBlob {
                payload: br#"{"ops":12}"#.to_vec(),
            },
            Opcode::Stats,
        );
        roundtrip_resp(
            Response::HeartbeatAck {
                version: 10,
                deltas: vec![(9, CacheletId(1), WorkerAddr::new(0, 3))],
                full_refetch: false,
            },
            Opcode::Heartbeat,
        );
        roundtrip_resp(Response::MembershipAck { epoch: 12 }, Opcode::Join);
        roundtrip_resp(Response::MembershipAck { epoch: 13 }, Opcode::Drain);
        roundtrip_resp(
            Response::StatsBlob {
                payload: br#"{"epoch":2}"#.to_vec(),
            },
            Opcode::ClusterStatus,
        );
        roundtrip_resp(
            Response::Fail {
                status: Status::Draining,
                message: "server is draining; writes refused".into(),
            },
            Opcode::Set,
        );
        roundtrip_resp(
            Response::Fail {
                status: Status::OutOfMemory,
                message: "cache full".into(),
            },
            Opcode::Set,
        );
        roundtrip_resp(Response::Counter { value: u64::MAX }, Opcode::Incr);
        roundtrip_resp(Response::Touched, Opcode::Touch);
        roundtrip_resp(Response::Stored, Opcode::Add);
        roundtrip_resp(
            Response::Fail {
                status: Status::Exists,
                message: "key exists".into(),
            },
            Opcode::Add,
        );
        roundtrip_resp(
            Response::Fail {
                status: Status::NotNumeric,
                message: "not a counter".into(),
            },
            Opcode::Incr,
        );
    }

    #[test]
    fn cachelet_overflow_is_rejected() {
        let e = encode_request(
            &Request::Get {
                cachelet: CacheletId(70_000),
                key: b"k".to_vec(),
            },
            0,
        );
        assert_eq!(e, Err(CodecError::CacheletOverflow(70_000)));
    }

    #[test]
    fn truncated_and_garbage_frames_error() {
        assert_eq!(decode_request(&[0u8; 10]), Err(CodecError::Truncated));
        let mut frame = encode_request(
            &Request::Get {
                cachelet: CacheletId(1),
                key: b"key".to_vec(),
            },
            0,
        )
        .expect("encode");
        frame.truncate(frame.len() - 1);
        assert_eq!(decode_request(&frame), Err(CodecError::Truncated));
        let mut bad = frame.clone();
        bad[0] = 0x55;
        // Restore full length for the magic check.
        bad.push(b'y');
        assert_eq!(decode_request(&bad), Err(CodecError::BadMagic(0x55)));
    }

    #[test]
    fn malformed_multiget_body_is_rejected() {
        let good = encode_request(
            &Request::MultiGet {
                keys: vec![(CacheletId(0), b"k".to_vec())],
            },
            0,
        )
        .expect("encode");
        // Claim 5 keys but provide one.
        let mut bad = good.clone();
        bad[HEADER_LEN + 3] = 5;
        assert!(matches!(
            decode_request(&bad),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn batch_roundtrips() {
        let reqs = vec![
            Request::Get {
                cachelet: CacheletId(1),
                key: b"a".to_vec(),
            },
            Request::Set {
                cachelet: CacheletId(2),
                key: b"b".to_vec(),
                value: b"payload".to_vec().into(),
                expiry_ms: 9,
            },
            Request::Incr {
                cachelet: CacheletId(3),
                key: b"n".to_vec(),
                delta: -4,
            },
            Request::Stats { reset: false },
        ];
        let frame = encode_batch_request(&reqs).expect("encode");
        assert_eq!(frame_len(&frame), Some(frame.len()));
        assert!(is_batch(&frame));
        let decoded = decode_batch_request(&frame).expect("decode");
        assert_eq!(decoded.len(), reqs.len());
        for (i, (req, opaque)) in decoded.into_iter().enumerate() {
            assert_eq!(req, reqs[i]);
            assert_eq!(opaque, i as u32);
        }
    }

    #[test]
    fn empty_batch_roundtrips() {
        let frame = encode_batch_request(&[]).expect("encode");
        assert_eq!(decode_batch_request(&frame).expect("decode"), vec![]);
    }

    #[test]
    fn batch_frames_are_rejected_by_the_single_decoders() {
        let frame = encode_batch_request(&[Request::Stats { reset: false }]).expect("encode");
        assert!(matches!(
            decode_request(&frame),
            Err(CodecError::Malformed(_))
        ));
        let mut resp = frame.clone();
        resp[0] = MAGIC_RESPONSE;
        // Status field (vbucket) is 0 == Ok for a batch-shaped response.
        assert!(matches!(
            decode_response(&resp),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn malformed_batch_bodies_error() {
        let good = encode_batch_request(&[Request::Stats { reset: false }]).expect("encode");
        // Claim three sub-frames but carry one.
        let mut short = good.clone();
        short[HEADER_LEN + 3] = 3;
        assert!(matches!(
            decode_batch_request(&short),
            Err(CodecError::Malformed(_))
        ));
        // Trailing garbage after the advertised sub-frames.
        let mut trailing = good.clone();
        trailing.extend_from_slice(&[0xEE; 3]);
        let body_len = u32::from_be_bytes(trailing[8..12].try_into().unwrap()) + 3;
        trailing[8..12].copy_from_slice(&body_len.to_be_bytes());
        assert!(matches!(
            decode_batch_request(&trailing),
            Err(CodecError::Malformed(_))
        ));
        // Wrong opcode for the batch decoder.
        let single = encode_request(&Request::Stats { reset: false }, 0).expect("encode");
        assert!(matches!(
            decode_batch_request(&single),
            Err(CodecError::BadOpcode(_))
        ));
    }

    #[test]
    fn opcode_of_covers_all_requests() {
        assert_eq!(opcode_of(&Request::Stats { reset: true }), Opcode::Stats);
        assert_eq!(
            opcode_of(&Request::Heartbeat { version: 0 }),
            Opcode::Heartbeat
        );
        let wrapped = Request::Get {
            cachelet: CacheletId(1),
            key: b"k".to_vec(),
        }
        .for_tenant(TenantId(4));
        assert_eq!(opcode_of(&wrapped), Opcode::Get, "wrapper is transparent");
    }

    #[test]
    fn tenant_requests_roundtrip_via_extras() {
        // Simple, value-carrying, and structured-body requests all keep
        // their tenant through the wire.
        for inner in [
            Request::Get {
                cachelet: CacheletId(42),
                key: b"user:1001".to_vec(),
            },
            Request::Set {
                cachelet: CacheletId(9),
                key: b"k".to_vec(),
                value: vec![0xAB; 300].into(),
                expiry_ms: 123_456_789,
            },
            Request::Incr {
                cachelet: CacheletId(4),
                key: b"n".to_vec(),
                delta: -17,
            },
            Request::MultiGet {
                keys: (0..50u32)
                    .map(|i| (CacheletId(i % 16), format!("k{i}").into_bytes()))
                    .collect(),
            },
            Request::MigrateEntries {
                cachelet: CacheletId(5),
                entries: vec![
                    (b"a".to_vec(), b"1".to_vec().into(), 0),
                    (b"b".to_vec(), vec![9; 1000].into(), 555),
                ],
            },
        ] {
            roundtrip_req(inner.for_tenant(TenantId(7)));
        }
        // The maximum tenant id survives too.
        roundtrip_req(
            Request::Delete {
                cachelet: CacheletId(0),
                key: b"gone".to_vec(),
            }
            .for_tenant(TenantId(u16::MAX)),
        );
    }

    #[test]
    fn tenant_frames_differ_only_in_extras() {
        let get = Request::Get {
            cachelet: CacheletId(3),
            key: b"key".to_vec(),
        };
        let plain = encode_request(&get, 1).expect("encode");
        let tagged = encode_request(&get.clone().for_tenant(TenantId(0x0102)), 1).expect("encode");
        assert_eq!(plain[4], 0, "default tenant carries no extras");
        assert_eq!(tagged[4], TENANT_EXTRAS_LEN);
        assert_eq!(tagged.len(), plain.len() + TENANT_EXTRAS_LEN as usize);
        assert_eq!(
            &tagged[HEADER_LEN..HEADER_LEN + 2],
            &[0x01, 0x02],
            "big-endian tenant id right after the header"
        );
        assert_eq!(frame_len(&tagged), Some(tagged.len()));
        // Stripping the extras by hand recovers a frame the decoder
        // reads as the default tenant — old peers see plain requests.
        let (decoded, _) = decode_request(&plain).expect("decode");
        assert_eq!(decoded, get);
    }

    #[test]
    fn nested_tenant_wrappers_are_rejected_by_the_encoder() {
        let inner = Request::Get {
            cachelet: CacheletId(1),
            key: b"k".to_vec(),
        };
        // `for_tenant` cannot build a nested wrapper, so assemble one
        // manually.
        let nested = Request::ForTenant {
            tenant: TenantId(1),
            req: Box::new(Request::ForTenant {
                tenant: TenantId(2),
                req: Box::new(inner),
            }),
        };
        assert!(matches!(
            encode_request(&nested, 0),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn batches_carry_mixed_tenants() {
        let reqs = vec![
            Request::Get {
                cachelet: CacheletId(1),
                key: b"a".to_vec(),
            },
            Request::Set {
                cachelet: CacheletId(2),
                key: b"b".to_vec(),
                value: b"payload".to_vec().into(),
                expiry_ms: 9,
            }
            .for_tenant(TenantId(5)),
            Request::Get {
                cachelet: CacheletId(3),
                key: b"c".to_vec(),
            }
            .for_tenant(TenantId(6)),
        ];
        let frame = encode_batch_request(&reqs).expect("encode");
        let decoded = decode_batch_request(&frame).expect("decode");
        assert_eq!(decoded.len(), reqs.len());
        for (i, (req, opaque)) in decoded.into_iter().enumerate() {
            assert_eq!(req, reqs[i]);
            assert_eq!(opaque, i as u32);
        }
    }
}
