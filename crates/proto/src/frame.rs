//! Incremental stream framing for nonblocking transports.
//!
//! A blocking reader can `read_exact` a 24-byte header and then the
//! body; an event-loop reader gets whatever bytes the socket had — a
//! quarter of a header, three and a half pipelined frames — and must
//! resume where it left off. [`FrameDecoder`] owns that state: push
//! each chunk as it arrives, pop complete frames as [`Bytes`].
//!
//! Validation mirrors the blocking reader byte for byte: the magic is
//! checked as soon as a full header is buffered, and a body length past
//! [`MAX_FRAME_LEN`](crate::codec::MAX_FRAME_LEN) is rejected *before*
//! any body bytes are awaited, so a hostile header can never make the
//! server buffer gigabytes.

use crate::codec::{self, CodecError, HEADER_LEN, MAGIC_REQUEST, MAGIC_RESPONSE, MAX_FRAME_LEN};
use bytes::Bytes;

/// Re-entrant frame extractor for a byte stream delivered in arbitrary
/// chunks.
///
/// ```
/// use mbal_proto::frame::FrameDecoder;
/// use mbal_proto::codec::encode_request;
/// use mbal_proto::Request;
///
/// let frame = encode_request(&Request::Stats { reset: false }, 7).unwrap();
/// let mut dec = FrameDecoder::new();
/// for b in &frame {
///     dec.push(std::slice::from_ref(b)); // byte-at-a-time arrival
/// }
/// let got = dec.next_frame().unwrap().expect("one complete frame");
/// assert_eq!(&got[..], &frame[..]);
/// assert!(dec.is_clean());
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Set once a header fails validation; the stream past that point
    /// is garbage and every later pop reports the same error.
    poisoned: Option<CodecError>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes read from the stream.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete frame, `Ok(None)` if more bytes are
    /// needed, or an error if the buffered header is malformed (bad
    /// magic, or a body length past the frame cap). Errors are sticky:
    /// a byte stream cannot be resynchronised past a bad header, so the
    /// connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, CodecError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        if self.buf[0] != MAGIC_REQUEST && self.buf[0] != MAGIC_RESPONSE {
            return Err(self.poison(CodecError::BadMagic(self.buf[0])));
        }
        let total = codec::frame_len(&self.buf).expect("header is buffered");
        if total > MAX_FRAME_LEN {
            return Err(self.poison(CodecError::FrameTooLarge(total)));
        }
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame = Bytes::copy_from_slice(&self.buf[..total]);
        self.buf.drain(..total);
        Ok(Some(frame))
    }

    /// Bytes buffered but not yet popped as a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// True when the stream sits at a frame boundary — an EOF here is a
    /// clean close, anywhere else a truncated frame.
    pub fn is_clean(&self) -> bool {
        self.buf.is_empty() && self.poisoned.is_none()
    }

    fn poison(&mut self, e: CodecError) -> CodecError {
        self.poisoned = Some(e.clone());
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode_request, encode_response, Opcode};
    use crate::{Request, Response};
    use mbal_core::types::CacheletId;

    fn sample_frames() -> Vec<Vec<u8>> {
        vec![
            encode_request(
                &Request::Set {
                    cachelet: CacheletId(1),
                    key: b"k".to_vec(),
                    value: vec![7u8; 300].into(),
                    expiry_ms: 9,
                },
                1,
            )
            .unwrap(),
            encode_request(&Request::Stats { reset: true }, 2).unwrap(),
            encode_response(
                &Response::Value {
                    value: b"payload".to_vec().into(),
                    replicas: vec![],
                },
                Opcode::Get,
                3,
            )
            .unwrap(),
        ]
    }

    #[test]
    fn reassembles_pipelined_frames_from_odd_chunks() {
        let stream: Vec<u8> = sample_frames().concat();
        for chunk in [1usize, 3, 24, 25, stream.len()] {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                dec.push(piece);
                while let Some(f) = dec.next_frame().expect("valid stream") {
                    got.push(f.to_vec());
                }
            }
            assert_eq!(got, sample_frames(), "chunk size {chunk}");
            assert!(dec.is_clean());
        }
    }

    #[test]
    fn bad_magic_is_sticky() {
        let mut dec = FrameDecoder::new();
        dec.push(&[0x55; HEADER_LEN]);
        assert_eq!(dec.next_frame(), Err(CodecError::BadMagic(0x55)));
        dec.push(&sample_frames()[0]);
        assert_eq!(
            dec.next_frame(),
            Err(CodecError::BadMagic(0x55)),
            "no resync past a bad header"
        );
        assert!(!dec.is_clean());
    }

    #[test]
    fn oversized_header_is_rejected_before_the_body_arrives() {
        let mut header = [0u8; HEADER_LEN];
        header[0] = MAGIC_REQUEST;
        header[8..12].copy_from_slice(&(MAX_FRAME_LEN as u32).to_be_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&header);
        assert_eq!(
            dec.next_frame(),
            Err(CodecError::FrameTooLarge(HEADER_LEN + MAX_FRAME_LEN))
        );
    }

    #[test]
    fn partial_header_waits_for_more() {
        let mut dec = FrameDecoder::new();
        dec.push(&sample_frames()[0][..HEADER_LEN - 1]);
        assert_eq!(dec.next_frame(), Ok(None));
        assert!(!dec.is_clean(), "EOF mid-header is a truncated frame");
    }
}
