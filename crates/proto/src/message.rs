//! Typed request/response messages.
//!
//! These are the semantic messages MBal components exchange. The in-proc
//! transport moves them directly over channels; the TCP transport encodes
//! them with [`crate::codec`].

use mbal_core::types::{CacheletId, Key, ServerId, TenantId, Value, WorkerAddr};

/// Response status codes (mirrors Memcached's binary status field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum Status {
    /// Success.
    Ok = 0,
    /// Key not found.
    NotFound = 1,
    /// Out of memory and eviction could not make room.
    OutOfMemory = 2,
    /// The cachelet is not owned by this worker (see `Response::Moved`).
    NotOwner = 3,
    /// The target bucket is mid-migration; retry shortly.
    Busy = 4,
    /// Malformed request or internal error.
    Error = 5,
    /// Conditional store failed: the key already exists (`add`).
    Exists = 6,
    /// Value is not a number (`incr`/`decr` on non-numeric data).
    NotNumeric = 7,
    /// The server is draining ahead of removal and refuses writes; the
    /// client should refetch the mapping and retry at the new owner.
    Draining = 8,
    /// The request named a tenant this server has not admitted. A typed
    /// rejection, not a connection close: the client keeps its session
    /// and surfaces a clean error.
    UnknownTenant = 9,
}

impl Status {
    /// Canonical human-readable description, used wherever a status
    /// crosses into an error message (e.g. `mbal-client`'s
    /// `From<Status> for ClientError`) so the two sides never drift.
    pub fn describe(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::NotFound => "key not found",
            Status::OutOfMemory => "out of memory",
            Status::NotOwner => "cachelet not owned by this worker",
            Status::Busy => "bucket busy (mid-migration)",
            Status::Error => "malformed request or internal error",
            Status::Exists => "key already exists",
            Status::NotNumeric => "value is not a number",
            Status::Draining => "server is draining; writes refused",
            Status::UnknownTenant => "unknown tenant",
        }
    }

    /// Parses a wire status code.
    pub fn from_u16(v: u16) -> Option<Status> {
        Some(match v {
            0 => Status::Ok,
            1 => Status::NotFound,
            2 => Status::OutOfMemory,
            3 => Status::NotOwner,
            4 => Status::Busy,
            5 => Status::Error,
            6 => Status::Exists,
            7 => Status::NotNumeric,
            8 => Status::Draining,
            9 => Status::UnknownTenant,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.describe())
    }
}

/// A request addressed to one MBal worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Look up one key in `cachelet`.
    Get {
        /// Target cachelet (the overloaded vbucket field).
        cachelet: CacheletId,
        /// Key to look up.
        key: Key,
    },
    /// Batched lookup (the paper amortizes network cost with MultiGET of
    /// 100 keys). All keys must belong to `cachelet`'s owner worker but
    /// may span its cachelets; each key carries its own cachelet id.
    MultiGet {
        /// `(cachelet, key)` pairs, all owned by the addressed worker.
        keys: Vec<(CacheletId, Key)>,
    },
    /// Insert or replace a key.
    Set {
        /// Target cachelet.
        cachelet: CacheletId,
        /// Key to store.
        key: Key,
        /// Value bytes.
        value: Value,
        /// Absolute expiry in ms (0 = never).
        expiry_ms: u64,
    },
    /// Delete a key.
    Delete {
        /// Target cachelet.
        cachelet: CacheletId,
        /// Key to delete.
        key: Key,
    },
    /// Store only if absent (Memcached `add`).
    Add {
        /// Target cachelet.
        cachelet: CacheletId,
        /// Key to store.
        key: Key,
        /// Value bytes.
        value: Value,
        /// Absolute expiry in ms (0 = never).
        expiry_ms: u64,
    },
    /// Store only if present (Memcached `replace`).
    Replace {
        /// Target cachelet.
        cachelet: CacheletId,
        /// Key to store.
        key: Key,
        /// Value bytes.
        value: Value,
        /// Absolute expiry in ms (0 = never).
        expiry_ms: u64,
    },
    /// Append (or prepend) bytes to an existing value.
    Concat {
        /// Target cachelet.
        cachelet: CacheletId,
        /// Key to modify.
        key: Key,
        /// Bytes to attach.
        value: Value,
        /// `true` prepends, `false` appends.
        front: bool,
    },
    /// Counter arithmetic on an ASCII-decimal value (Memcached
    /// `incr`/`decr`; negative deltas saturate at zero).
    Incr {
        /// Target cachelet.
        cachelet: CacheletId,
        /// Counter key.
        key: Key,
        /// Signed delta.
        delta: i64,
    },
    /// Refresh the TTL of an existing key (Memcached `touch`).
    Touch {
        /// Target cachelet.
        cachelet: CacheletId,
        /// Key to touch.
        key: Key,
        /// New absolute expiry in ms (0 = never).
        expiry_ms: u64,
    },
    /// Read a *replicated* key from a shadow worker (Phase 1). Replica
    /// reads bypass cachelet routing — the key lives in the shadow
    /// worker's replica table.
    ReplicaRead {
        /// Key to read.
        key: Key,
    },
    /// Home worker → shadow worker: install/refresh a replica.
    ReplicaInstall {
        /// Replicated key.
        key: Key,
        /// Current value.
        value: Value,
        /// Lease expiry in ms.
        lease_expiry_ms: u64,
    },
    /// Home worker → shadow worker: propagate a write.
    ReplicaUpdate {
        /// Replicated key.
        key: Key,
        /// New value.
        value: Value,
    },
    /// Home worker → shadow worker: drop a replica.
    ReplicaInvalidate {
        /// Key whose replica should be dropped.
        key: Key,
    },
    /// Migration source → destination: one bucket's worth of entries
    /// (§3.4 migrates per-bucket, not whole cachelets atomically).
    MigrateEntries {
        /// The cachelet being transferred.
        cachelet: CacheletId,
        /// `(key, value, expiry_ms)` triples.
        entries: Vec<(Key, Value, u64)>,
    },
    /// Migration source → destination: the cachelet is now fully
    /// transferred and the destination may serve it.
    MigrateCommit {
        /// The transferred cachelet.
        cachelet: CacheletId,
    },
    /// Migration source → destination: the transfer is being rolled
    /// back. The destination discards any partially installed state for
    /// `cachelet` and redirects stale-routed clients to `home`.
    MigrateAbort {
        /// The cachelet whose transfer is abandoned.
        cachelet: CacheletId,
        /// The authoritative owner after the rollback (the source).
        home: WorkerAddr,
    },
    /// Fetch worker statistics (used by the coordinator's stats poller
    /// and the client's `stats` call). The memcached `stats` analog;
    /// with `reset`, counters and latency histograms are zeroed after
    /// the snapshot is taken (`stats reset`).
    Stats {
        /// Zero counters and histograms after snapshotting.
        reset: bool,
    },
    /// Liveness/config probe; `version` is the client's mapping version.
    /// The response carries mapping deltas the client is missing.
    Heartbeat {
        /// Client's current mapping-table version.
        version: u64,
    },
    /// Membership: admit a server into the cluster (served by the
    /// coordinator; workers refuse it). Triggers a Phase-3 grow
    /// rebalance onto the new server.
    Join {
        /// The joining server's id.
        server: ServerId,
        /// Worker threads the server runs.
        workers: u16,
        /// The server's SWIM incarnation number.
        incarnation: u64,
    },
    /// Membership: gracefully evacuate a server ahead of removal
    /// (served by the coordinator; workers refuse it).
    Drain {
        /// The server to drain.
        server: ServerId,
    },
    /// Fetch the cluster membership view (epoch, per-node state and
    /// suspect timers) from a server's cached copy on the stats wire.
    ClusterStatus,
    /// A request issued on behalf of a non-default tenant. The wrapper
    /// (never nested) carries the tenant id; on the wire it rides the
    /// binary header's extras field, so plain frames decode as the
    /// default tenant and old peers interoperate unchanged. Workers
    /// unwrap it at dispatch, refuse unadmitted tenants with
    /// [`Status::UnknownTenant`], and namespace every key the inner
    /// request touches.
    ForTenant {
        /// The tenant the inner request acts for (never the default).
        tenant: TenantId,
        /// The wrapped request (never itself `ForTenant`).
        req: Box<Request>,
    },
}

impl Request {
    /// The key this request addresses, if single-key.
    pub fn key(&self) -> Option<&[u8]> {
        match self {
            Request::Get { key, .. }
            | Request::Set { key, .. }
            | Request::Delete { key, .. }
            | Request::Add { key, .. }
            | Request::Replace { key, .. }
            | Request::Concat { key, .. }
            | Request::Incr { key, .. }
            | Request::Touch { key, .. }
            | Request::ReplicaRead { key }
            | Request::ReplicaInstall { key, .. }
            | Request::ReplicaUpdate { key, .. }
            | Request::ReplicaInvalidate { key } => Some(key),
            Request::ForTenant { req, .. } => req.key(),
            _ => None,
        }
    }

    /// Returns `true` for read-type requests (GET/MultiGET/replica read).
    pub fn is_read(&self) -> bool {
        match self {
            Request::Get { .. } | Request::MultiGet { .. } | Request::ReplicaRead { .. } => true,
            Request::ForTenant { req, .. } => req.is_read(),
            _ => false,
        }
    }

    /// Wraps a request for `tenant`. The default tenant needs no
    /// wrapper, so the request is returned unchanged; wrapping an
    /// already-wrapped request re-tags it rather than nesting.
    pub fn for_tenant(self, tenant: TenantId) -> Request {
        let inner = match self {
            Request::ForTenant { req, .. } => *req,
            other => other,
        };
        if tenant.is_default() {
            inner
        } else {
            Request::ForTenant {
                tenant,
                req: Box::new(inner),
            }
        }
    }

    /// Splits into `(tenant, inner request)`; unwrapped requests belong
    /// to the default tenant.
    pub fn tenant_parts(&self) -> (TenantId, &Request) {
        match self {
            Request::ForTenant { tenant, req } => (*tenant, req),
            other => (TenantId::DEFAULT, other),
        }
    }

    /// Consuming form of [`Request::tenant_parts`], for dispatch paths
    /// that go on to own the inner request.
    pub fn into_tenant_parts(self) -> (TenantId, Request) {
        match self {
            Request::ForTenant { tenant, req } => (tenant, *req),
            other => (TenantId::DEFAULT, other),
        }
    }
}

/// A response from a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// GET hit. `replicas` piggybacks the locations of any live replicas
    /// of this key so the client can spread subsequent reads (§3.2).
    Value {
        /// The stored bytes.
        value: Value,
        /// Shadow workers currently holding replicas.
        replicas: Vec<WorkerAddr>,
    },
    /// MultiGET results, positionally matching the request keys.
    Values {
        /// Per-key results; `None` is a miss.
        values: Vec<Option<Value>>,
    },
    /// GET/replica-read miss.
    NotFound,
    /// SET/replica-install acknowledged.
    Stored,
    /// Counter operation result (`incr`/`decr`).
    Counter {
        /// The post-operation value.
        value: u64,
    },
    /// TTL refresh acknowledged (`touch`).
    Touched,
    /// DELETE/invalidate acknowledged (key may or may not have existed).
    Deleted,
    /// The cachelet has moved; retry at `new_owner` and update the cached
    /// mapping ("on-the-way routing", §2.3 / §3.3).
    Moved {
        /// The cachelet that moved.
        cachelet: CacheletId,
        /// Its current owner.
        new_owner: WorkerAddr,
    },
    /// Migration batch/commit acknowledged.
    MigrateAck,
    /// Serialized worker statistics (JSON payload produced by the server).
    StatsBlob {
        /// Opaque serialized statistics.
        payload: Vec<u8>,
    },
    /// Membership operation (Join/Drain) acknowledged by the
    /// coordinator; carries the resulting cluster epoch.
    MembershipAck {
        /// The cluster epoch after the operation.
        epoch: u64,
    },
    /// Heartbeat reply carrying mapping deltas encoded as
    /// `(version, cachelet, server, worker)` tuples; `full_refetch` tells
    /// the client its version fell outside the delta window.
    HeartbeatAck {
        /// Coordinator's current mapping version.
        version: u64,
        /// Deltas the client is missing.
        deltas: Vec<(u64, CacheletId, WorkerAddr)>,
        /// If `true`, the client must refetch the full table.
        full_refetch: bool,
    },
    /// Failure with a status code and diagnostic message.
    Fail {
        /// Status code.
        status: Status,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Status code this response carries on the wire.
    pub fn status(&self) -> Status {
        match self {
            Response::NotFound => Status::NotFound,
            Response::Fail { status, .. } => *status,
            Response::Moved { .. } => Status::NotOwner,
            _ => Status::Ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_roundtrip() {
        for v in 0..=9u16 {
            let s = Status::from_u16(v).expect("valid");
            assert_eq!(s as u16, v);
        }
        assert_eq!(Status::from_u16(99), None);
    }

    #[test]
    fn status_describe_is_total_and_displayed() {
        for v in 0..10u16 {
            let s = Status::from_u16(v).expect("valid");
            assert!(!s.describe().is_empty());
            assert_eq!(format!("{s}"), s.describe());
        }
    }

    #[test]
    fn request_key_extraction() {
        let r = Request::Get {
            cachelet: CacheletId(1),
            key: b"k".to_vec(),
        };
        assert_eq!(r.key(), Some(&b"k"[..]));
        assert!(r.is_read());
        let w = Request::Set {
            cachelet: CacheletId(1),
            key: b"k".to_vec(),
            value: b"v".to_vec().into(),
            expiry_ms: 0,
        };
        assert!(!w.is_read());
        assert!(Request::Stats { reset: false }.key().is_none());
    }

    #[test]
    fn tenant_wrapping_and_unwrapping() {
        let get = Request::Get {
            cachelet: CacheletId(1),
            key: b"k".to_vec(),
        };
        // Default tenant never wraps.
        assert_eq!(get.clone().for_tenant(TenantId::DEFAULT), get);
        let wrapped = get.clone().for_tenant(TenantId(7));
        assert_eq!(wrapped.tenant_parts(), (TenantId(7), &get));
        assert_eq!(
            wrapped.key(),
            Some(&b"k"[..]),
            "key sees through the wrapper"
        );
        assert!(wrapped.is_read(), "is_read sees through the wrapper");
        // Re-wrapping re-tags instead of nesting.
        let retagged = wrapped.for_tenant(TenantId(9));
        assert_eq!(retagged.tenant_parts(), (TenantId(9), &get));
        // Re-tagging to the default tenant strips the wrapper.
        assert_eq!(retagged.for_tenant(TenantId::DEFAULT), get);
        // Unwrapped requests belong to the default tenant.
        assert_eq!(get.tenant_parts(), (TenantId::DEFAULT, &get));
    }

    #[test]
    fn response_status_mapping() {
        assert_eq!(Response::NotFound.status(), Status::NotFound);
        assert_eq!(
            Response::Moved {
                cachelet: CacheletId(0),
                new_owner: WorkerAddr::new(1, 2),
            }
            .status(),
            Status::NotOwner
        );
        assert_eq!(Response::Stored.status(), Status::Ok);
        assert_eq!(
            Response::Fail {
                status: Status::OutOfMemory,
                message: "oom".into(),
            }
            .status(),
            Status::OutOfMemory
        );
    }
}
