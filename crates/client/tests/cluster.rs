//! End-to-end client ↔ server ↔ coordinator integration over the
//! in-process transport: basic ops, hot-key replication (Phase 1),
//! server-local migration (Phase 2), and coordinated migration (Phase 3).

use mbal_balancer::coordinator::Coordinator;
use mbal_balancer::plan::Migration;
use mbal_balancer::BalancerConfig;
use mbal_client::{Client, SetOptions};
use mbal_core::clock::{Clock, ManualClock};
use mbal_core::types::{ServerId, WorkerAddr};
use mbal_ring::{ConsistentRing, MappingTable};
use mbal_server::{InProcRegistry, Server, ServerConfig};
use std::sync::Arc;

struct Cluster {
    registry: Arc<InProcRegistry>,
    coordinator: Arc<Coordinator>,
    servers: Vec<Server>,
    clock: ManualClock,
}

fn build_cluster(n_servers: u16, workers: u16) -> Cluster {
    let mut ring = ConsistentRing::new();
    for s in 0..n_servers {
        for w in 0..workers {
            ring.add_worker(WorkerAddr::new(s, w));
        }
    }
    let mapping = MappingTable::build(&ring, 4, 256);
    let bal = BalancerConfig::aggressive();
    let coordinator = Arc::new(Coordinator::new(mapping.clone(), bal.clone()));
    let registry = InProcRegistry::new();
    let clock = ManualClock::new();
    let servers = (0..n_servers)
        .map(|s| {
            let cfg = ServerConfig::new(ServerId(s), workers, 32 << 20)
                .cachelets_per_worker(4)
                .balancer(bal.clone())
                .worker_capacity(1_000.0);
            Server::spawn(
                cfg,
                &mapping,
                &registry,
                Arc::clone(&coordinator),
                Arc::new(clock.clone()),
            )
        })
        .collect();
    Cluster {
        registry,
        coordinator,
        servers,
        clock,
    }
}

impl Cluster {
    fn client(&self) -> Client {
        Client::builder(
            Arc::clone(&self.registry) as Arc<dyn mbal_server::Transport>,
            Arc::clone(&self.coordinator) as Arc<dyn mbal_client::CoordinatorLink>,
        )
        .build()
    }

    fn tick_all(&mut self) {
        self.clock.advance(200_000); // 200 ms
        let now = self.clock.now_millis();
        for s in &mut self.servers {
            s.tick(now);
        }
    }

    fn shutdown(mut self) {
        for s in &mut self.servers {
            s.shutdown();
        }
    }
}

#[test]
fn basic_set_get_delete_across_cluster() {
    let cluster = build_cluster(3, 2);
    let mut c = cluster.client();
    for i in 0..500u32 {
        let key = format!("obj:{i}");
        c.set_opts(key.as_bytes(), &i.to_le_bytes(), SetOptions::new())
            .expect("set");
    }
    for i in 0..500u32 {
        let key = format!("obj:{i}");
        assert_eq!(
            c.get(key.as_bytes()).expect("get").expect("hit"),
            i.to_le_bytes()
        );
    }
    assert!(c.delete(b"obj:0").expect("delete"));
    assert_eq!(c.get(b"obj:0").expect("get"), None);
    let st = c.stats();
    assert_eq!(st.sets, 500);
    assert_eq!(st.hits, 500);
    cluster.shutdown();
}

#[test]
fn multi_get_spans_workers() {
    let cluster = build_cluster(2, 2);
    let mut c = cluster.client();
    let keys: Vec<Vec<u8>> = (0..200u32)
        .map(|i| format!("batch:{i}").into_bytes())
        .collect();
    for (i, k) in keys.iter().enumerate() {
        c.set_opts(k, &(i as u32).to_le_bytes(), SetOptions::new())
            .expect("set");
    }
    let got = c.multi_get(&keys).expect("multi_get");
    assert_eq!(got.len(), 200);
    for (i, v) in got.iter().enumerate() {
        assert_eq!(
            v.as_deref().expect("hit"),
            (i as u32).to_le_bytes(),
            "key {i}"
        );
    }
    // Misses are positional Nones.
    let mixed = c
        .multi_get(&[b"batch:0".to_vec(), b"missing".to_vec()])
        .expect("multi_get");
    assert!(mixed[0].is_some());
    assert!(mixed[1].is_none());
    cluster.shutdown();
}

#[test]
fn hot_key_gets_replicated_and_replica_reads_flow() {
    let mut cluster = build_cluster(3, 2);
    let mut c = cluster.client();
    c.set_opts(b"celebrity", b"profile-data", SetOptions::new())
        .expect("set");
    // Hammer the key so the tracker flags it (sample rate 5% → need
    // hundreds of hits), then run balance epochs.
    for _ in 0..4 {
        for _ in 0..2_000 {
            let v = c.get(b"celebrity").expect("get").expect("hit");
            assert!(v == b"profile-data");
        }
        cluster.tick_all();
    }
    // Eventually the GET response carries replica locations and the
    // client starts spreading reads.
    for _ in 0..64 {
        let _ = c.get(b"celebrity").expect("get").expect("hit");
    }
    assert!(
        c.replicated_keys() >= 1,
        "client never learned about replicas"
    );
    assert!(
        c.stats().replica_reads > 0,
        "no reads went to replicas: {:?}",
        c.stats()
    );
    // Writes still land at the home worker and propagate.
    c.set_opts(b"celebrity", b"updated", SetOptions::new())
        .expect("set");
    for _ in 0..8 {
        assert_eq!(
            c.get(b"celebrity").expect("get").expect("hit"),
            b"updated",
            "stale replica read with synchronous replication"
        );
    }
    cluster.shutdown();
}

#[test]
fn coordinated_migration_preserves_data_and_redirects() {
    let mut cluster = build_cluster(2, 1);
    let mut c = cluster.client();
    for i in 0..400u32 {
        c.set_opts(
            format!("mig:{i}").as_bytes(),
            &i.to_le_bytes(),
            SetOptions::new(),
        )
        .expect("set");
    }
    // Report stats so the coordinator has a view, then force a
    // coordinated migration of one cachelet from server 0 to server 1.
    cluster.tick_all();
    let mapping = cluster.coordinator.mapping_snapshot();
    let src = WorkerAddr::new(0, 0);
    let victim = mapping.cachelets_of_worker(src)[0];
    let dest = WorkerAddr::new(1, 0);
    cluster.coordinator.report_local_move(&Migration {
        cachelet: victim,
        from: src,
        to: dest,
        load: 0.0,
    });
    cluster.servers[0].migrate_out(&Migration {
        cachelet: victim,
        from: src,
        to: dest,
        load: 0.0,
    });
    // Every key must still be readable: keys in the migrated cachelet
    // through redirects/poller, the rest untouched.
    let mut via_new_owner = 0;
    for i in 0..400u32 {
        let key = format!("mig:{i}");
        let v = c
            .get(key.as_bytes())
            .expect("get")
            .expect("hit after migration");
        assert_eq!(v, i.to_le_bytes());
        if mapping.cachelet_of_vn(mapping.vn_of(key.as_bytes())) == victim {
            via_new_owner += 1;
        }
    }
    assert!(
        via_new_owner > 0,
        "victim cachelet held no keys (resize VNs)"
    );
    cluster.shutdown();
}

#[test]
fn poller_catches_up_after_local_migration() {
    let mut cluster = build_cluster(1, 4);
    let mut stale = cluster.client();
    let mut writer = cluster.client();
    for i in 0..200u32 {
        writer
            .set_opts(format!("skew:{i}").as_bytes(), b"v", SetOptions::new())
            .expect("set");
    }
    // Drive a skewed load against one worker's keys so Phase 2 fires.
    let mapping = cluster.coordinator.mapping_snapshot();
    let hot_worker = WorkerAddr::new(0, 0);
    let hot_keys: Vec<String> = (0..10_000u32)
        .map(|i| format!("skew:{}", i % 200))
        .filter(|k| mapping.route(k.as_bytes()).map(|(_, w)| w) == Some(hot_worker))
        .take(50)
        .collect();
    if hot_keys.is_empty() {
        cluster.shutdown();
        return; // pathological mapping; nothing to exercise
    }
    for _ in 0..3 {
        for k in &hot_keys {
            for _ in 0..40 {
                let _ = writer.get(k.as_bytes());
            }
        }
        cluster.tick_all();
    }
    // Whether or not migration fired, the stale client must still reach
    // every key (Moved redirects or NotOwner → poller resync).
    for i in 0..200u32 {
        let key = format!("skew:{i}");
        assert!(
            stale.get(key.as_bytes()).expect("get").is_some(),
            "lost key {key}"
        );
    }
    let _ = stale.poll_coordinator();
    assert_eq!(
        stale.mapping_version(),
        cluster.coordinator.mapping_version()
    );
    cluster.shutdown();
}

#[test]
fn clock_is_shared_across_components() {
    let cluster = build_cluster(1, 1);
    let t0 = cluster.clock.now_micros();
    cluster.clock.advance(5);
    assert_eq!(cluster.clock.now_micros(), t0 + 5);
    cluster.shutdown();
}
