//! Client behavior tests against a scriptable mock transport: Moved
//! redirects, Busy retries, replica round-robin, NotOwner resync, and
//! the migration poller.

use mbal_balancer::coordinator::{Coordinator, HeartbeatReply};
use mbal_balancer::BalancerConfig;
use mbal_client::{Client, ClientError, CoordinatorLink, SetOptions, StoreOutcome};
use mbal_core::types::{CacheletId, WorkerAddr};
use mbal_proto::{Request, Response, Status};
use mbal_ring::{ConsistentRing, MappingTable};
use mbal_server::transport::{Transport, TransportError};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// A transport that replays scripted responses and records the calls.
/// Batches (`call_many`) are recorded whole and answered dynamically
/// with full hits, so grouping nondeterminism cannot skew scripted
/// tests; `batch_fail_from` injects per-op failures from that batch
/// index on (a mid-batch connection drop, as the TCP transport reports
/// it).
#[derive(Default)]
struct MockTransport {
    script: Mutex<VecDeque<Response>>,
    calls: Mutex<Vec<(WorkerAddr, Request)>>,
    batches: Mutex<Vec<(WorkerAddr, Vec<Request>)>>,
    batch_fail_from: Mutex<Option<usize>>,
}

impl MockTransport {
    fn new(script: Vec<Response>) -> Arc<Self> {
        Arc::new(Self {
            script: Mutex::new(script.into()),
            calls: Mutex::new(Vec::new()),
            batches: Mutex::new(Vec::new()),
            batch_fail_from: Mutex::new(None),
        })
    }

    fn calls(&self) -> Vec<(WorkerAddr, Request)> {
        self.calls.lock().clone()
    }
}

impl Transport for MockTransport {
    fn call(&self, addr: WorkerAddr, req: Request) -> Result<Response, TransportError> {
        self.calls.lock().push((addr, req));
        self.script
            .lock()
            .pop_front()
            .ok_or(TransportError::Timeout(addr))
    }

    fn call_many(
        &self,
        addr: WorkerAddr,
        reqs: Vec<Request>,
        _deadline: std::time::Duration,
    ) -> Vec<Result<Response, TransportError>> {
        let fail_from = *self.batch_fail_from.lock();
        let out = reqs
            .iter()
            .enumerate()
            .map(|(i, _)| match fail_from {
                Some(f) if i >= f => Err(TransportError::Broken("mid-batch drop".into())),
                _ => Ok(Response::Value {
                    value: b"v".to_vec().into(),
                    replicas: vec![],
                }),
            })
            .collect();
        self.batches.lock().push((addr, reqs));
        out
    }
}

fn mapping(servers: u16, workers: u16) -> MappingTable {
    let mut ring = ConsistentRing::new();
    for s in 0..servers {
        for w in 0..workers {
            ring.add_worker(WorkerAddr::new(s, w));
        }
    }
    MappingTable::build(&ring, 4, 64)
}

struct StaticCoordinator(MappingTable);

impl CoordinatorLink for StaticCoordinator {
    fn heartbeat(&self, version: u64) -> HeartbeatReply {
        HeartbeatReply {
            version: self.0.version().max(version),
            deltas: vec![],
            full_refetch: false,
        }
    }

    fn full_table(&self) -> MappingTable {
        self.0.clone()
    }
}

fn client_with(script: Vec<Response>) -> (Client, Arc<MockTransport>, MappingTable) {
    let map = mapping(2, 2);
    let transport = MockTransport::new(script);
    let client = Client::builder(
        Arc::clone(&transport) as Arc<dyn Transport>,
        Arc::new(StaticCoordinator(map.clone())) as Arc<dyn CoordinatorLink>,
    )
    .build();
    (client, transport, map)
}

#[test]
fn moved_response_updates_mapping_and_retries() {
    let (mut client, transport, map) = client_with(vec![]);
    let key = b"redirected".to_vec();
    let (cachelet, old_owner) = map.route(&key).expect("routed");
    let new_owner = map
        .workers()
        .into_iter()
        .find(|&w| w != old_owner)
        .expect("other");
    *transport.script.lock() = vec![
        Response::Moved {
            cachelet,
            new_owner,
        },
        Response::Value {
            value: b"v".to_vec().into(),
            replicas: vec![],
        },
    ]
    .into();
    assert_eq!(client.get(&key).expect("get"), Some(b"v".to_vec().into()));
    let calls = transport.calls();
    assert_eq!(calls.len(), 2);
    assert_eq!(calls[0].0, old_owner);
    assert_eq!(calls[1].0, new_owner, "retry must follow the redirect");
    assert_eq!(client.stats().moved, 1);
    // Subsequent requests for the same key go straight to the new owner.
    transport.script.lock().push_back(Response::NotFound);
    let _ = client.get(&key);
    assert_eq!(transport.calls()[2].0, new_owner);
}

#[test]
fn busy_is_retried_until_success() {
    let (mut client, transport, _map) = client_with(vec![
        Response::Fail {
            status: Status::Busy,
            message: "bucket migrating".into(),
        },
        Response::Fail {
            status: Status::Busy,
            message: "bucket migrating".into(),
        },
        Response::Stored,
    ]);
    client
        .set_opts(b"k", b"v", SetOptions::new())
        .expect("eventually stored");
    assert_eq!(client.stats().busy_retries, 2);
    assert_eq!(transport.calls().len(), 3);
}

#[test]
fn persistent_busy_exhausts_retries() {
    let script = (0..16)
        .map(|_| Response::Fail {
            status: Status::Busy,
            message: "stuck".into(),
        })
        .collect();
    let (mut client, _transport, _map) = client_with(script);
    assert_eq!(
        client.set_opts(b"k", b"v", SetOptions::new()),
        Err(ClientError::RetriesExhausted)
    );
    assert_eq!(client.stats().failures, 1);
}

#[test]
fn replica_hints_round_robin_reads() {
    let (mut client, transport, map) = client_with(vec![]);
    let key = b"celebrity".to_vec();
    let (_, home) = map.route(&key).expect("routed");
    let shadow = map
        .workers()
        .into_iter()
        .find(|w| w.server != home.server)
        .expect("shadow");
    *transport.script.lock() = vec![
        // First read: home returns the value plus the replica hint.
        Response::Value {
            value: b"v".to_vec().into(),
            replicas: vec![shadow],
        },
        // Second read: client should pick the shadow (ReplicaRead).
        Response::Value {
            value: b"v".to_vec().into(),
            replicas: vec![],
        },
        // Third read: back to home (round robin).
        Response::Value {
            value: b"v".to_vec().into(),
            replicas: vec![shadow],
        },
    ]
    .into();
    for _ in 0..3 {
        assert_eq!(client.get(&key).expect("get"), Some(b"v".to_vec().into()));
    }
    let calls = transport.calls();
    assert_eq!(calls[0].0, home);
    assert_eq!(calls[1].0, shadow);
    assert!(matches!(calls[1].1, Request::ReplicaRead { .. }));
    assert_eq!(calls[2].0, home);
    assert_eq!(client.stats().replica_reads, 1);
    assert_eq!(client.replicated_keys(), 1);
}

#[test]
fn dead_replica_falls_back_to_home() {
    let (mut client, transport, map) = client_with(vec![]);
    let key = b"hot".to_vec();
    let (_, home) = map.route(&key).expect("routed");
    let shadow = map
        .workers()
        .into_iter()
        .find(|&w| w != home)
        .expect("shadow");
    *transport.script.lock() = vec![
        Response::Value {
            value: b"v".to_vec().into(),
            replicas: vec![shadow],
        },
        // Replica read misses (lease lapsed) → client falls back home.
        Response::NotFound,
        Response::Value {
            value: b"v".to_vec().into(),
            replicas: vec![],
        },
    ]
    .into();
    assert_eq!(client.get(&key).expect("get"), Some(b"v".to_vec().into()));
    assert_eq!(client.get(&key).expect("get"), Some(b"v".to_vec().into()));
    assert_eq!(
        client.replicated_keys(),
        0,
        "dead replica set must be forgotten"
    );
}

#[test]
fn writes_never_target_replicas() {
    let (mut client, transport, map) = client_with(vec![]);
    let key = b"hot".to_vec();
    let (_, home) = map.route(&key).expect("routed");
    let shadow = map.workers().into_iter().find(|&w| w != home).expect("s");
    *transport.script.lock() = vec![
        Response::Value {
            value: b"v".to_vec().into(),
            replicas: vec![shadow],
        },
        Response::Stored,
        Response::Stored,
    ]
    .into();
    let _ = client.get(&key).expect("get");
    client
        .set_opts(&key, b"v2", SetOptions::new())
        .expect("set");
    client
        .set_opts(&key, b"v3", SetOptions::new())
        .expect("set");
    for (addr, req) in transport.calls().into_iter().skip(1) {
        assert_eq!(addr, home, "write routed to a replica");
        assert!(matches!(req, Request::Set { .. }));
    }
}

#[test]
fn coordinator_poll_applies_real_deltas() {
    // Use the real coordinator for the poller path.
    let map = mapping(2, 1);
    let coordinator = Arc::new(Coordinator::new(map.clone(), BalancerConfig::default()));
    let transport = MockTransport::new(vec![]);
    let mut client = Client::builder(
        Arc::clone(&transport) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn CoordinatorLink>,
    )
    .build();
    let v0 = client.mapping_version();
    // Server-side move.
    let c = CacheletId(0);
    let cur = map.worker_of_cachelet(c).expect("owned");
    let other = map.workers().into_iter().find(|&w| w != cur).expect("o");
    coordinator.report_local_move(&mbal_balancer::plan::Migration {
        cachelet: c,
        from: cur,
        to: other,
        load: 0.0,
    });
    let applied = client.poll_coordinator();
    assert_eq!(applied, 1);
    assert!(client.mapping_version() > v0);
}

#[test]
fn multi_get_batches_by_worker() {
    let (mut client, transport, map) = client_with(vec![]);
    // Gather keys until two distinct workers are covered.
    let mut keys = Vec::new();
    let mut workers_seen = std::collections::HashSet::new();
    let mut i = 0u32;
    while workers_seen.len() < 2 || keys.len() < 6 {
        let k = format!("batch:{i}").into_bytes();
        workers_seen.insert(map.route(&k).expect("routed").1);
        keys.push(k);
        i += 1;
    }
    let mut per_worker: std::collections::HashMap<WorkerAddr, usize> = Default::default();
    for k in &keys {
        *per_worker.entry(map.route(k).expect("r").1).or_insert(0) += 1;
    }
    let got = client.multi_get(&keys).expect("multi_get");
    assert_eq!(got.len(), keys.len());
    assert!(got.iter().all(|v| v.is_some()));
    assert_eq!(transport.calls().len(), 0, "no singleton calls on success");
    let batches = transport.batches.lock();
    assert_eq!(batches.len(), per_worker.len(), "one call_many per worker");
    for (worker, reqs) in batches.iter() {
        assert_eq!(reqs.len(), per_worker[worker], "whole group in one batch");
        assert!(reqs.iter().all(|r| matches!(r, Request::Get { .. })));
    }
}

#[test]
fn multi_get_mid_batch_failure_degrades_per_key() {
    let (mut client, transport, map) = client_with(vec![]);
    // Keys all owned by one worker, so the batch layout is known.
    let target = map.workers()[0];
    let mut keys = Vec::new();
    let mut i = 0u32;
    while keys.len() < 4 {
        let k = format!("one:{i}").into_bytes();
        if map.route(&k).expect("routed").1 == target {
            keys.push(k);
        }
        i += 1;
    }
    // Ops 2.. of the batch fail (connection dropped mid-batch); the two
    // failed keys fall back to singleton gets, scripted as hits.
    *transport.batch_fail_from.lock() = Some(2);
    *transport.script.lock() = vec![
        Response::Value {
            value: b"f".to_vec().into(),
            replicas: vec![],
        },
        Response::Value {
            value: b"f".to_vec().into(),
            replicas: vec![],
        },
    ]
    .into();
    let got = client.multi_get(&keys).expect("multi_get");
    assert_eq!(got.len(), 4);
    assert_eq!(got[0], Some(b"v".to_vec().into()));
    assert_eq!(got[1], Some(b"v".to_vec().into()));
    assert_eq!(
        got[2],
        Some(b"f".to_vec().into()),
        "failed op recovered per-key"
    );
    assert_eq!(
        got[3],
        Some(b"f".to_vec().into()),
        "failed op recovered per-key"
    );
    assert_eq!(transport.batches.lock().len(), 1, "batch issued once");
    assert_eq!(
        transport.calls().len(),
        2,
        "one fallback call per failed op"
    );
}

#[test]
fn transport_failures_surface_as_errors() {
    let (mut client, _transport, _map) = client_with(vec![]);
    match client.get(b"k") {
        Err(ClientError::Transport(TransportError::Timeout(_))) => {}
        other => panic!("expected transport error, got {other:?}"),
    }
}

#[test]
fn extended_ops_follow_moved_redirects() {
    let (mut client, transport, map) = client_with(vec![]);
    let key = b"counter".to_vec();
    let (cachelet, old_owner) = map.route(&key).expect("routed");
    let new_owner = map
        .workers()
        .into_iter()
        .find(|&w| w != old_owner)
        .expect("other");
    *transport.script.lock() = vec![
        Response::Moved {
            cachelet,
            new_owner,
        },
        Response::Counter { value: 7 },
    ]
    .into();
    assert_eq!(client.incr(&key, 1).expect("incr"), Some(7));
    let calls = transport.calls();
    assert_eq!(calls[1].0, new_owner, "incr retry must follow redirect");
    assert!(matches!(calls[1].1, Request::Incr { .. }));
}

#[test]
fn add_exists_and_replace_miss_are_not_errors() {
    let (mut client, transport, _map) = client_with(vec![
        Response::Fail {
            status: Status::Exists,
            message: "key exists".into(),
        },
        Response::NotFound,
        Response::Touched,
        Response::NotFound,
    ]);
    assert_eq!(
        client.set_opts(b"k", b"v", SetOptions::add()).expect("add"),
        StoreOutcome::Exists
    );
    assert_eq!(
        client
            .set_opts(b"k", b"v", SetOptions::replace())
            .expect("replace"),
        StoreOutcome::NotStored
    );
    assert_eq!(
        client.touch_opts(b"k", 99).expect("touch"),
        StoreOutcome::Stored
    );
    assert_eq!(
        client.touch_opts(b"k", 99).expect("touch"),
        StoreOutcome::Missed
    );
    assert_eq!(transport.calls().len(), 4);
}

#[test]
fn incr_on_non_numeric_is_rejected() {
    let (mut client, _transport, _map) = client_with(vec![Response::Fail {
        status: Status::NotNumeric,
        message: "value is not a decimal counter".into(),
    }]);
    match client.incr(b"text", 1) {
        Err(ClientError::Rejected { status, message }) => {
            assert_eq!(status, Status::NotNumeric);
            assert!(message.contains("decimal"));
        }
        other => panic!("unexpected {other:?}"),
    }
}
