//! Property tests for the front tier's space-saving heavy-hitter sketch,
//! checked against exact frequency counts over random zipfian streams:
//! every true heavy key is reported, estimates bracket the truth, and
//! the guaranteed-count cut admits no false positives.

use mbal_client::SpaceSaving;
use mbal_workload::dist::{KeyDist, Zipfian};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Draws a zipfian stream and returns it with its exact counts.
fn zipf_stream(
    items: u64,
    theta: f64,
    len: usize,
    seed: u64,
) -> (Vec<Vec<u8>>, HashMap<Vec<u8>, u64>) {
    let mut dist = Zipfian::new(items, theta);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut stream = Vec::with_capacity(len);
    let mut exact: HashMap<Vec<u8>, u64> = HashMap::new();
    for _ in 0..len {
        let key = format!("k{}", dist.next_index(&mut rng)).into_bytes();
        *exact.entry(key.clone()).or_insert(0) += 1;
        stream.push(key);
    }
    (stream, exact)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Space-saving guarantees vs ground truth: every key with true
    /// count above `n/k` is tracked, every tracked estimate brackets the
    /// true count (`count − err ≤ true ≤ count`), and every truly heavy
    /// key clears the guaranteed-count reporting cut by the sketch's
    /// error margin.
    #[test]
    fn sketch_brackets_exact_counts_and_misses_no_heavy_hitter(
        items in 50u64..2_000,
        theta_centi in 50u32..150,
        len in 500usize..4_000,
        capacity in 16usize..128,
        seed in any::<u64>(),
    ) {
        // θ spans moderate to extreme skew; exactly 1.0 is undefined for
        // the generator, so nudge it.
        let theta = if theta_centi == 100 { 1.01 } else { theta_centi as f64 / 100.0 };
        let (stream, exact) = zipf_stream(items, theta, len, seed);
        let mut sketch = SpaceSaving::new(capacity);
        for key in &stream {
            sketch.observe(key);
        }
        let n = stream.len() as u64;
        // Maximum overestimation any counter can carry: the minimum
        // counter value never exceeds n/k.
        let margin = n / capacity as u64;

        for (key, &true_count) in &exact {
            if true_count > margin {
                let c = sketch.estimate(key);
                prop_assert!(
                    c.is_some(),
                    "key with {} > n/k = {} occurrences untracked", true_count, margin
                );
                let c = c.unwrap();
                prop_assert!(c.count >= true_count, "estimate must overcount");
                prop_assert!(
                    c.count - c.err <= true_count,
                    "guaranteed count {} exceeds truth {}", c.count - c.err, true_count
                );
            }
        }

        // Completeness of reporting: a key whose true count clears the
        // threshold by the error margin must be in the report.
        let threshold = margin + 1;
        let reported = sketch.heavy_hitters(threshold);
        for (key, &true_count) in &exact {
            if true_count >= threshold + margin {
                prop_assert!(
                    reported.iter().any(|(k, _)| k == key),
                    "true heavy hitter ({} ≥ {}) missing from report",
                    true_count, threshold + margin
                );
            }
        }

        // Soundness of reporting: the guaranteed-count cut admits no
        // false positives at all.
        for (key, c) in &reported {
            let true_count = exact.get(key).copied().unwrap_or(0);
            prop_assert!(
                true_count >= threshold,
                "reported key has true count {} < threshold {} (count {}, err {})",
                true_count, threshold, c.count, c.err
            );
        }
    }

    /// The estimate for any key is never off by more than `n/k` in
    /// either direction, across streams of any shape.
    #[test]
    fn sketch_error_is_bounded_by_stream_over_capacity(
        theta_centi in 60u32..140,
        capacity in 8usize..64,
        seed in any::<u64>(),
    ) {
        let theta = if theta_centi == 100 { 1.01 } else { theta_centi as f64 / 100.0 };
        let (stream, exact) = zipf_stream(300, theta, 2_000, seed);
        let mut sketch = SpaceSaving::new(capacity);
        for key in &stream {
            sketch.observe(key);
        }
        let margin = stream.len() as u64 / capacity as u64;
        for (key, c) in exact.keys().filter_map(|k| sketch.estimate(k).map(|c| (k, c))) {
            let true_count = exact[key];
            prop_assert!(c.count >= true_count);
            prop_assert!(
                c.count - true_count <= margin,
                "overestimate {} exceeds n/k = {}", c.count - true_count, margin
            );
            prop_assert!(c.err <= margin, "recorded error exceeds n/k");
        }
    }
}
