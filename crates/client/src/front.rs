//! The client-side front tier: a heavy-hitter sketch feeding a tiny
//! bounded cache (CoT-style).
//!
//! The balancer reacts to skew at epoch granularity; an extreme zipfian
//! flash crowd saturates a worker faster than any plan can fire. The
//! front tier absorbs exactly that traffic at its source: a
//! [`SpaceSaving`] summary tracks the client's recent GET frequencies,
//! and only sketch-confirmed hot keys are admitted into a [`FrontCache`]
//! of a few dozen entries, bounded in both entries and bytes.
//!
//! **Staleness model.** A front-cached read may serve a value up to
//! `ttl` old with respect to *other* clients' writes — that is the
//! explicit, bounded trade the tier makes. Three rules keep it tight:
//!
//! 1. every local write or delete invalidates the key immediately
//!    (read-your-writes always holds for the owning client),
//! 2. an entry never outlives its TTL,
//! 3. an entry cached under mapping version `v` is rejected once the
//!    client's mapping version moves past `v` — a version bump means a
//!    migration or failover touched the cluster, so anything cached
//!    before it is suspect.

use mbal_core::types::{Key, Value};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Configuration for the client front tier, passed to
/// `ClientBuilder::front_cache`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontCacheConfig {
    /// Maximum cached entries (default 64 — tiny by design).
    pub max_entries: usize,
    /// Maximum cached value bytes across all entries (default 256 KiB).
    pub max_bytes: usize,
    /// Upper bound on how stale a front-cached value may be with respect
    /// to other clients' writes (default 50 ms).
    pub ttl: Duration,
    /// Space-saving summary capacity `k`: any key taking more than
    /// `1/k` of recent GETs is guaranteed to be tracked (default 128).
    pub sketch_entries: usize,
    /// Minimum estimated GET count before a key is considered hot enough
    /// to admit (default 8).
    pub promote_min_count: u64,
}

impl Default for FrontCacheConfig {
    fn default() -> Self {
        Self {
            max_entries: 64,
            max_bytes: 256 << 10,
            ttl: Duration::from_millis(50),
            sketch_entries: 128,
            promote_min_count: 8,
        }
    }
}

impl FrontCacheConfig {
    /// The default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the entry bound.
    pub fn max_entries(mut self, n: usize) -> Self {
        self.max_entries = n.max(1);
        self
    }

    /// Sets the byte bound.
    pub fn max_bytes(mut self, n: usize) -> Self {
        self.max_bytes = n.max(1);
        self
    }

    /// Sets the staleness TTL.
    pub fn ttl(mut self, ttl: Duration) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the sketch capacity.
    pub fn sketch_entries(mut self, k: usize) -> Self {
        self.sketch_entries = k.max(1);
        self
    }

    /// Sets the admission threshold.
    pub fn promote_min_count(mut self, n: u64) -> Self {
        self.promote_min_count = n.max(1);
        self
    }
}

/// A space-saving heavy-hitter summary (Metwally et al.): `k` counters,
/// each an *overestimate* of its key's true frequency with a recorded
/// error bound. Any key whose true count exceeds `n/k` of the `n`
/// observed items is guaranteed to be present.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    counters: HashMap<Key, SketchCounter>,
    observed: u64,
}

/// One tracked key: `count` overestimates the true frequency by at most
/// `err` (the count it inherited from the entry it displaced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchCounter {
    /// Estimated count (an upper bound on the true count).
    pub count: u64,
    /// Maximum overestimation: `count - err` is a guaranteed lower bound.
    pub err: u64,
}

impl SpaceSaving {
    /// Creates a summary with `capacity` counters.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sketch needs at least one counter");
        Self {
            capacity,
            counters: HashMap::with_capacity(capacity),
            observed: 0,
        }
    }

    /// Records one occurrence of `key` and returns its updated estimate.
    pub fn observe(&mut self, key: &[u8]) -> u64 {
        self.observed += 1;
        if let Some(c) = self.counters.get_mut(key) {
            c.count += 1;
            return c.count;
        }
        if self.counters.len() < self.capacity {
            self.counters
                .insert(key.to_vec(), SketchCounter { count: 1, err: 0 });
            return 1;
        }
        // Displace the minimum counter: the newcomer inherits its count
        // as the error bound (the classic space-saving replacement).
        let (victim, min) = self
            .counters
            .iter()
            .min_by_key(|(k, c)| (c.count, (*k).clone()))
            .map(|(k, c)| (k.clone(), c.count))
            .expect("non-empty at capacity");
        self.counters.remove(&victim);
        let fresh = SketchCounter {
            count: min + 1,
            err: min,
        };
        self.counters.insert(key.to_vec(), fresh);
        fresh.count
    }

    /// The tracked estimate for `key`, if present.
    pub fn estimate(&self, key: &[u8]) -> Option<SketchCounter> {
        self.counters.get(key).copied()
    }

    /// Total observations fed to the sketch.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Number of tracked keys (≤ capacity).
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// `true` when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Halves every counter (and its error bound), dropping keys that
    /// decay to zero. Called when the stream the sketch summarizes
    /// changes regime — a mapping epoch or workload phase rotation —
    /// so yesterday's heavy hitters must re-prove themselves instead of
    /// squatting on counters forever.
    pub fn decay(&mut self) {
        self.counters.retain(|_, c| {
            c.count /= 2;
            c.err /= 2;
            c.count > 0
        });
        self.observed /= 2;
    }

    /// Keys whose *guaranteed* count (`count − err`) is at least
    /// `threshold` — reported heavy hitters carry no false positives
    /// under this cut.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(Key, SketchCounter)> {
        let mut v: Vec<(Key, SketchCounter)> = self
            .counters
            .iter()
            .filter(|(_, c)| c.count - c.err >= threshold)
            .map(|(k, c)| (k.clone(), *c))
            .collect();
        v.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(&b.0)));
        v
    }
}

/// Why a front-cache lookup did not serve a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontLookup {
    /// Served locally.
    Hit(Value),
    /// An entry existed but was rejected — TTL expired or the mapping
    /// version moved past the one it was cached under. The entry has
    /// been dropped.
    Stale,
    /// Nothing cached.
    Miss,
}

#[derive(Debug, Clone)]
struct FrontEntry {
    value: Value,
    inserted: Instant,
    mapping_version: u64,
}

/// The bounded front cache: sketch-admitted hot keys only.
#[derive(Debug, Clone)]
pub struct FrontCache {
    cfg: FrontCacheConfig,
    sketch: SpaceSaving,
    entries: HashMap<Key, FrontEntry>,
    bytes: usize,
}

impl FrontCache {
    /// Creates an empty front cache.
    pub fn new(cfg: FrontCacheConfig) -> Self {
        Self {
            sketch: SpaceSaving::new(cfg.sketch_entries),
            entries: HashMap::with_capacity(cfg.max_entries),
            bytes: 0,
            cfg,
        }
    }

    /// Feeds one GET into the sketch and returns the key's estimate.
    pub fn observe_get(&mut self, key: &[u8]) -> u64 {
        self.sketch.observe(key)
    }

    /// `true` when the sketch currently considers `key` hot enough for
    /// admission (used both for admission and for hot-read fanout).
    pub fn is_hot(&self, key: &[u8]) -> bool {
        self.sketch
            .estimate(key)
            .is_some_and(|c| c.count >= self.cfg.promote_min_count)
    }

    /// Looks `key` up, enforcing TTL and mapping-version coherence at
    /// read time.
    pub fn lookup(&mut self, key: &[u8], now: Instant, mapping_version: u64) -> FrontLookup {
        let Some(e) = self.entries.get(key) else {
            return FrontLookup::Miss;
        };
        let expired = now.duration_since(e.inserted) > self.cfg.ttl;
        if expired || e.mapping_version != mapping_version {
            self.invalidate(key);
            return FrontLookup::Stale;
        }
        FrontLookup::Hit(self.entries[key].value.clone())
    }

    /// Admits `key` → `value` if the sketch confirms it hot; returns
    /// `true` on a *new* promotion (refreshing an already-cached key is
    /// not counted again). Values larger than the byte bound are never
    /// admitted.
    pub fn admit(&mut self, key: &[u8], value: &[u8], now: Instant, mapping_version: u64) -> bool {
        if !self.is_hot(key) || value.len() > self.cfg.max_bytes {
            return false;
        }
        let fresh = !self.entries.contains_key(key);
        self.invalidate(key);
        while self.entries.len() >= self.cfg.max_entries
            || self.bytes + value.len() > self.cfg.max_bytes
        {
            let Some(victim) = self.coldest() else { break };
            self.invalidate(&victim);
        }
        self.bytes += value.len();
        self.entries.insert(
            key.to_vec(),
            FrontEntry {
                value: Value::copy_from_slice(value),
                inserted: now,
                mapping_version,
            },
        );
        fresh
    }

    /// Drops `key` (local write, delete, or staleness rejection).
    pub fn invalidate(&mut self, key: &[u8]) {
        if let Some(e) = self.entries.remove(key) {
            self.bytes -= e.value.len();
        }
    }

    /// Drops everything (mapping refetch, reconfiguration).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }

    /// The cached entry with the lowest sketch estimate — the first to
    /// go when the cache is full.
    fn coldest(&self) -> Option<Key> {
        self.entries
            .keys()
            .min_by_key(|k| (self.sketch.estimate(k).map_or(0, |c| c.count), (*k).clone()))
            .cloned()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cached value bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The underlying sketch (diagnostics, tests).
    pub fn sketch(&self) -> &SpaceSaving {
        &self.sketch
    }

    /// Decays the admission sketch (see [`SpaceSaving::decay`]). Cached
    /// entries are left alone — mapping-version coherence already
    /// rejects them at read time after a remap.
    pub fn decay_sketch(&mut self) {
        self.sketch.decay();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn now() -> Instant {
        Instant::now()
    }

    #[test]
    fn sketch_tracks_exact_counts_under_capacity() {
        let mut s = SpaceSaving::new(8);
        for _ in 0..5 {
            s.observe(b"a");
        }
        for _ in 0..3 {
            s.observe(b"b");
        }
        assert_eq!(s.estimate(b"a"), Some(SketchCounter { count: 5, err: 0 }));
        assert_eq!(s.estimate(b"b"), Some(SketchCounter { count: 3, err: 0 }));
        assert_eq!(s.observed(), 8);
    }

    #[test]
    fn sketch_displacement_records_the_error_bound() {
        let mut s = SpaceSaving::new(2);
        s.observe(b"a");
        s.observe(b"a");
        s.observe(b"b");
        // Capacity reached: "c" displaces the minimum ("b", count 1).
        s.observe(b"c");
        let c = s.estimate(b"c").expect("tracked");
        assert_eq!(c, SketchCounter { count: 2, err: 1 });
        assert!(s.estimate(b"b").is_none(), "victim dropped");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn decay_halves_counts_and_drops_dead_keys() {
        let mut s = SpaceSaving::new(8);
        for _ in 0..9 {
            s.observe(b"hot");
        }
        s.observe(b"once");
        s.decay();
        assert_eq!(s.estimate(b"hot"), Some(SketchCounter { count: 4, err: 0 }));
        assert!(s.estimate(b"once").is_none(), "count 1 decays to zero");
        assert_eq!(s.observed(), 5);
        // Repeated decay eventually empties the sketch entirely.
        for _ in 0..4 {
            s.decay();
        }
        assert!(s.is_empty());
    }

    #[test]
    fn heavy_hitters_have_no_false_positives() {
        let mut s = SpaceSaving::new(4);
        for _ in 0..40 {
            s.observe(b"hot");
        }
        for i in 0..30u32 {
            s.observe(format!("cold:{i}").as_bytes());
        }
        for (k, c) in s.heavy_hitters(20) {
            assert_eq!(k, b"hot".to_vec());
            assert!(c.count - c.err >= 20);
        }
        assert_eq!(s.heavy_hitters(20).len(), 1);
    }

    fn hot_cache(cfg: FrontCacheConfig) -> FrontCache {
        let mut f = FrontCache::new(cfg);
        for _ in 0..cfg.promote_min_count {
            f.observe_get(b"hot");
        }
        f
    }

    #[test]
    fn admission_requires_sketch_confirmation() {
        let mut f = FrontCache::new(FrontCacheConfig::default());
        assert!(!f.admit(b"cold", b"v", now(), 1), "cold key rejected");
        assert!(f.is_empty());
        for _ in 0..8 {
            f.observe_get(b"hot");
        }
        assert!(f.admit(b"hot", b"v", now(), 1), "hot key promoted");
        assert_eq!(
            f.lookup(b"hot", now(), 1),
            FrontLookup::Hit(b"v".to_vec().into())
        );
    }

    #[test]
    fn readmission_is_not_a_new_promotion() {
        let mut f = hot_cache(FrontCacheConfig::default());
        assert!(f.admit(b"hot", b"v1", now(), 1));
        assert!(!f.admit(b"hot", b"v2", now(), 1), "refresh, not promotion");
        assert_eq!(
            f.lookup(b"hot", now(), 1),
            FrontLookup::Hit(b"v2".to_vec().into())
        );
    }

    #[test]
    fn ttl_expiry_rejects_at_read_time() {
        let mut f = hot_cache(FrontCacheConfig::default().ttl(Duration::from_millis(10)));
        let t0 = now();
        assert!(f.admit(b"hot", b"v", t0, 1));
        assert_eq!(
            f.lookup(b"hot", t0 + Duration::from_millis(5), 1),
            FrontLookup::Hit(b"v".to_vec().into())
        );
        assert_eq!(
            f.lookup(b"hot", t0 + Duration::from_millis(11), 1),
            FrontLookup::Stale
        );
        assert_eq!(
            f.lookup(b"hot", t0 + Duration::from_millis(5), 1),
            FrontLookup::Miss,
            "a rejected entry is gone"
        );
    }

    #[test]
    fn mapping_version_bump_rejects_cached_entries() {
        let mut f = hot_cache(FrontCacheConfig::default());
        assert!(f.admit(b"hot", b"v", now(), 3));
        assert_eq!(f.lookup(b"hot", now(), 4), FrontLookup::Stale);
        assert_eq!(f.lookup(b"hot", now(), 4), FrontLookup::Miss);
    }

    #[test]
    fn invalidation_gives_read_your_writes() {
        let mut f = hot_cache(FrontCacheConfig::default());
        assert!(f.admit(b"hot", b"old", now(), 1));
        f.invalidate(b"hot");
        assert_eq!(f.lookup(b"hot", now(), 1), FrontLookup::Miss);
    }

    #[test]
    fn entry_bound_evicts_the_coldest() {
        let mut f = FrontCache::new(FrontCacheConfig::default().max_entries(2));
        for _ in 0..20 {
            f.observe_get(b"hottest");
        }
        for _ in 0..12 {
            f.observe_get(b"warm");
        }
        for _ in 0..9 {
            f.observe_get(b"tepid");
        }
        assert!(f.admit(b"hottest", b"v", now(), 1));
        assert!(f.admit(b"warm", b"v", now(), 1));
        assert!(f.admit(b"tepid", b"v", now(), 1));
        assert_eq!(f.len(), 2);
        assert_eq!(
            f.lookup(b"warm", now(), 1),
            FrontLookup::Miss,
            "the coldest cached key made room"
        );
        assert!(matches!(
            f.lookup(b"hottest", now(), 1),
            FrontLookup::Hit(_)
        ));
        assert!(matches!(f.lookup(b"tepid", now(), 1), FrontLookup::Hit(_)));
    }

    #[test]
    fn byte_bound_is_enforced() {
        let mut f = FrontCache::new(FrontCacheConfig::default().max_bytes(10));
        for _ in 0..8 {
            f.observe_get(b"a");
            f.observe_get(b"b");
        }
        assert!(!f.admit(b"a", &[0u8; 11], now(), 1), "oversized value");
        assert!(f.admit(b"a", &[0u8; 6], now(), 1));
        assert!(f.admit(b"b", &[0u8; 6], now(), 1), "evicts to fit");
        assert!(f.bytes() <= 10);
        assert_eq!(f.len(), 1);
    }
}
