//! # mbal-client
//!
//! The MBal client library (§2.3, §3.2 of the paper).
//!
//! Clients do the routing: a request for a key is resolved through the
//! cached two-level mapping table (key → VN → cachelet → worker) and sent
//! straight to the owning worker's endpoint — there is no dispatcher. Web
//! applications "simply link against our Memcached protocol compliant
//! client library"; this crate is that library for the Rust world.
//!
//! Responsibilities:
//!
//! - **Configuration cache** — a local [`MappingTable`] copy, updated
//!   from `Moved` responses ("on-the-way routing") and from periodic
//!   coordinator heartbeats carrying mapping deltas
//!   ([`Client::poll_coordinator`], the *migration poller*).
//! - **Replica-aware reads** — when a GET response piggybacks replica
//!   locations for a hot key, subsequent reads for that key round-robin
//!   across the home worker and its shadows (Phase 1, §3.2). Writes
//!   always go to the home worker.
//! - **MultiGET batching** — [`Client::multi_get`] groups keys by owner
//!   worker and issues one batched request per worker, the technique the
//!   paper uses to amortize network overhead (100-GET batches, §4.1).
//! - **Front tier** (optional, [`ClientBuilder::front_cache`]) — a
//!   heavy-hitter sketch over recent GETs feeding a tiny TTL-bounded
//!   cache of sketch-confirmed hot keys, plus power-of-two-choices
//!   replica reads for hot keys. See the [`front`] module for the
//!   staleness model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod front;

pub use front::{FrontCache, FrontCacheConfig, FrontLookup, SketchCounter, SpaceSaving};

use mbal_balancer::coordinator::{Coordinator, HeartbeatReply};
use mbal_balancer::replicated::ReplicatedCoordinator;
use mbal_core::types::{Key, TenantId, Value, WorkerAddr};
use mbal_proto::{Request, Response, Status};
use mbal_ring::MappingTable;
use mbal_server::transport::{Transport, TransportError, DEFAULT_DEADLINE};
use mbal_telemetry::StatsReport;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Abstraction over how a client reaches the coordinator (in-process or
/// remote).
pub trait CoordinatorLink: Send + Sync {
    /// Sends a heartbeat with the client's mapping version.
    fn heartbeat(&self, version: u64) -> HeartbeatReply;

    /// Fetches the full mapping table (bootstrap / lagged poller).
    fn full_table(&self) -> MappingTable;
}

impl CoordinatorLink for Coordinator {
    fn heartbeat(&self, version: u64) -> HeartbeatReply {
        Coordinator::heartbeat(self, version)
    }

    fn full_table(&self) -> MappingTable {
        self.mapping_snapshot()
    }
}

impl CoordinatorLink for ReplicatedCoordinator {
    fn heartbeat(&self, version: u64) -> HeartbeatReply {
        mbal_balancer::replicated::CoordinatorService::heartbeat(self, version)
    }

    fn full_table(&self) -> MappingTable {
        mbal_balancer::replicated::CoordinatorService::mapping_snapshot(self)
    }
}

/// Client-side operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// GET operations issued.
    pub gets: u64,
    /// GETs that found a value.
    pub hits: u64,
    /// SET operations issued.
    pub sets: u64,
    /// DELETE operations issued.
    pub deletes: u64,
    /// `Moved` redirects followed (mapping refreshed on the way).
    pub moved: u64,
    /// Reads served by a replica instead of the home worker.
    pub replica_reads: u64,
    /// Requests retried after a transient `Busy` (bucket mid-migration).
    pub busy_retries: u64,
    /// Idempotent requests retried after a transport error (timeout,
    /// dropped frame, connection reset), within the operation's budget.
    pub transport_retries: u64,
    /// Coordinator polls skipped because the migration poller was
    /// backing off after fruitless resyncs.
    pub backoff_skips: u64,
    /// Operations that failed after exhausting retries.
    pub failures: u64,
    /// GETs served from the client's front cache without touching the
    /// wire (a subset of `hits`).
    pub front_hits: u64,
    /// Front-cache entries rejected at read time — TTL expired or the
    /// mapping version moved past the one they were cached under.
    pub front_stale_rejected: u64,
    /// Keys newly admitted into the front cache after the sketch
    /// confirmed them hot.
    pub sketch_promotions: u64,
    /// Times the front sketch was decayed because the mapping moved (a
    /// migration, failover, or membership epoch) — the hot-key regime
    /// the sketch summarized may have shifted with it.
    pub sketch_decays: u64,
}

/// Errors surfaced to the application.
///
/// Server-side refusals carry the wire [`Status`] alongside the server's
/// message, so the client does not maintain a parallel error taxonomy:
/// `From<Status>` is the single mapping between the two worlds.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The transport could not reach the worker.
    Transport(TransportError),
    /// The cache rejected the operation (out of memory, protocol error).
    Rejected {
        /// The proto status the server answered with ([`Status::Error`]
        /// for malformed/unexpected responses diagnosed client-side).
        status: Status,
        /// Human-readable detail (the server's message where one was
        /// sent, otherwise [`Status::describe`]).
        message: String,
    },
    /// Retries were exhausted (persistent `Busy` or routing flap).
    RetriesExhausted,
}

impl ClientError {
    /// The proto status behind this error, if it came from the server.
    pub fn status(&self) -> Option<Status> {
        match self {
            ClientError::Rejected { status, .. } => Some(*status),
            _ => None,
        }
    }

    fn rejected(status: Status, message: String) -> Self {
        if message.is_empty() {
            ClientError::from(status)
        } else {
            ClientError::Rejected { status, message }
        }
    }

    fn unexpected(resp: &Response) -> Self {
        ClientError::Rejected {
            status: Status::Error,
            message: format!("unexpected response {resp:?}"),
        }
    }
}

impl From<Status> for ClientError {
    fn from(status: Status) -> Self {
        ClientError::Rejected {
            status,
            message: status.describe().to_string(),
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Rejected { status, message } => {
                write!(f, "rejected ({status:?}): {message}")
            }
            ClientError::RetriesExhausted => write!(f, "retries exhausted"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Typed result of a conditional store ([`Client::set_opts`],
/// [`Client::touch_opts`]): what the server did, instead of a bare bool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The value was stored (or the TTL refreshed).
    Stored,
    /// A conditional store was declined because its presence condition
    /// failed: `replace`/`append`/`prepend` on an absent key (memcached
    /// `NOT_STORED`).
    NotStored,
    /// `add` declined: the key already exists.
    Exists,
    /// The addressed key was absent (`touch` on a missing key).
    Missed,
}

impl StoreOutcome {
    /// `true` when the server actually stored/refreshed the value.
    pub fn is_stored(self) -> bool {
        self == StoreOutcome::Stored
    }
}

/// Which store-family verb [`Client::set_opts`] issues.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StoreMode {
    /// Unconditional insert-or-replace (memcached `set`).
    #[default]
    Set,
    /// Store only if absent (`add`).
    Add,
    /// Store only if present (`replace`).
    Replace,
    /// Append bytes to an existing value (`append`).
    Append,
    /// Prepend bytes to an existing value (`prepend`).
    Prepend,
}

/// Options for [`Client::set_opts`] — the single entry point for the
/// store family (`set`/`add`/`replace`/`append`/`prepend`, with or
/// without expiry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetOptions {
    /// Store verb (default [`StoreMode::Set`]).
    pub mode: StoreMode,
    /// Absolute expiry in milliseconds (0 = never). Ignored by the
    /// concatenating modes, which keep the existing entry's expiry.
    pub expiry_ms: u64,
}

impl SetOptions {
    /// Plain unconditional store, no expiry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store only if absent.
    pub fn add() -> Self {
        Self {
            mode: StoreMode::Add,
            ..Self::default()
        }
    }

    /// Store only if present.
    pub fn replace() -> Self {
        Self {
            mode: StoreMode::Replace,
            ..Self::default()
        }
    }

    /// Append to an existing value.
    pub fn append() -> Self {
        Self {
            mode: StoreMode::Append,
            ..Self::default()
        }
    }

    /// Prepend to an existing value.
    pub fn prepend() -> Self {
        Self {
            mode: StoreMode::Prepend,
            ..Self::default()
        }
    }

    /// Sets the absolute expiry in milliseconds (0 = never).
    pub fn expiry_ms(mut self, expiry_ms: u64) -> Self {
        self.expiry_ms = expiry_ms;
        self
    }
}

struct ReplicaSet {
    /// Home worker plus shadows, read round-robin.
    targets: Vec<WorkerAddr>,
    next: usize,
}

/// Fluent constructor for [`Client`].
///
/// The transport and coordinator link are mandatory and positional;
/// everything else has defaults tuned for the live stack: a
/// [`DEFAULT_DEADLINE`] per-operation budget, 8 retries, and 100-key
/// MultiGET batches (the paper's §4.1 batching factor).
///
/// ```ignore
/// let client = Client::builder(transport, coordinator)
///     .op_budget(Duration::from_millis(250))
///     .multiget_batch(100)
///     .build();
/// ```
pub struct ClientBuilder {
    transport: Arc<dyn Transport>,
    coordinator: Arc<dyn CoordinatorLink>,
    op_budget: Duration,
    max_retries: usize,
    multiget_batch: usize,
    backoff_base: Duration,
    backoff_max: Duration,
    tenant: TenantId,
    front: Option<FrontCacheConfig>,
}

impl ClientBuilder {
    /// Starts a builder over the given transport and coordinator link.
    pub fn new(transport: Arc<dyn Transport>, coordinator: Arc<dyn CoordinatorLink>) -> Self {
        Self {
            transport,
            coordinator,
            op_budget: DEFAULT_DEADLINE,
            max_retries: 8,
            multiget_batch: 100,
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(256),
            tenant: TenantId::DEFAULT,
            front: None,
        }
    }

    /// The tenant this client acts for (default: [`TenantId::DEFAULT`]).
    /// Every data operation is tagged with the tenant on the wire; a
    /// server without that tenant admitted answers a typed
    /// `Status::UnknownTenant` refusal rather than dropping the
    /// connection. The default tenant sends unchanged frames, so
    /// single-tenant deployments pay nothing.
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Total wall-clock budget for one logical operation, shared by all
    /// of its retries — a retry gets the *remaining* budget as its
    /// transport deadline, never a fresh full one. Default
    /// [`DEFAULT_DEADLINE`].
    pub fn op_budget(mut self, budget: Duration) -> Self {
        self.op_budget = budget;
        self
    }

    /// Maximum attempts per logical operation (default 8, minimum 1).
    pub fn max_retries(mut self, n: usize) -> Self {
        self.max_retries = n.max(1);
        self
    }

    /// Maximum keys per pipelined MultiGET batch to one worker (default
    /// 100, minimum 1). Larger [`Client::multi_get`] calls are split
    /// into batches of this size per worker.
    pub fn multiget_batch(mut self, n: usize) -> Self {
        self.multiget_batch = n.max(1);
        self
    }

    /// Migration-poller backoff window: a coordinator resync that yields
    /// no mapping change (the rebalance the client is waiting on has not
    /// committed yet) opens a jittered window that doubles per fruitless
    /// resync, from `base` up to `max`. Defaults: 2 ms → 256 ms.
    pub fn poll_backoff(mut self, base: Duration, max: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_max = max.max(base);
        self
    }

    /// Enables the client front tier: a heavy-hitter sketch over recent
    /// GETs feeding a tiny bounded cache of hot keys, plus
    /// power-of-two-choices replica reads for hot keys. Off by default —
    /// a client without a front tier pays nothing. The front cache is
    /// per-client (and therefore per-tenant: a tenant's client never
    /// sees another tenant's values), TTL-bounded, invalidated by every
    /// local write, and rejects entries cached under an older mapping
    /// version. See [`front`] for the full staleness model.
    pub fn front_cache(mut self, cfg: FrontCacheConfig) -> Self {
        self.front = Some(cfg);
        self
    }

    /// Builds the client, fetching the initial mapping from the
    /// coordinator.
    pub fn build(self) -> Client {
        let mapping = self.coordinator.full_table();
        Client {
            mapping,
            transport: self.transport,
            coordinator: self.coordinator,
            replicas: HashMap::new(),
            max_retries: self.max_retries,
            op_budget: self.op_budget,
            multiget_batch: self.multiget_batch,
            backoff_base: self.backoff_base,
            backoff_max: self.backoff_max,
            backoff_streak: 0,
            backoff_until: None,
            jitter_rng: 0x9E37_79B9_7F4A_7C15,
            tenant: self.tenant,
            front: self.front.map(FrontCache::new),
            latency_ewma_us: HashMap::new(),
            stats: ClientStats::default(),
        }
    }
}

/// An MBal cache client.
pub struct Client {
    mapping: MappingTable,
    transport: Arc<dyn Transport>,
    coordinator: Arc<dyn CoordinatorLink>,
    replicas: HashMap<Key, ReplicaSet>,
    max_retries: usize,
    /// Total wall-clock budget for one logical operation, shared by all
    /// of its retries — a retry gets the *remaining* budget as its
    /// transport deadline, never a fresh full one.
    op_budget: Duration,
    /// Keys per pipelined MultiGET batch to one worker.
    multiget_batch: usize,
    /// First fruitless-resync backoff window (doubles per streak).
    backoff_base: Duration,
    /// Ceiling on the backoff window.
    backoff_max: Duration,
    /// Consecutive coordinator resyncs that changed nothing.
    backoff_streak: u32,
    /// No poller resync before this instant.
    backoff_until: Option<Instant>,
    /// xorshift64* state for backoff jitter and power-of-two-choices
    /// replica picks (no RNG dependency).
    jitter_rng: u64,
    /// The tenant every data op is tagged with on the wire.
    tenant: TenantId,
    /// Optional front tier: hot-key sketch + tiny bounded cache.
    front: Option<FrontCache>,
    /// Per-target EWMA service time in µs, the load signal behind
    /// power-of-two-choices replica reads. Only maintained when the
    /// front tier is enabled.
    latency_ewma_us: HashMap<WorkerAddr, u64>,
    stats: ClientStats,
}

impl Client {
    /// Starts a [`ClientBuilder`] — the way to construct a client.
    pub fn builder(
        transport: Arc<dyn Transport>,
        coordinator: Arc<dyn CoordinatorLink>,
    ) -> ClientBuilder {
        ClientBuilder::new(transport, coordinator)
    }

    /// Remaining budget before `deadline`, or `None` once it has passed.
    fn remaining(deadline: Instant) -> Option<Duration> {
        let now = Instant::now();
        if now >= deadline {
            None
        } else {
            Some(deadline - now)
        }
    }

    /// The client's current mapping version.
    pub fn mapping_version(&self) -> u64 {
        self.mapping.version()
    }

    /// Operation counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Polls the coordinator (the heartbeat/migration-poller path) and
    /// applies any mapping changes. Returns the number of deltas applied.
    ///
    /// Fruitless polls — no deltas, no refetch, meaning the move the
    /// client is waiting on has not committed yet — open a jittered
    /// exponential backoff window honoured by the retry paths, so a
    /// cluster mid-rebalance is not hammered with heartbeats. Any
    /// mapping change closes the window.
    pub fn poll_coordinator(&mut self) -> usize {
        let reply = self.coordinator.heartbeat(self.mapping.version());
        let changes = if reply.full_refetch {
            let table = self.coordinator.full_table();
            self.mapping.replace_with(&table);
            1 // full refresh counts as one change
        } else {
            for d in &reply.deltas {
                self.mapping.apply_delta(d);
            }
            reply.deltas.len()
        };
        if changes == 0 {
            let delay = self.next_backoff_delay();
            self.backoff_until = Some(Instant::now() + delay);
        } else {
            self.backoff_streak = 0;
            self.backoff_until = None;
            self.decay_front_sketch();
        }
        changes
    }

    /// Decays the front tier's heavy-hitter sketch after a remap: the
    /// mapping moving means a migration, failover, or membership epoch
    /// touched the cluster, and the traffic regime the sketch
    /// summarized may have rotated with it. Halving (rather than
    /// clearing) keeps genuinely persistent hot keys warm while letting
    /// a rotated head displace them quickly.
    fn decay_front_sketch(&mut self) {
        if let Some(front) = self.front.as_mut() {
            front.decay_sketch();
            self.stats.sketch_decays += 1;
        }
    }

    /// The gated resync used by `NotOwner`/transport-error retry paths:
    /// polls the coordinator unless a backoff window from earlier
    /// fruitless polls is still open.
    fn resync_mapping(&mut self) -> usize {
        if let Some(until) = self.backoff_until {
            if Instant::now() < until {
                self.stats.backoff_skips += 1;
                return 0;
            }
        }
        self.poll_coordinator()
    }

    /// Next backoff window: `base × 2^streak`, capped at `max`, jittered
    /// uniformly into `[window/2, window]` so a herd of clients chasing
    /// the same migration desynchronizes.
    fn next_backoff_delay(&mut self) -> Duration {
        let exp = self.backoff_streak.min(16);
        self.backoff_streak = self.backoff_streak.saturating_add(1);
        let window = self
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.backoff_max);
        let rng = self.rng_next();
        let nanos = window.as_nanos() as u64;
        let jittered = nanos / 2 + (nanos / 2 / 512) * (rng % 512);
        Duration::from_nanos(jittered)
    }

    /// xorshift64*: tiny, seedable, and dependency-free — shared by
    /// backoff jitter and power-of-two-choices replica picks.
    fn rng_next(&mut self) -> u64 {
        self.jitter_rng ^= self.jitter_rng << 13;
        self.jitter_rng ^= self.jitter_rng >> 7;
        self.jitter_rng ^= self.jitter_rng << 17;
        self.jitter_rng
    }

    /// Folds one observed service time into the target's EWMA (α = 1/8).
    fn note_latency(&mut self, target: WorkerAddr, elapsed: Duration) {
        let us = elapsed.as_micros() as u64;
        let e = self.latency_ewma_us.entry(target).or_insert(us);
        *e = (*e * 7 + us) / 8;
    }

    /// Drops `key` from the front cache after a local write, so the
    /// owning client never reads its own stale value.
    fn front_invalidate(&mut self, key: &[u8]) {
        if let Some(front) = self.front.as_mut() {
            front.invalidate(key);
        }
    }

    /// Offers a freshly fetched value to the front cache; counts the
    /// promotion if the sketch admitted a new key.
    fn front_admit(&mut self, key: &[u8], value: &[u8]) {
        let version = self.mapping.version();
        if let Some(front) = self.front.as_mut() {
            if front.admit(key, value, Instant::now(), version) {
                self.stats.sketch_promotions += 1;
            }
        }
    }

    fn apply_moved(&mut self, cachelet: mbal_core::types::CacheletId, new_owner: WorkerAddr) {
        self.stats.moved += 1;
        // Synthesize a delta one version ahead so it applies.
        let d = mbal_ring::MappingDelta {
            version: self.mapping.version() + 1,
            cachelet,
            new_owner,
        };
        self.mapping.apply_delta(&d);
        self.decay_front_sketch();
    }

    /// Looks up `key`. Replica-aware: hot keys spread across their home
    /// worker and shadows — power-of-two-choices by observed latency
    /// when the front tier confirms the key hot, round-robin otherwise.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Value>, ClientError> {
        self.stats.gets += 1;
        // Front tier: feed the sketch, then try the local hot cache.
        // TTL and mapping-version coherence are enforced at read time.
        if let Some(front) = self.front.as_mut() {
            front.observe_get(key);
            match front.lookup(key, Instant::now(), self.mapping.version()) {
                FrontLookup::Hit(value) => {
                    self.stats.front_hits += 1;
                    self.stats.hits += 1;
                    return Ok(Some(value));
                }
                FrontLookup::Stale => self.stats.front_stale_rejected += 1,
                FrontLookup::Miss => {}
            }
        }
        // Replica fast path. Phase-1 replication only covers the default
        // tenant (replica ops speak raw keys), so tenant clients always
        // read from the home worker.
        if self.tenant.is_default() {
            if let Some(target) = self.pick_replica(key) {
                let (_cachelet, home) = self
                    .mapping
                    .route(key)
                    .ok_or(ClientError::RetriesExhausted)?;
                if target != home {
                    let start = Instant::now();
                    match self
                        .transport
                        .call(target, Request::ReplicaRead { key: key.to_vec() })
                    {
                        Ok(Response::Value { value, .. }) => {
                            if self.front.is_some() {
                                self.note_latency(target, start.elapsed());
                            }
                            self.stats.hits += 1;
                            self.stats.replica_reads += 1;
                            self.front_admit(key, &value);
                            return Ok(Some(value));
                        }
                        _ => {
                            // Replica expired or unreachable: forget and fall
                            // through to the home worker.
                            self.replicas.remove(key);
                        }
                    }
                }
            }
        }
        self.get_home(key)
    }

    /// Picks the read target for a key with replica routing state.
    /// Sketch-confirmed hot keys use power-of-two-choices over the
    /// target set, keyed by each target's latency EWMA (an unsampled
    /// target scores zero and gets explored); everything else keeps the
    /// round-robin rotation.
    fn pick_replica(&mut self, key: &[u8]) -> Option<WorkerAddr> {
        let set = self.replicas.get(key)?;
        let n = set.targets.len();
        let hot = self.front.as_ref().is_some_and(|f| f.is_hot(key));
        if hot && n > 1 {
            let targets = set.targets.clone();
            let a = (self.rng_next() % n as u64) as usize;
            let mut b = (self.rng_next() % (n as u64 - 1)) as usize;
            if b >= a {
                b += 1;
            }
            let load = |w: &WorkerAddr| self.latency_ewma_us.get(w).copied().unwrap_or(0);
            let pick = if load(&targets[a]) <= load(&targets[b]) {
                a
            } else {
                b
            };
            return Some(targets[pick]);
        }
        let set = self.replicas.get_mut(key).expect("present above");
        let target = set.targets[set.next % n];
        set.next += 1;
        Some(target)
    }

    fn get_home(&mut self, key: &[u8]) -> Result<Option<Value>, ClientError> {
        let deadline = Instant::now() + self.op_budget;
        let mut last_err = ClientError::RetriesExhausted;
        for _ in 0..self.max_retries {
            let Some(left) = Self::remaining(deadline) else {
                break;
            };
            let (cachelet, worker) = self
                .mapping
                .route(key)
                .ok_or(ClientError::RetriesExhausted)?;
            let start = Instant::now();
            let resp = match self.transport.call_with_deadline(
                worker,
                Request::Get {
                    cachelet,
                    key: key.to_vec(),
                }
                .for_tenant(self.tenant),
                left,
            ) {
                Ok(r) => r,
                Err(e) => {
                    // GET is idempotent: retry against refreshed routing
                    // within the remaining budget. The endpoint may have
                    // reset or the bucket may have moved, so drop any
                    // replica routing for the key and resync the mapping.
                    last_err = ClientError::Transport(e);
                    self.stats.transport_retries += 1;
                    self.replicas.remove(key);
                    self.resync_mapping();
                    continue;
                }
            };
            if self.front.is_some() {
                self.note_latency(worker, start.elapsed());
            }
            match resp {
                Response::Value { value, replicas } => {
                    self.stats.hits += 1;
                    if !replicas.is_empty() {
                        let mut targets = vec![worker];
                        targets.extend(replicas);
                        self.replicas
                            .insert(key.to_vec(), ReplicaSet { targets, next: 1 });
                    }
                    self.front_admit(key, &value);
                    return Ok(Some(value));
                }
                Response::NotFound => return Ok(None),
                Response::Moved {
                    cachelet,
                    new_owner,
                } => {
                    self.apply_moved(cachelet, new_owner);
                    continue;
                }
                Response::Fail { status, message } => match status {
                    Status::Busy => {
                        self.stats.busy_retries += 1;
                        continue;
                    }
                    Status::NotOwner => {
                        // Stale mapping with no forward: resync.
                        self.resync_mapping();
                        continue;
                    }
                    _ => return Err(ClientError::rejected(status, message)),
                },
                other => return Err(ClientError::unexpected(&other)),
            }
        }
        self.stats.failures += 1;
        Err(last_err)
    }

    /// Batched lookup: groups keys by owner worker and issues pipelined
    /// `call_many` batches of GETs per worker — one request flush and
    /// one response drain per batch, the paper's MultiGET amortization
    /// (§4.1). Batches are capped at the builder's `multiget_batch`
    /// (default 100, the paper's batching factor). Results are
    /// positional (`None` = miss). Per-operation failures — redirects,
    /// mid-migration buckets, a connection dropped mid-batch — fall back
    /// to the singleton path for the affected keys only, instead of
    /// poisoning the whole batch.
    pub fn multi_get(&mut self, keys: &[Key]) -> Result<Vec<Option<Value>>, ClientError> {
        self.stats.gets += keys.len() as u64;
        let mut by_worker: HashMap<WorkerAddr, Vec<(usize, mbal_core::types::CacheletId, Key)>> =
            HashMap::new();
        for (i, key) in keys.iter().enumerate() {
            let (cachelet, worker) = self
                .mapping
                .route(key)
                .ok_or(ClientError::RetriesExhausted)?;
            by_worker
                .entry(worker)
                .or_default()
                .push((i, cachelet, key.clone()));
        }
        let mut out = vec![None; keys.len()];
        let cap = self.multiget_batch.max(1);
        for (worker, batch) in by_worker {
            for chunk in batch.chunks(cap) {
                let reqs: Vec<Request> = chunk
                    .iter()
                    .map(|(_, c, k)| {
                        Request::Get {
                            cachelet: *c,
                            key: k.clone(),
                        }
                        .for_tenant(self.tenant)
                    })
                    .collect();
                let results = self.transport.call_many(worker, reqs, self.op_budget);
                for ((i, _, k), result) in chunk.iter().zip(results) {
                    match result {
                        Ok(Response::Value { value, replicas }) => {
                            self.stats.hits += 1;
                            if !replicas.is_empty() {
                                let mut targets = vec![worker];
                                targets.extend(replicas);
                                self.replicas
                                    .insert(k.clone(), ReplicaSet { targets, next: 1 });
                            }
                            out[*i] = Some(value);
                        }
                        Ok(Response::NotFound) => out[*i] = None,
                        Ok(Response::Moved {
                            cachelet,
                            new_owner,
                        }) => {
                            // Singleton path follows the redirect chain.
                            self.apply_moved(cachelet, new_owner);
                            out[*i] = self.get_home(k)?;
                        }
                        Ok(Response::Fail { .. }) | Err(_) => {
                            out[*i] = self.get_home(k)?;
                        }
                        Ok(other) => return Err(ClientError::unexpected(&other)),
                    }
                }
            }
        }
        Ok(out)
    }

    /// The store-family entry point: one call covers `set`, `add`,
    /// `replace`, `append`, and `prepend`, with or without expiry, and
    /// answers a typed [`StoreOutcome`] instead of a bare bool.
    ///
    /// Retry semantics follow the verb: [`StoreMode::Set`] is idempotent
    /// (last-writer-wins on the same value) and retries through transport
    /// errors within the budget; the conditional and concatenating modes
    /// fail fast on transport errors because a lost *ack* may still have
    /// mutated state.
    pub fn set_opts(
        &mut self,
        key: &[u8],
        value: &[u8],
        opts: SetOptions,
    ) -> Result<StoreOutcome, ClientError> {
        self.stats.sets += 1;
        // A cached replica set must not keep serving the pre-write value
        // after this write is acknowledged (read-your-writes): route
        // subsequent reads back to the home worker until the server
        // piggybacks a fresh replica set. The front cache drops the key
        // for the same reason.
        self.replicas.remove(key);
        self.front_invalidate(key);
        match opts.mode {
            StoreMode::Set => self.set_unconditional(key, value, opts.expiry_ms),
            StoreMode::Add => self.cond_store(key, value, opts.expiry_ms, true),
            StoreMode::Replace => self.cond_store(key, value, opts.expiry_ms, false),
            StoreMode::Append => self.concat_op(key, value, false),
            StoreMode::Prepend => self.concat_op(key, value, true),
        }
    }

    fn set_unconditional(
        &mut self,
        key: &[u8],
        value: &[u8],
        expiry_ms: u64,
    ) -> Result<StoreOutcome, ClientError> {
        // Copy the caller's slice once into a refcounted [`Value`]; every
        // retry below is then a refcount bump, not another payload copy.
        let value = Value::copy_from_slice(value);
        let deadline = Instant::now() + self.op_budget;
        let mut last_err = ClientError::RetriesExhausted;
        for _ in 0..self.max_retries {
            let Some(left) = Self::remaining(deadline) else {
                break;
            };
            let (cachelet, worker) = self
                .mapping
                .route(key)
                .ok_or(ClientError::RetriesExhausted)?;
            let resp = match self.transport.call_with_deadline(
                worker,
                Request::Set {
                    cachelet,
                    key: key.to_vec(),
                    value: value.clone(),
                    expiry_ms,
                }
                .for_tenant(self.tenant),
                left,
            ) {
                Ok(r) => r,
                Err(e) => {
                    // SET is idempotent (last-writer-wins on the same
                    // value): safe to re-send within the budget even if
                    // the lost frame was actually applied.
                    last_err = ClientError::Transport(e);
                    self.stats.transport_retries += 1;
                    self.resync_mapping();
                    continue;
                }
            };
            match resp {
                Response::Stored => return Ok(StoreOutcome::Stored),
                Response::Moved {
                    cachelet,
                    new_owner,
                } => {
                    self.apply_moved(cachelet, new_owner);
                    continue;
                }
                Response::Fail { status, message } => match status {
                    Status::Busy => {
                        self.stats.busy_retries += 1;
                        continue;
                    }
                    Status::NotOwner => {
                        self.resync_mapping();
                        continue;
                    }
                    _ => return Err(ClientError::rejected(status, message)),
                },
                other => return Err(ClientError::unexpected(&other)),
            }
        }
        self.stats.failures += 1;
        Err(last_err)
    }

    /// Shared retry loop for single-key write-family operations: routes,
    /// follows `Moved`, retries `Busy`, resyncs on `NotOwner`. The
    /// `request` closure builds the request for the current routing;
    /// `accept` translates terminal responses.
    ///
    /// Transport errors are **not** retried here: `add`, `replace`,
    /// `concat`, `incr`, and `touch` are not idempotent — a lost *ack*
    /// may still have mutated state, and blindly re-sending would e.g.
    /// double-apply an increment. The application owns that decision.
    /// Every attempt still draws its deadline from the shared budget.
    fn write_op<T>(
        &mut self,
        key: &[u8],
        mut request: impl FnMut(mbal_core::types::CacheletId) -> Request,
        mut accept: impl FnMut(Response) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let deadline = Instant::now() + self.op_budget;
        for _ in 0..self.max_retries {
            let Some(left) = Self::remaining(deadline) else {
                break;
            };
            let (cachelet, worker) = self
                .mapping
                .route(key)
                .ok_or(ClientError::RetriesExhausted)?;
            let resp = self
                .transport
                .call_with_deadline(worker, request(cachelet).for_tenant(self.tenant), left)
                .map_err(ClientError::Transport)?;
            match resp {
                Response::Moved {
                    cachelet,
                    new_owner,
                } => {
                    self.apply_moved(cachelet, new_owner);
                    continue;
                }
                Response::Fail { status, message } => match status {
                    Status::Busy => {
                        self.stats.busy_retries += 1;
                        continue;
                    }
                    Status::NotOwner => {
                        self.resync_mapping();
                        continue;
                    }
                    _ => {
                        return accept(Response::Fail { status, message });
                    }
                },
                other => return accept(other),
            }
        }
        self.stats.failures += 1;
        Err(ClientError::RetriesExhausted)
    }

    /// Conditional store: `add` (`if_absent`) or `replace`.
    fn cond_store(
        &mut self,
        key: &[u8],
        value: &[u8],
        expiry_ms: u64,
        if_absent: bool,
    ) -> Result<StoreOutcome, ClientError> {
        let value = Value::copy_from_slice(value);
        self.write_op(
            key,
            |cachelet| {
                if if_absent {
                    Request::Add {
                        cachelet,
                        key: key.to_vec(),
                        value: value.clone(),
                        expiry_ms,
                    }
                } else {
                    Request::Replace {
                        cachelet,
                        key: key.to_vec(),
                        value: value.clone(),
                        expiry_ms,
                    }
                }
            },
            |resp| match resp {
                Response::Stored => Ok(StoreOutcome::Stored),
                Response::Fail {
                    status: Status::Exists,
                    ..
                } => Ok(StoreOutcome::Exists),
                Response::NotFound => Ok(StoreOutcome::NotStored),
                Response::Fail { status, message } => Err(ClientError::rejected(status, message)),
                other => Err(ClientError::unexpected(&other)),
            },
        )
    }

    fn concat_op(
        &mut self,
        key: &[u8],
        bytes: &[u8],
        front: bool,
    ) -> Result<StoreOutcome, ClientError> {
        let bytes = Value::copy_from_slice(bytes);
        self.write_op(
            key,
            |cachelet| Request::Concat {
                cachelet,
                key: key.to_vec(),
                value: bytes.clone(),
                front,
            },
            |resp| match resp {
                Response::Stored => Ok(StoreOutcome::Stored),
                Response::NotFound => Ok(StoreOutcome::NotStored),
                Response::Fail { status, message } => Err(ClientError::rejected(status, message)),
                other => Err(ClientError::unexpected(&other)),
            },
        )
    }

    /// Increments an ASCII-decimal counter; `Ok(None)` on a miss.
    pub fn incr(&mut self, key: &[u8], delta: u64) -> Result<Option<u64>, ClientError> {
        self.counter_op(key, delta as i64)
    }

    /// Decrements a counter, saturating at zero; `Ok(None)` on a miss.
    pub fn decr(&mut self, key: &[u8], delta: u64) -> Result<Option<u64>, ClientError> {
        self.counter_op(key, -(delta as i64))
    }

    fn counter_op(&mut self, key: &[u8], delta: i64) -> Result<Option<u64>, ClientError> {
        self.stats.sets += 1;
        self.front_invalidate(key);
        self.write_op(
            key,
            |cachelet| Request::Incr {
                cachelet,
                key: key.to_vec(),
                delta,
            },
            |resp| match resp {
                Response::Counter { value } => Ok(Some(value)),
                Response::NotFound => Ok(None),
                Response::Fail { status, message } => Err(ClientError::rejected(status, message)),
                other => Err(ClientError::unexpected(&other)),
            },
        )
    }

    /// Refreshes the TTL of an existing key: [`StoreOutcome::Stored`] on
    /// success, [`StoreOutcome::Missed`] when the key is absent.
    pub fn touch_opts(&mut self, key: &[u8], expiry_ms: u64) -> Result<StoreOutcome, ClientError> {
        // Conservative: a TTL change can shorten the entry's server-side
        // life below the front window.
        self.front_invalidate(key);
        self.write_op(
            key,
            |cachelet| Request::Touch {
                cachelet,
                key: key.to_vec(),
                expiry_ms,
            },
            |resp| match resp {
                Response::Touched => Ok(StoreOutcome::Stored),
                Response::NotFound => Ok(StoreOutcome::Missed),
                Response::Fail { status, message } => Err(ClientError::rejected(status, message)),
                other => Err(ClientError::unexpected(&other)),
            },
        )
    }

    /// Deletes `key`.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool, ClientError> {
        self.stats.deletes += 1;
        self.replicas.remove(key);
        self.front_invalidate(key);
        let deadline = Instant::now() + self.op_budget;
        let mut last_err = ClientError::RetriesExhausted;
        for _ in 0..self.max_retries {
            let Some(left) = Self::remaining(deadline) else {
                break;
            };
            let (cachelet, worker) = self
                .mapping
                .route(key)
                .ok_or(ClientError::RetriesExhausted)?;
            let resp = match self.transport.call_with_deadline(
                worker,
                Request::Delete {
                    cachelet,
                    key: key.to_vec(),
                }
                .for_tenant(self.tenant),
                left,
            ) {
                Ok(r) => r,
                Err(e) => {
                    // DELETE is idempotent: a replay of an applied delete
                    // just reports NotFound.
                    last_err = ClientError::Transport(e);
                    self.stats.transport_retries += 1;
                    self.resync_mapping();
                    continue;
                }
            };
            match resp {
                Response::Deleted => return Ok(true),
                Response::NotFound => return Ok(false),
                Response::Moved {
                    cachelet,
                    new_owner,
                } => {
                    self.apply_moved(cachelet, new_owner);
                    continue;
                }
                Response::Fail {
                    status: Status::NotOwner,
                    ..
                } => {
                    self.resync_mapping();
                    continue;
                }
                Response::Fail { status, message } => {
                    return Err(ClientError::rejected(status, message))
                }
                other => return Err(ClientError::unexpected(&other)),
            }
        }
        self.stats.failures += 1;
        Err(last_err)
    }

    /// Number of keys with client-side replica routing state.
    pub fn replicated_keys(&self) -> usize {
        self.replicas.len()
    }

    /// The front tier, when one was configured (diagnostics, tests).
    pub fn front_cache(&self) -> Option<&FrontCache> {
        self.front.as_ref()
    }

    /// Fetches the server-side stats dump from one worker (the memcached
    /// `stats` analog). With `reset: true` the worker zeroes its counters
    /// and latency histograms after snapshotting (`stats reset`); gauges
    /// describe current state and are left alone.
    pub fn worker_stats(
        &mut self,
        addr: WorkerAddr,
        reset: bool,
    ) -> Result<StatsReport, ClientError> {
        let resp = self
            .transport
            .call(addr, Request::Stats { reset })
            .map_err(ClientError::Transport)?;
        match resp {
            Response::StatsBlob { payload } => {
                serde_json::from_slice(&payload).map_err(|e| ClientError::Rejected {
                    status: Status::Error,
                    message: format!("bad stats payload: {e}"),
                })
            }
            Response::Fail { status, message } => Err(ClientError::rejected(status, message)),
            other => Err(ClientError::unexpected(&other)),
        }
    }

    /// Fetches stats from every worker in the client's mapping table, in
    /// worker-address order. Workers that fail to answer are skipped.
    pub fn server_stats(&mut self, reset: bool) -> Result<Vec<StatsReport>, ClientError> {
        let workers = self.mapping.workers();
        let mut out = Vec::with_capacity(workers.len());
        for w in workers {
            if let Ok(report) = self.worker_stats(w, reset) {
                out.push(report);
            }
        }
        if out.is_empty() {
            return Err(ClientError::RetriesExhausted);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbal_ring::ConsistentRing;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// A coordinator whose mapping never changes.
    struct StaticCoord(MappingTable);

    impl CoordinatorLink for StaticCoord {
        fn heartbeat(&self, version: u64) -> HeartbeatReply {
            HeartbeatReply {
                version,
                deltas: Vec::new(),
                full_refetch: false,
            }
        }

        fn full_table(&self) -> MappingTable {
            self.0.clone()
        }
    }

    /// Records every per-attempt deadline the client hands the transport
    /// and times out the first `fail_first` calls.
    struct FlakyTransport {
        deadlines: Mutex<Vec<Duration>>,
        fail_first: AtomicUsize,
    }

    impl FlakyTransport {
        fn recorded(&self) -> Vec<Duration> {
            self.deadlines.lock().unwrap().clone()
        }
    }

    impl Transport for FlakyTransport {
        fn call(&self, addr: WorkerAddr, req: Request) -> Result<Response, TransportError> {
            self.call_with_deadline(addr, req, DEFAULT_DEADLINE)
        }

        fn call_with_deadline(
            &self,
            addr: WorkerAddr,
            req: Request,
            deadline: Duration,
        ) -> Result<Response, TransportError> {
            self.deadlines.lock().unwrap().push(deadline);
            if self.fail_first.load(Ordering::SeqCst) > 0 {
                self.fail_first.fetch_sub(1, Ordering::SeqCst);
                return Err(TransportError::Timeout(addr));
            }
            Ok(match req {
                Request::Get { .. } => Response::NotFound,
                Request::Set { .. } | Request::Add { .. } => Response::Stored,
                Request::Delete { .. } => Response::Deleted,
                _ => Response::NotFound,
            })
        }
    }

    fn client_with_budget(fail_first: usize, budget: Duration) -> (Client, Arc<FlakyTransport>) {
        let mut ring = ConsistentRing::new();
        ring.add_worker(WorkerAddr::new(0, 0));
        let mapping = MappingTable::build(&ring, 2, 16);
        let transport = Arc::new(FlakyTransport {
            deadlines: Mutex::new(Vec::new()),
            fail_first: AtomicUsize::new(fail_first),
        });
        let client = Client::builder(transport.clone(), Arc::new(StaticCoord(mapping)))
            .op_budget(budget)
            .build();
        (client, transport)
    }

    fn client_with(fail_first: usize) -> (Client, Arc<FlakyTransport>) {
        client_with_budget(fail_first, DEFAULT_DEADLINE)
    }

    #[test]
    fn retries_draw_from_one_shared_budget() {
        let (mut client, transport) = client_with_budget(3, Duration::from_secs(5));
        assert!(client.get(b"k").expect("succeeds on attempt 4").is_none());
        let deadlines = transport.recorded();
        assert_eq!(deadlines.len(), 4, "three timeouts then one success");
        assert!(deadlines[0] <= Duration::from_secs(5));
        for pair in deadlines.windows(2) {
            assert!(
                pair[1] <= pair[0],
                "a retry was granted more deadline than its predecessor: {deadlines:?}"
            );
        }
        assert_eq!(client.stats().transport_retries, 3);
        assert_eq!(client.stats().failures, 0);
    }

    #[test]
    fn exhausted_budget_fails_without_touching_the_wire() {
        let (mut client, transport) = client_with_budget(0, Duration::ZERO);
        assert!(client.get(b"k").is_err());
        assert!(
            transport.recorded().is_empty(),
            "no transport call may be issued with a spent budget"
        );
        assert_eq!(client.stats().failures, 1);
    }

    #[test]
    fn non_idempotent_writes_fail_fast_on_transport_errors() {
        let (mut client, transport) = client_with(1);
        let res = client.set_opts(b"k", b"v", SetOptions::add());
        assert!(
            matches!(res, Err(ClientError::Transport(_))),
            "add must not be blindly re-sent: {res:?}"
        );
        assert_eq!(transport.recorded().len(), 1, "exactly one attempt");
        assert_eq!(client.stats().transport_retries, 0);
    }

    #[test]
    fn idempotent_delete_retries_within_budget() {
        let (mut client, transport) = client_with(2);
        assert!(client.delete(b"k").expect("succeeds on attempt 3"));
        assert_eq!(transport.recorded().len(), 3);
        assert_eq!(client.stats().transport_retries, 2);
    }

    #[test]
    fn set_drops_replica_routing_for_the_key() {
        let (mut client, _transport) = client_with(0);
        client.replicas.insert(
            b"k".to_vec(),
            ReplicaSet {
                targets: vec![WorkerAddr::new(0, 0)],
                next: 0,
            },
        );
        assert_eq!(client.replicated_keys(), 1);
        client
            .set_opts(b"k", b"v", SetOptions::new())
            .expect("set succeeds");
        assert_eq!(
            client.replicated_keys(),
            0,
            "a cached replica set must not serve the pre-set value"
        );
    }

    /// Answers each store verb with its characteristic refusal, so every
    /// [`StoreOutcome`] variant is exercised.
    struct RefusingTransport;

    impl Transport for RefusingTransport {
        fn call(&self, addr: WorkerAddr, req: Request) -> Result<Response, TransportError> {
            self.call_with_deadline(addr, req, DEFAULT_DEADLINE)
        }

        fn call_with_deadline(
            &self,
            _addr: WorkerAddr,
            req: Request,
            _deadline: Duration,
        ) -> Result<Response, TransportError> {
            Ok(match req {
                Request::Set { .. } => Response::Stored,
                Request::Add { .. } => Response::Fail {
                    status: Status::Exists,
                    message: String::new(),
                },
                Request::Replace { .. } | Request::Concat { .. } | Request::Touch { .. } => {
                    Response::NotFound
                }
                _ => Response::NotFound,
            })
        }
    }

    fn refusing_client() -> Client {
        let mut ring = ConsistentRing::new();
        ring.add_worker(WorkerAddr::new(0, 0));
        let mapping = MappingTable::build(&ring, 2, 16);
        Client::builder(Arc::new(RefusingTransport), Arc::new(StaticCoord(mapping))).build()
    }

    #[test]
    fn store_outcomes_are_typed() {
        let mut c = refusing_client();
        assert_eq!(
            c.set_opts(b"k", b"v", SetOptions::new()).unwrap(),
            StoreOutcome::Stored
        );
        assert_eq!(
            c.set_opts(b"k", b"v", SetOptions::add()).unwrap(),
            StoreOutcome::Exists
        );
        assert_eq!(
            c.set_opts(b"k", b"v", SetOptions::replace()).unwrap(),
            StoreOutcome::NotStored
        );
        assert_eq!(
            c.set_opts(b"k", b"v", SetOptions::append()).unwrap(),
            StoreOutcome::NotStored
        );
        assert_eq!(
            c.set_opts(b"k", b"v", SetOptions::prepend()).unwrap(),
            StoreOutcome::NotStored
        );
        assert_eq!(c.touch_opts(b"k", 500).unwrap(), StoreOutcome::Missed);
        assert!(!StoreOutcome::Exists.is_stored());
        assert!(StoreOutcome::Stored.is_stored());
    }

    #[test]
    fn status_maps_into_client_error() {
        let e = ClientError::from(Status::OutOfMemory);
        assert_eq!(e.status(), Some(Status::OutOfMemory));
        match &e {
            ClientError::Rejected { message, .. } => {
                assert_eq!(message, Status::OutOfMemory.describe());
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // A server-sent message wins; an empty one falls back to the
        // canonical description.
        let kept = ClientError::rejected(Status::Error, "boom".into());
        assert_eq!(
            kept,
            ClientError::Rejected {
                status: Status::Error,
                message: "boom".into()
            }
        );
        let filled = ClientError::rejected(Status::Busy, String::new());
        assert_eq!(filled.status(), Some(Status::Busy));
        assert!(format!("{filled}").contains(Status::Busy.describe()));
    }

    #[test]
    fn builder_clamps_and_applies_options() {
        let mut ring = ConsistentRing::new();
        ring.add_worker(WorkerAddr::new(0, 0));
        let mapping = MappingTable::build(&ring, 2, 16);
        let transport = Arc::new(RefusingTransport);
        let c = Client::builder(transport, Arc::new(StaticCoord(mapping)))
            .op_budget(Duration::from_millis(250))
            .max_retries(0)
            .multiget_batch(0)
            .build();
        assert_eq!(c.op_budget, Duration::from_millis(250));
        assert_eq!(c.max_retries, 1, "retries clamp to at least one attempt");
        assert_eq!(c.multiget_batch, 1, "batch clamps to at least one key");
    }

    /// Counts heartbeats and never changes the mapping — a coordinator
    /// mid-rebalance whose move has not committed yet.
    struct CountingCoord {
        mapping: MappingTable,
        heartbeats: AtomicUsize,
    }

    impl CoordinatorLink for CountingCoord {
        fn heartbeat(&self, version: u64) -> HeartbeatReply {
            self.heartbeats.fetch_add(1, Ordering::SeqCst);
            HeartbeatReply {
                version,
                deltas: Vec::new(),
                full_refetch: false,
            }
        }

        fn full_table(&self) -> MappingTable {
            self.mapping.clone()
        }
    }

    /// Refuses everything with `NotOwner` — routing that never resolves.
    struct NotOwnerTransport;

    impl Transport for NotOwnerTransport {
        fn call(&self, addr: WorkerAddr, req: Request) -> Result<Response, TransportError> {
            self.call_with_deadline(addr, req, DEFAULT_DEADLINE)
        }

        fn call_with_deadline(
            &self,
            _addr: WorkerAddr,
            _req: Request,
            _deadline: Duration,
        ) -> Result<Response, TransportError> {
            Ok(Response::Fail {
                status: Status::NotOwner,
                message: String::new(),
            })
        }
    }

    #[test]
    fn fruitless_resyncs_back_off_instead_of_hammering_the_coordinator() {
        let mut ring = ConsistentRing::new();
        ring.add_worker(WorkerAddr::new(0, 0));
        let mapping = MappingTable::build(&ring, 2, 16);
        let coord = Arc::new(CountingCoord {
            mapping,
            heartbeats: AtomicUsize::new(0),
        });
        let mut client = Client::builder(Arc::new(NotOwnerTransport), coord.clone())
            .poll_backoff(Duration::from_secs(30), Duration::from_secs(60))
            .build();
        assert!(client.get(b"k").is_err(), "every attempt is refused");
        assert_eq!(
            coord.heartbeats.load(Ordering::SeqCst),
            1,
            "the first fruitless poll opens the window; later retries wait"
        );
        assert_eq!(
            client.stats().backoff_skips,
            7,
            "the remaining attempts skip the poll"
        );
    }

    #[test]
    fn mapping_change_resets_poller_backoff() {
        struct RefetchCoord(MappingTable);

        impl CoordinatorLink for RefetchCoord {
            fn heartbeat(&self, version: u64) -> HeartbeatReply {
                HeartbeatReply {
                    version,
                    deltas: Vec::new(),
                    full_refetch: true,
                }
            }

            fn full_table(&self) -> MappingTable {
                self.0.clone()
            }
        }

        let mut ring = ConsistentRing::new();
        ring.add_worker(WorkerAddr::new(0, 0));
        let mapping = MappingTable::build(&ring, 2, 16);
        let mut client =
            Client::builder(Arc::new(NotOwnerTransport), Arc::new(RefetchCoord(mapping))).build();
        client.backoff_streak = 5;
        client.backoff_until = Some(Instant::now() + Duration::from_secs(60));
        assert_eq!(client.poll_coordinator(), 1, "full refetch is one change");
        assert_eq!(
            client.backoff_streak, 0,
            "a mapping change resets the streak"
        );
        assert!(client.backoff_until.is_none(), "and closes the window");
    }

    /// Asserts every data op arrives wrapped for tenant 7 and answers
    /// the inner verb's happy response.
    struct TenantCheckingTransport;

    impl Transport for TenantCheckingTransport {
        fn call(&self, addr: WorkerAddr, req: Request) -> Result<Response, TransportError> {
            self.call_with_deadline(addr, req, DEFAULT_DEADLINE)
        }

        fn call_with_deadline(
            &self,
            _addr: WorkerAddr,
            req: Request,
            _deadline: Duration,
        ) -> Result<Response, TransportError> {
            let (tenant, inner) = req.tenant_parts();
            assert_eq!(
                tenant,
                TenantId(7),
                "every data op must carry the tenant tag: {inner:?}"
            );
            Ok(match inner {
                Request::Get { .. } => Response::NotFound,
                Request::Set { .. } | Request::Add { .. } | Request::Concat { .. } => {
                    Response::Stored
                }
                Request::Delete { .. } => Response::Deleted,
                Request::Touch { .. } => Response::Touched,
                _ => Response::NotFound,
            })
        }
    }

    #[test]
    fn tenant_client_tags_every_data_op() {
        let mut ring = ConsistentRing::new();
        ring.add_worker(WorkerAddr::new(0, 0));
        let mapping = MappingTable::build(&ring, 2, 16);
        let mut c = Client::builder(
            Arc::new(TenantCheckingTransport),
            Arc::new(StaticCoord(mapping)),
        )
        .tenant(TenantId(7))
        .build();
        assert_eq!(c.get(b"k").unwrap(), None);
        assert!(c
            .set_opts(b"k", b"v", SetOptions::new())
            .unwrap()
            .is_stored());
        assert!(c
            .set_opts(b"k", b"v", SetOptions::add())
            .unwrap()
            .is_stored());
        assert_eq!(c.touch_opts(b"k", 9).unwrap(), StoreOutcome::Stored);
        assert!(c.delete(b"k").unwrap());
        let got = c.multi_get(&[b"a".to_vec(), b"b".to_vec()]).unwrap();
        assert_eq!(got, vec![None, None]);
    }

    #[test]
    fn tenant_client_skips_the_replica_fast_path() {
        let mut ring = ConsistentRing::new();
        ring.add_worker(WorkerAddr::new(0, 0));
        let mapping = MappingTable::build(&ring, 2, 16);
        let mut c = Client::builder(
            Arc::new(TenantCheckingTransport),
            Arc::new(StaticCoord(mapping)),
        )
        .tenant(TenantId(7))
        .build();
        // Even with poisoned replica routing state, a tenant client must
        // go to the home worker (a ReplicaRead would trip the transport's
        // tenant assertion, since replica ops are never wrapped).
        c.replicas.insert(
            b"k".to_vec(),
            ReplicaSet {
                targets: vec![WorkerAddr::new(0, 0), WorkerAddr::new(9, 9)],
                next: 1,
            },
        );
        assert_eq!(c.get(b"k").unwrap(), None);
        assert_eq!(c.stats().replica_reads, 0);
    }

    #[test]
    fn unknown_tenant_surfaces_as_a_typed_rejection() {
        struct UnknownTenantTransport;

        impl Transport for UnknownTenantTransport {
            fn call(&self, addr: WorkerAddr, req: Request) -> Result<Response, TransportError> {
                self.call_with_deadline(addr, req, DEFAULT_DEADLINE)
            }

            fn call_with_deadline(
                &self,
                _addr: WorkerAddr,
                _req: Request,
                _deadline: Duration,
            ) -> Result<Response, TransportError> {
                Ok(Response::Fail {
                    status: Status::UnknownTenant,
                    message: "tenant 9 is not admitted on this server".into(),
                })
            }
        }

        let mut ring = ConsistentRing::new();
        ring.add_worker(WorkerAddr::new(0, 0));
        let mapping = MappingTable::build(&ring, 2, 16);
        let mut c = Client::builder(
            Arc::new(UnknownTenantTransport),
            Arc::new(StaticCoord(mapping)),
        )
        .tenant(TenantId(9))
        .build();
        let err = c.set_opts(b"k", b"v", SetOptions::new()).unwrap_err();
        assert_eq!(err.status(), Some(Status::UnknownTenant));
        let err = c.get(b"k").unwrap_err();
        assert_eq!(
            err.status(),
            Some(Status::UnknownTenant),
            "an unadmitted tenant gets a typed error, not a dead session"
        );
    }

    /// Always answers GETs (home or replica) with `b"v"` and counts
    /// every wire call — the front tier's effect is visible as calls
    /// that never happen.
    struct ValueTransport {
        calls: AtomicUsize,
    }

    impl Transport for ValueTransport {
        fn call(&self, addr: WorkerAddr, req: Request) -> Result<Response, TransportError> {
            self.call_with_deadline(addr, req, DEFAULT_DEADLINE)
        }

        fn call_with_deadline(
            &self,
            _addr: WorkerAddr,
            req: Request,
            _deadline: Duration,
        ) -> Result<Response, TransportError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            Ok(match req.tenant_parts().1 {
                Request::Get { .. } | Request::ReplicaRead { .. } => Response::Value {
                    value: b"v".to_vec().into(),
                    replicas: Vec::new(),
                },
                Request::Set { .. } => Response::Stored,
                Request::Delete { .. } => Response::Deleted,
                _ => Response::NotFound,
            })
        }
    }

    fn front_client(cfg: FrontCacheConfig) -> (Client, Arc<ValueTransport>) {
        let mut ring = ConsistentRing::new();
        ring.add_worker(WorkerAddr::new(0, 0));
        let mapping = MappingTable::build(&ring, 2, 16);
        let transport = Arc::new(ValueTransport {
            calls: AtomicUsize::new(0),
        });
        let client = Client::builder(transport.clone(), Arc::new(StaticCoord(mapping)))
            .front_cache(cfg)
            .build();
        (client, transport)
    }

    #[test]
    fn hot_keys_are_served_from_the_front_cache() {
        let (mut c, t) = front_client(
            FrontCacheConfig::default()
                .promote_min_count(3)
                .ttl(Duration::from_secs(60)),
        );
        // GETs 1–2 are below the admission threshold; GET 3 crosses it
        // and the fetched value is admitted.
        for _ in 0..3 {
            assert_eq!(c.get(b"hot").unwrap(), Some(b"v".to_vec().into()));
        }
        assert_eq!(c.stats().sketch_promotions, 1);
        let wire = t.calls.load(Ordering::SeqCst);
        assert_eq!(c.get(b"hot").unwrap(), Some(b"v".to_vec().into()));
        assert_eq!(
            t.calls.load(Ordering::SeqCst),
            wire,
            "a front hit must not touch the wire"
        );
        assert_eq!(c.stats().front_hits, 1);
        assert_eq!(c.stats().hits, 4, "front hits still count as hits");
    }

    #[test]
    fn cold_keys_never_enter_the_front_cache() {
        let (mut c, t) = front_client(FrontCacheConfig::default().promote_min_count(100));
        for i in 0..10u32 {
            c.get(format!("k{i}").as_bytes()).unwrap();
        }
        assert_eq!(c.stats().front_hits, 0);
        assert_eq!(c.stats().sketch_promotions, 0);
        assert_eq!(t.calls.load(Ordering::SeqCst), 10, "every GET went out");
    }

    #[test]
    fn local_writes_invalidate_the_front_cache() {
        let (mut c, t) = front_client(
            FrontCacheConfig::default()
                .promote_min_count(2)
                .ttl(Duration::from_secs(60)),
        );
        for _ in 0..3 {
            c.get(b"k").unwrap();
        }
        assert_eq!(c.stats().front_hits, 1, "cached after promotion");
        c.set_opts(b"k", b"w", SetOptions::new()).expect("set");
        let wire = t.calls.load(Ordering::SeqCst);
        c.get(b"k").unwrap();
        assert_eq!(
            t.calls.load(Ordering::SeqCst),
            wire + 1,
            "read-your-writes: the GET after a local write goes out"
        );
    }

    #[test]
    fn delete_and_counter_ops_invalidate_the_front_cache() {
        let (mut c, _t) = front_client(
            FrontCacheConfig::default()
                .promote_min_count(2)
                .ttl(Duration::from_secs(60)),
        );
        for _ in 0..3 {
            c.get(b"k").unwrap();
        }
        assert_eq!(c.front_cache().unwrap().len(), 1);
        c.delete(b"k").expect("delete");
        assert_eq!(c.front_cache().unwrap().len(), 0);
        for _ in 0..2 {
            c.get(b"k").unwrap();
        }
        assert_eq!(c.front_cache().unwrap().len(), 1);
        let _ = c.incr(b"k", 1);
        assert_eq!(c.front_cache().unwrap().len(), 0);
    }

    #[test]
    fn mapping_version_bump_rejects_front_entries() {
        let (mut c, t) = front_client(
            FrontCacheConfig::default()
                .promote_min_count(2)
                .ttl(Duration::from_secs(60)),
        );
        for _ in 0..3 {
            c.get(b"k").unwrap();
        }
        assert_eq!(c.stats().front_hits, 1);
        // A migration (even one that lands on the same owner) bumps the
        // mapping version; entries cached before it are suspect.
        c.apply_moved(mbal_core::types::CacheletId(0), WorkerAddr::new(0, 0));
        let wire = t.calls.load(Ordering::SeqCst);
        c.get(b"k").unwrap();
        assert_eq!(c.stats().front_stale_rejected, 1);
        assert_eq!(t.calls.load(Ordering::SeqCst), wire + 1, "refetched");
    }

    #[test]
    fn hot_replicated_keys_use_power_of_two_choices() {
        // TTL zero: every admitted entry is stale by its next read, so
        // each GET exercises target selection instead of the front cache.
        let (mut c, _t) = front_client(
            FrontCacheConfig::default()
                .promote_min_count(2)
                .ttl(Duration::ZERO),
        );
        c.replicas.insert(
            b"k".to_vec(),
            ReplicaSet {
                targets: vec![
                    WorkerAddr::new(0, 0),
                    WorkerAddr::new(1, 0),
                    WorkerAddr::new(2, 0),
                ],
                next: 0,
            },
        );
        for _ in 0..20 {
            assert_eq!(c.get(b"k").unwrap(), Some(b"v".to_vec().into()));
        }
        assert!(
            c.stats().replica_reads > 0,
            "p2c must route some hot reads to shadows: {:?}",
            c.stats()
        );
        assert!(
            !c.latency_ewma_us.is_empty(),
            "replica reads feed the latency signal"
        );
    }

    #[test]
    fn backoff_windows_grow_jittered_and_capped() {
        let (mut client, _t) = client_with(0);
        // Builder defaults: base 2 ms, cap 256 ms.
        let delays: Vec<Duration> = (0..12).map(|_| client.next_backoff_delay()).collect();
        for d in &delays {
            assert!(*d >= Duration::from_millis(1), "never below base/2: {d:?}");
            assert!(
                *d <= Duration::from_millis(256),
                "never above the cap: {d:?}"
            );
        }
        assert!(
            delays[0] <= Duration::from_millis(2),
            "streak 0 stays within the base window: {:?}",
            delays[0]
        );
        assert!(
            delays[11] >= Duration::from_millis(128),
            "a saturated streak fills at least half the cap: {:?}",
            delays[11]
        );
        assert!(
            delays.windows(2).any(|p| p[0] != p[1]),
            "jitter must vary the windows: {delays:?}"
        );
    }
}
