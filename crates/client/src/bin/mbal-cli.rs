//! `mbal-cli` — a tiny command-line client for a running `mbal-server`.
//!
//! The CLI reconstructs the server's mapping from the same parameters
//! the server was started with (workers/cachelets are deterministic), so
//! it needs `--workers` and `--cachelets` to match.
//!
//! ```text
//! mbal-cli --host 127.0.0.1 --port 11311 --workers 4 set user:1 alice
//! mbal-cli --host 127.0.0.1 --port 11311 --workers 4 get user:1
//! mbal-cli --host 127.0.0.1 --port 11311 --workers 4 del user:1
//! mbal-cli --host 127.0.0.1 --port 11311 --workers 4 stats
//! mbal-cli --host 127.0.0.1 --port 11311 --workers 4 stats-reset
//! mbal-cli --host 127.0.0.1 --port 11311 --workers 4 cluster-status
//! mbal-cli --host 127.0.0.1 --port 11311 --workers 4 tenants
//! mbal-cli --host 127.0.0.1 --port 11311 --workers 4 --tenant 3 get user:1
//! ```
//!
//! `--tenant T` tags data ops with tenant `T` (multi-tenant servers);
//! `tenants` prints per-tenant residency, budget, and hit rate.
//!
//! `--front-cache N` arms the client front tier with room for `N`
//! sketch-confirmed hot keys (TTL-bounded staleness; see the client
//! `front` module). A single-shot CLI process cannot profit from it —
//! every invocation starts cold — but the flag exercises the exact
//! builder path long-lived embedders use, and `mget`-style scripted
//! loops inside one process do benefit.

use mbal_balancer::coordinator::HeartbeatReply;
use mbal_client::{Client, CoordinatorLink, FrontCacheConfig, SetOptions};
use mbal_core::types::{TenantId, WorkerAddr};
use mbal_membership::{MembershipView, NodeState};
use mbal_proto::{Request, Response};
use mbal_ring::{ConsistentRing, MappingTable};
use mbal_server::tcp::TcpTransport;
use mbal_server::Transport;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;

fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// A static coordinator stub: the CLI trusts its reconstructed mapping
/// and relies on `Moved` redirects for anything that shifted.
struct StaticMapping(MappingTable);

impl CoordinatorLink for StaticMapping {
    fn heartbeat(&self, version: u64) -> HeartbeatReply {
        HeartbeatReply {
            version,
            deltas: vec![],
            full_refetch: false,
        }
    }

    fn full_table(&self) -> MappingTable {
        self.0.clone()
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: mbal-cli [--host H] [--port P] [--workers N] [--cachelets N] \
         [--tenant T] [--front-cache N] [--instance TYPE] \\
         <get KEY | set KEY VALUE | del KEY | stats | stats-reset | cluster-status | tenants>\n\
         --instance picks the Table-1 cost-model row for the cluster-status \
         cost footer (default c3.large)"
    );
    std::process::exit(2);
}

fn main() {
    let host = flag("--host").unwrap_or_else(|| "127.0.0.1".into());
    let port: u16 = flag("--port").and_then(|v| v.parse().ok()).unwrap_or(11311);
    let workers: u16 = flag("--workers").and_then(|v| v.parse().ok()).unwrap_or(4);
    let cachelets: usize = flag("--cachelets")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let tenant: u16 = flag("--tenant").and_then(|v| v.parse().ok()).unwrap_or(0);
    let front_entries: usize = flag("--front-cache")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let instance_name = flag("--instance").unwrap_or_else(|| "c3.large".into());

    // Positional command starts after the flags.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pos = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            pos.push(args[i].clone());
            i += 1;
        }
    }
    if pos.is_empty() {
        usage();
    }

    let mut ring = ConsistentRing::new();
    for w in 0..workers {
        ring.add_worker(WorkerAddr::new(0, w));
    }
    let vns = (workers as usize * cachelets * 4).next_power_of_two();
    let mapping = MappingTable::build(&ring, cachelets, vns);
    let routes: HashMap<WorkerAddr, SocketAddr> = (0..workers)
        .map(|w| {
            (
                WorkerAddr::new(0, w),
                format!("{host}:{}", port + w).parse().expect("socket addr"),
            )
        })
        .collect();
    let transport = TcpTransport::new(routes);
    let mut builder = Client::builder(
        Arc::clone(&transport) as Arc<dyn Transport>,
        Arc::new(StaticMapping(mapping)) as Arc<dyn CoordinatorLink>,
    )
    .tenant(TenantId(tenant));
    if front_entries > 0 {
        builder = builder.front_cache(FrontCacheConfig::new().max_entries(front_entries));
    }
    let mut client = builder.build();

    match pos[0].as_str() {
        "get" if pos.len() == 2 => match client.get(pos[1].as_bytes()) {
            Ok(Some(v)) => println!("{}", String::from_utf8_lossy(&v)),
            Ok(None) => {
                eprintln!("(miss)");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        },
        "set" if pos.len() == 3 => {
            match client.set_opts(pos[1].as_bytes(), pos[2].as_bytes(), SetOptions::new()) {
                Ok(_) => println!("STORED"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        "del" if pos.len() == 2 => match client.delete(pos[1].as_bytes()) {
            Ok(true) => println!("DELETED"),
            Ok(false) => println!("NOT_FOUND"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        },
        cmd @ ("stats" | "stats-reset") => {
            let reset = cmd == "stats-reset";
            for w in 0..workers {
                let addr = WorkerAddr::new(0, w);
                match client.worker_stats(addr, reset) {
                    Ok(report) => {
                        println!("# worker {w}");
                        for (name, value) in report.named_dump() {
                            println!("STAT {name} {value}");
                        }
                    }
                    Err(e) => eprintln!("worker {w}: {e}"),
                }
            }
        }
        "tenants" => {
            // Aggregate per-tenant accounting rows across every worker.
            use std::collections::BTreeMap;
            let mut rows: BTreeMap<u16, (u64, u64, u64, u64, u64)> = BTreeMap::new();
            let mut reached = false;
            for w in 0..workers {
                let addr = WorkerAddr::new(0, w);
                match client.worker_stats(addr, false) {
                    Ok(report) => {
                        reached = true;
                        for t in &report.load.tenants {
                            let e = rows.entry(t.tenant.0).or_insert((0, 0, 0, 0, 0));
                            e.0 = e.0.saturating_add(t.resident_bytes);
                            e.1 = e.1.saturating_add(t.budget_bytes);
                            e.2 += t.gets;
                            e.3 += t.hits;
                            e.4 += t.evictions;
                        }
                    }
                    Err(e) => eprintln!("worker {w}: {e}"),
                }
            }
            if !reached {
                std::process::exit(1);
            }
            if rows.is_empty() {
                println!("(single-tenant deployment: no tenants admitted)");
            } else {
                println!(
                    "{:>6} {:>14} {:>14} {:>12} {:>12} {:>10} {:>8}",
                    "tenant", "resident", "budget", "gets", "hits", "evictions", "hit-rate"
                );
                for (t, (resident, budget, gets, hits, evictions)) in rows {
                    let rate = if gets == 0 {
                        1.0
                    } else {
                        hits as f64 / gets as f64
                    };
                    let budget_s = if budget == u64::MAX {
                        "unlimited".to_string()
                    } else {
                        budget.to_string()
                    };
                    println!(
                        "{t:>6} {resident:>14} {budget_s:>14} {gets:>12} {hits:>12} {evictions:>10} {rate:>8.3}"
                    );
                }
            }
        }
        "cluster-status" => {
            // Any worker can answer: servers push the coordinator's view
            // to every worker each balance epoch. Ask worker 0 first and
            // fall back down the list if it is unreachable.
            let mut served = false;
            for w in 0..workers {
                let addr = WorkerAddr::new(0, w);
                match transport.call(addr, Request::ClusterStatus) {
                    Ok(Response::StatsBlob { payload }) => {
                        match serde_json::from_slice::<MembershipView>(&payload) {
                            Ok(view) => {
                                print_cluster_status(&view);
                                print_cost_summary(&view, &mut client, workers, &instance_name);
                            }
                            Err(e) => {
                                eprintln!("error: malformed view payload: {e}");
                                std::process::exit(1);
                            }
                        }
                        served = true;
                        break;
                    }
                    Ok(Response::Fail { message, .. }) => {
                        eprintln!("worker {w}: {message}");
                    }
                    Ok(other) => {
                        eprintln!("worker {w}: unexpected reply {other:?}");
                    }
                    Err(e) => {
                        eprintln!("worker {w}: {e}");
                    }
                }
            }
            if !served {
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}

/// Renders a membership snapshot the way `stats` renders counters: one
/// header line, then one line per node, stable enough to script against.
fn print_cluster_status(view: &MembershipView) {
    println!(
        "epoch {}  members {}  suspects {}",
        view.epoch,
        view.cluster_size(),
        view.suspect_count()
    );
    for n in &view.nodes {
        let mut line = format!(
            "node {:>3}  state {:<8}  workers {}  incarnation {}  heartbeat-age {}ms",
            n.server.0,
            n.state.name(),
            n.workers,
            n.incarnation,
            n.heartbeat_age_ms
        );
        if n.state == NodeState::Suspect {
            if let Some(ms) = n.suspect_remaining_ms {
                line.push_str(&format!("  confirm-in {ms}ms"));
            }
        }
        println!("{line}");
    }
}

/// The Table-1 cost footer under `cluster-status`: what the membership
/// roster costs on the paper's instance catalogue (fleet capacity,
/// hourly/daily dollars, estimated instance-hours), plus the measured
/// utilization of the node this CLI is pointed at. Remote nodes are not
/// reachable over this transport (the CLI maps one host's worker
/// ports), so their utilization rows come from the loadgen's
/// `BENCH_results.json` instead.
fn print_cost_summary(view: &MembershipView, client: &mut Client, workers: u16, instance: &str) {
    let Some(inst) = mbal_cluster::ec2::instance(instance) else {
        eprintln!(
            "unknown instance type {instance}; known: {}",
            mbal_cluster::INSTANCES
                .iter()
                .map(|i| i.name)
                .collect::<Vec<_>>()
                .join(" ")
        );
        return;
    };
    let members = view.cluster_size() as u32;
    println!(
        "cost model {} ({} vcpu, {:.2} GiB, ${:.3}/h): fleet {} member(s), \
         peak capacity ≈ {:.0} KQPS",
        inst.name,
        inst.vcpus,
        inst.memory_gb,
        inst.cost_per_hour,
        members,
        mbal_cluster::ec2::cluster_kqps(inst, members.max(1)),
    );
    println!(
        "  hourly ${:.3}  est. instance-hours/day {:.1}  (${:.2}/day)",
        inst.cost_per_hour * members as f64,
        members as f64 * 24.0,
        inst.cost_per_hour * members as f64 * 24.0,
    );
    let mut load = 0.0;
    let mut capacity = 0.0;
    let mut reached = 0u16;
    for w in 0..workers {
        if let Ok(report) = client.worker_stats(WorkerAddr::new(0, w), false) {
            load += report.load.cachelets.iter().map(|c| c.load).sum::<f64>();
            capacity += report.load.load_capacity;
            reached += 1;
        }
    }
    if reached > 0 && capacity > 0.0 {
        println!(
            "  node 0 (this host): utilization {:.2}  ({:.0} ops/s over {:.0} ops/s \
             across {reached} worker(s))",
            load / capacity,
            load,
            capacity,
        );
    }
}
