//! # mbal-membership
//!
//! Cluster membership for MBal: a coordinator-led heartbeat-and-lease
//! failure detector plus the cluster-epoch state machine that turns the
//! static server set assumed by the paper (§3.4) into an elastic one.
//!
//! The detector is SWIM-flavored but centralized: servers heartbeat the
//! coordinator; a server whose heartbeats stop is moved to `Suspect`
//! after a miss window, and from `Suspect` to `Failed` after a confirm
//! window — *unless* it refutes the suspicion by heartbeating with a
//! **higher incarnation number** (a slow-but-alive node learns it is
//! suspected from its heartbeat reply, bumps its incarnation, and is
//! restored to `Up`). Every membership change that affects routing —
//! a node joining, finishing a drain, or being confirmed failed — bumps
//! the **cluster epoch**, the signal clients and servers use to refetch
//! the two-level mapping table.
//!
//! This crate is pure state machine: all methods take an explicit
//! `now_ms`, so the same code runs under the real clock, the virtual-time
//! cluster simulator, and the chaos harness. The coordinator
//! (`mbal-balancer`) owns an instance and translates its
//! [`MembershipEvent`]s into Phase-3 cachelet migrations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod view;

pub use detector::{ClusterMembership, MembershipConfig, MembershipEvent};
pub use view::{MembershipView, NodeState, NodeView};
