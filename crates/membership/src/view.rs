//! Serializable membership snapshots: what `mbal-cli cluster-status`
//! prints and what servers cache to answer `ClusterStatus` RPCs.

use mbal_core::types::ServerId;
use serde::{Deserialize, Serialize};

/// Lifecycle state of one server in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Admitted; the join rebalance has not finished yet.
    Joining,
    /// Healthy member, heartbeating within its lease.
    Up,
    /// Missed its heartbeat window; awaiting refutation or confirmation.
    Suspect,
    /// Evacuating its cachelets ahead of a planned removal.
    Draining,
    /// Drained and removed cleanly; no longer owns anything.
    Left,
    /// Confirmed dead by the detector; cachelets were reassigned.
    Failed,
}

impl NodeState {
    /// `true` for states counted as cluster members (they may still own
    /// cachelets): everything except [`NodeState::Left`] and
    /// [`NodeState::Failed`].
    pub fn is_member(self) -> bool {
        !matches!(self, NodeState::Left | NodeState::Failed)
    }

    /// Lowercase human-readable name, stable for display and scripts.
    pub fn name(self) -> &'static str {
        match self {
            NodeState::Joining => "joining",
            NodeState::Up => "up",
            NodeState::Suspect => "suspect",
            NodeState::Draining => "draining",
            NodeState::Left => "left",
            NodeState::Failed => "failed",
        }
    }
}

impl std::fmt::Display for NodeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Point-in-time view of one node, as exposed on the stats wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeView {
    /// The server's id.
    pub server: ServerId,
    /// Worker threads the server registered at join time.
    pub workers: u16,
    /// Current lifecycle state.
    pub state: NodeState,
    /// SWIM incarnation number (bumped by the node to refute suspicion).
    pub incarnation: u64,
    /// Milliseconds since the last heartbeat was received.
    pub heartbeat_age_ms: u64,
    /// For a [`NodeState::Suspect`] node: milliseconds left on the
    /// confirm timer before it is declared [`NodeState::Failed`].
    pub suspect_remaining_ms: Option<u64>,
}

/// Snapshot of the whole membership table at one instant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipView {
    /// Cluster epoch: bumps on every routing-affecting transition.
    pub epoch: u64,
    /// The `now_ms` the snapshot was taken at.
    pub now_ms: u64,
    /// Per-node views, sorted by server id.
    pub nodes: Vec<NodeView>,
}

impl MembershipView {
    /// Number of member nodes (states where [`NodeState::is_member`]).
    pub fn cluster_size(&self) -> usize {
        self.nodes.iter().filter(|n| n.state.is_member()).count()
    }

    /// Number of nodes currently under suspicion.
    pub fn suspect_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Suspect)
            .count()
    }

    /// The state of `server`, if known.
    pub fn state_of(&self, server: ServerId) -> Option<NodeState> {
        self.nodes
            .iter()
            .find(|n| n.server == server)
            .map(|n| n.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_counts_and_lookup() {
        let view = MembershipView {
            epoch: 7,
            now_ms: 1_000,
            nodes: vec![
                NodeView {
                    server: ServerId(0),
                    workers: 4,
                    state: NodeState::Up,
                    incarnation: 0,
                    heartbeat_age_ms: 10,
                    suspect_remaining_ms: None,
                },
                NodeView {
                    server: ServerId(1),
                    workers: 4,
                    state: NodeState::Suspect,
                    incarnation: 2,
                    heartbeat_age_ms: 900,
                    suspect_remaining_ms: Some(2_100),
                },
                NodeView {
                    server: ServerId(2),
                    workers: 4,
                    state: NodeState::Failed,
                    incarnation: 0,
                    heartbeat_age_ms: 9_999,
                    suspect_remaining_ms: None,
                },
            ],
        };
        assert_eq!(view.cluster_size(), 2, "failed nodes are not members");
        assert_eq!(view.suspect_count(), 1);
        assert_eq!(view.state_of(ServerId(1)), Some(NodeState::Suspect));
        assert_eq!(view.state_of(ServerId(9)), None);
        assert!(!NodeState::Left.is_member());
        assert_eq!(NodeState::Draining.to_string(), "draining");
    }

    #[test]
    fn view_serde_roundtrip() {
        let view = MembershipView {
            epoch: 3,
            now_ms: 42,
            nodes: vec![NodeView {
                server: ServerId(5),
                workers: 2,
                state: NodeState::Draining,
                incarnation: 1,
                heartbeat_age_ms: 0,
                suspect_remaining_ms: None,
            }],
        };
        let json = serde_json::to_string(&view).expect("serialize");
        let back: MembershipView = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, view);
    }
}
