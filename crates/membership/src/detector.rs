//! The heartbeat-and-lease failure detector and cluster-epoch state
//! machine.
//!
//! One [`ClusterMembership`] lives inside the coordinator. Servers call
//! `heartbeat` on the cadence of their balance tick; the coordinator
//! calls [`ClusterMembership::tick`] to advance suspicion timers and
//! harvests [`MembershipEvent`]s to drive Phase-3 rebalancing.
//!
//! State diagram (epoch-bumping transitions marked `*`):
//!
//! ```text
//!   join*          first heartbeat / rebalance done*
//!  ──────▶ Joining ────────────────────────────────▶ Up ◀─────────┐
//!                                                    │            │ refute*
//!                                   miss window      ▼            │ (incarnation+1)
//!                                                 Suspect ────────┘
//!                                                    │ confirm window
//!                                                    ▼
//!                                                 Failed*
//!
//!   Up/Suspect ──drain*──▶ Draining ──evacuated──▶ Left*
//! ```

use crate::view::{MembershipView, NodeState, NodeView};
use mbal_core::types::ServerId;
use std::collections::BTreeMap;

/// Detector timing knobs (all milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipConfig {
    /// Expected heartbeat cadence; informational (servers heartbeat on
    /// their balance tick) but exposed for operators.
    pub heartbeat_interval_ms: u64,
    /// Silence window after which an `Up` node becomes `Suspect`.
    pub suspect_after_ms: u64,
    /// Dwell time in `Suspect` before the detector confirms `Failed`,
    /// during which the node may refute with a higher incarnation.
    pub confirm_after_ms: u64,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        Self {
            heartbeat_interval_ms: 1_000,
            suspect_after_ms: 3_000,
            confirm_after_ms: 3_000,
        }
    }
}

/// A membership transition the coordinator must react to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipEvent {
    /// A new server was admitted (state `Joining`); the coordinator
    /// should plan a grow rebalance onto it.
    Joined {
        /// The admitted server.
        server: ServerId,
        /// Worker threads it registered.
        workers: u16,
    },
    /// A joining server finished its rebalance and is a full member.
    BecameUp {
        /// The promoted server.
        server: ServerId,
    },
    /// A node missed its heartbeat window.
    Suspected {
        /// The suspected server.
        server: ServerId,
    },
    /// A suspect node proved it is alive with a higher incarnation.
    Refuted {
        /// The refuting server.
        server: ServerId,
        /// Its new incarnation number.
        incarnation: u64,
    },
    /// The confirm window elapsed without refutation; the node is dead.
    /// The coordinator must reassign its cachelets and promote replicas.
    ConfirmedFailed {
        /// The failed server.
        server: ServerId,
    },
    /// A drain was requested; the coordinator should plan an evacuation.
    DrainStarted {
        /// The draining server.
        server: ServerId,
    },
    /// A drained node's evacuation completed; it is out of the cluster.
    Left {
        /// The departed server.
        server: ServerId,
    },
}

impl MembershipEvent {
    /// The server this event concerns.
    pub fn server(&self) -> ServerId {
        match *self {
            MembershipEvent::Joined { server, .. }
            | MembershipEvent::BecameUp { server }
            | MembershipEvent::Suspected { server }
            | MembershipEvent::Refuted { server, .. }
            | MembershipEvent::ConfirmedFailed { server }
            | MembershipEvent::DrainStarted { server }
            | MembershipEvent::Left { server } => server,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    workers: u16,
    incarnation: u64,
    state: NodeState,
    last_heartbeat_ms: u64,
    suspect_since_ms: Option<u64>,
}

/// The coordinator-side membership table.
#[derive(Debug)]
pub struct ClusterMembership {
    cfg: MembershipConfig,
    epoch: u64,
    nodes: BTreeMap<ServerId, Node>,
}

impl ClusterMembership {
    /// Creates an empty table at epoch 1.
    pub fn new(cfg: MembershipConfig) -> Self {
        Self {
            cfg,
            epoch: 1,
            nodes: BTreeMap::new(),
        }
    }

    /// Seeds the initial server set as `Up` members without emitting
    /// per-node events or bumping the epoch: the bootstrap topology *is*
    /// epoch 1.
    pub fn bootstrap(&mut self, servers: &[(ServerId, u16)], now_ms: u64) {
        for &(server, workers) in servers {
            self.nodes.insert(
                server,
                Node {
                    workers,
                    incarnation: 0,
                    state: NodeState::Up,
                    last_heartbeat_ms: now_ms,
                    suspect_since_ms: None,
                },
            );
        }
    }

    /// The current cluster epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The detector configuration.
    pub fn config(&self) -> MembershipConfig {
        self.cfg
    }

    fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Admits `server` as `Joining`. Returns the join event, or `None`
    /// if the server is already a member (idempotent re-join). A server
    /// that previously `Left` or `Failed` may join again with a fresh
    /// incarnation.
    pub fn join(&mut self, server: ServerId, workers: u16, now_ms: u64) -> Option<MembershipEvent> {
        if let Some(n) = self.nodes.get(&server) {
            if n.state.is_member() {
                return None;
            }
        }
        let incarnation = self
            .nodes
            .get(&server)
            .map(|n| n.incarnation + 1)
            .unwrap_or(0);
        self.nodes.insert(
            server,
            Node {
                workers,
                incarnation,
                state: NodeState::Joining,
                last_heartbeat_ms: now_ms,
                suspect_since_ms: None,
            },
        );
        self.bump_epoch();
        Some(MembershipEvent::Joined { server, workers })
    }

    /// Promotes a `Joining` server to `Up` (its grow rebalance is done).
    pub fn mark_up(&mut self, server: ServerId) -> Option<MembershipEvent> {
        let n = self.nodes.get_mut(&server)?;
        if n.state != NodeState::Joining {
            return None;
        }
        n.state = NodeState::Up;
        self.bump_epoch();
        Some(MembershipEvent::BecameUp { server })
    }

    /// Records a heartbeat from `server` carrying its incarnation.
    /// Returns the node's state after processing (so the caller can tell
    /// the server it is suspected and should refute), plus a `Refuted`
    /// event when a higher incarnation rescued a suspect.
    pub fn heartbeat(
        &mut self,
        server: ServerId,
        incarnation: u64,
        now_ms: u64,
    ) -> (Option<NodeState>, Option<MembershipEvent>) {
        let Some(n) = self.nodes.get_mut(&server) else {
            return (None, None);
        };
        if !n.state.is_member() {
            return (Some(n.state), None);
        }
        n.last_heartbeat_ms = n.last_heartbeat_ms.max(now_ms);
        let mut event = None;
        if n.state == NodeState::Suspect {
            if incarnation > n.incarnation {
                // SWIM refutation: alive after all, with proof of
                // liveness newer than the suspicion.
                n.incarnation = incarnation;
                n.state = NodeState::Up;
                n.suspect_since_ms = None;
                event = Some(MembershipEvent::Refuted {
                    server,
                    incarnation,
                });
                self.bump_epoch();
            }
        } else {
            n.incarnation = n.incarnation.max(incarnation);
        }
        (self.nodes.get(&server).map(|n| n.state), event)
    }

    /// Requests a graceful drain of `server` (planned removal). Valid
    /// from `Up`, `Suspect` (we would rather evacuate than wait for the
    /// confirm timer), or `Joining`.
    pub fn drain(&mut self, server: ServerId, _now_ms: u64) -> Option<MembershipEvent> {
        let n = self.nodes.get_mut(&server)?;
        if !matches!(
            n.state,
            NodeState::Up | NodeState::Suspect | NodeState::Joining
        ) {
            return None;
        }
        n.state = NodeState::Draining;
        n.suspect_since_ms = None;
        self.bump_epoch();
        Some(MembershipEvent::DrainStarted { server })
    }

    /// Marks a `Draining` server as cleanly departed (its evacuation
    /// finished).
    pub fn mark_left(&mut self, server: ServerId) -> Option<MembershipEvent> {
        let n = self.nodes.get_mut(&server)?;
        if n.state != NodeState::Draining {
            return None;
        }
        n.state = NodeState::Left;
        self.bump_epoch();
        Some(MembershipEvent::Left { server })
    }

    /// Advances suspicion/confirmation timers to `now_ms` and returns the
    /// transitions that fired, in server-id order.
    ///
    /// `Up` and `Draining` nodes whose last heartbeat is older than the
    /// suspect window become `Suspect`; `Suspect` nodes whose dwell
    /// exceeds the confirm window become `Failed`.
    pub fn tick(&mut self, now_ms: u64) -> Vec<MembershipEvent> {
        let mut events = Vec::new();
        let mut failed = false;
        for (&server, n) in self.nodes.iter_mut() {
            match n.state {
                NodeState::Up | NodeState::Draining | NodeState::Joining => {
                    if now_ms.saturating_sub(n.last_heartbeat_ms) > self.cfg.suspect_after_ms {
                        n.state = NodeState::Suspect;
                        n.suspect_since_ms = Some(now_ms);
                        events.push(MembershipEvent::Suspected { server });
                    }
                }
                NodeState::Suspect => {
                    let since = n.suspect_since_ms.unwrap_or(now_ms);
                    if now_ms.saturating_sub(since) >= self.cfg.confirm_after_ms {
                        n.state = NodeState::Failed;
                        n.suspect_since_ms = None;
                        events.push(MembershipEvent::ConfirmedFailed { server });
                        failed = true;
                    }
                }
                NodeState::Left | NodeState::Failed => {}
            }
        }
        if failed {
            self.bump_epoch();
        }
        events
    }

    /// The state of `server`, if known.
    pub fn state_of(&self, server: ServerId) -> Option<NodeState> {
        self.nodes.get(&server).map(|n| n.state)
    }

    /// The recorded incarnation of `server`, if known.
    pub fn incarnation_of(&self, server: ServerId) -> Option<u64> {
        self.nodes.get(&server).map(|n| n.incarnation)
    }

    /// Number of member nodes.
    pub fn cluster_size(&self) -> usize {
        self.nodes.values().filter(|n| n.state.is_member()).count()
    }

    /// Number of nodes currently suspected.
    pub fn suspect_count(&self) -> usize {
        self.nodes
            .values()
            .filter(|n| n.state == NodeState::Suspect)
            .count()
    }

    /// Serializable snapshot at `now_ms`.
    pub fn view(&self, now_ms: u64) -> MembershipView {
        MembershipView {
            epoch: self.epoch,
            now_ms,
            nodes: self
                .nodes
                .iter()
                .map(|(&server, n)| NodeView {
                    server,
                    workers: n.workers,
                    state: n.state,
                    incarnation: n.incarnation,
                    heartbeat_age_ms: now_ms.saturating_sub(n.last_heartbeat_ms),
                    suspect_remaining_ms: n.suspect_since_ms.map(|s| {
                        self.cfg
                            .confirm_after_ms
                            .saturating_sub(now_ms.saturating_sub(s))
                    }),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MembershipConfig {
        MembershipConfig {
            heartbeat_interval_ms: 100,
            suspect_after_ms: 300,
            confirm_after_ms: 500,
        }
    }

    fn two_node_cluster() -> ClusterMembership {
        let mut m = ClusterMembership::new(cfg());
        m.bootstrap(&[(ServerId(0), 2), (ServerId(1), 2)], 0);
        m
    }

    #[test]
    fn bootstrap_does_not_burn_epochs() {
        let m = two_node_cluster();
        assert_eq!(m.epoch(), 1);
        assert_eq!(m.cluster_size(), 2);
        assert_eq!(m.state_of(ServerId(0)), Some(NodeState::Up));
    }

    #[test]
    fn join_then_mark_up_bumps_epoch_twice() {
        let mut m = two_node_cluster();
        let e = m.join(ServerId(2), 4, 10).expect("admitted");
        assert_eq!(
            e,
            MembershipEvent::Joined {
                server: ServerId(2),
                workers: 4
            }
        );
        assert_eq!(m.epoch(), 2);
        assert_eq!(m.state_of(ServerId(2)), Some(NodeState::Joining));
        assert!(
            m.join(ServerId(2), 4, 11).is_none(),
            "re-join is idempotent"
        );
        assert_eq!(
            m.mark_up(ServerId(2)),
            Some(MembershipEvent::BecameUp {
                server: ServerId(2)
            })
        );
        assert_eq!(m.epoch(), 3);
        assert!(m.mark_up(ServerId(2)).is_none(), "already up");
        assert_eq!(m.cluster_size(), 3);
    }

    #[test]
    fn silence_suspects_then_confirms_failure() {
        let mut m = two_node_cluster();
        // Node 0 keeps heartbeating, node 1 goes silent.
        let (_, _) = m.heartbeat(ServerId(0), 0, 250);
        let events = m.tick(350);
        assert_eq!(
            events,
            vec![MembershipEvent::Suspected {
                server: ServerId(1)
            }]
        );
        assert_eq!(m.epoch(), 1, "suspicion alone does not bump the epoch");
        assert_eq!(m.suspect_count(), 1);
        // Not confirmed before the dwell elapses (node 0 keeps beating).
        let (_, _) = m.heartbeat(ServerId(0), 0, 600);
        assert!(m.tick(849).is_empty());
        let events = m.tick(850);
        assert_eq!(
            events,
            vec![MembershipEvent::ConfirmedFailed {
                server: ServerId(1)
            }]
        );
        assert_eq!(m.epoch(), 2);
        assert_eq!(m.cluster_size(), 1);
        // A dead node's late heartbeat does not resurrect it.
        let (state, event) = m.heartbeat(ServerId(1), 5, 900);
        assert_eq!(state, Some(NodeState::Failed));
        assert!(event.is_none());
    }

    #[test]
    fn higher_incarnation_refutes_suspicion() {
        let mut m = two_node_cluster();
        m.tick(400); // both suspected (no heartbeats since 0)
        assert_eq!(m.suspect_count(), 2);
        // Same incarnation does not refute — the suspicion stands.
        let (state, event) = m.heartbeat(ServerId(0), 0, 450);
        assert_eq!(state, Some(NodeState::Suspect));
        assert!(event.is_none());
        // The node sees it is suspected, bumps its incarnation, refutes.
        let (state, event) = m.heartbeat(ServerId(0), 1, 460);
        assert_eq!(state, Some(NodeState::Up));
        assert_eq!(
            event,
            Some(MembershipEvent::Refuted {
                server: ServerId(0),
                incarnation: 1
            })
        );
        assert_eq!(m.epoch(), 2);
        // Node 1 never refutes and is confirmed dead.
        let (_, _) = m.heartbeat(ServerId(0), 1, 700);
        let events = m.tick(900);
        assert_eq!(
            events,
            vec![MembershipEvent::ConfirmedFailed {
                server: ServerId(1)
            }]
        );
    }

    #[test]
    fn drain_then_left_leaves_cleanly() {
        let mut m = two_node_cluster();
        assert_eq!(
            m.drain(ServerId(1), 10),
            Some(MembershipEvent::DrainStarted {
                server: ServerId(1)
            })
        );
        assert_eq!(m.state_of(ServerId(1)), Some(NodeState::Draining));
        assert_eq!(m.cluster_size(), 2, "draining nodes still count");
        assert!(m.drain(ServerId(1), 11).is_none(), "drain is idempotent");
        assert_eq!(
            m.mark_left(ServerId(1)),
            Some(MembershipEvent::Left {
                server: ServerId(1)
            })
        );
        assert_eq!(m.cluster_size(), 1);
        assert_eq!(m.epoch(), 3, "drain and left each bump the epoch");
        assert!(m.mark_left(ServerId(1)).is_none());
    }

    #[test]
    fn failed_node_can_rejoin_with_fresh_incarnation() {
        let mut m = two_node_cluster();
        m.tick(400);
        m.tick(900);
        assert_eq!(m.state_of(ServerId(1)), Some(NodeState::Failed));
        let inc_before = m.incarnation_of(ServerId(1)).unwrap();
        let e = m.join(ServerId(1), 2, 1_000).expect("rejoin allowed");
        assert_eq!(e.server(), ServerId(1));
        assert_eq!(m.state_of(ServerId(1)), Some(NodeState::Joining));
        assert!(m.incarnation_of(ServerId(1)).unwrap() > inc_before);
    }

    #[test]
    fn view_reports_timers() {
        let mut m = two_node_cluster();
        m.heartbeat(ServerId(0), 0, 300);
        m.tick(450); // node 1 suspected at 450
        let v = m.view(650);
        assert_eq!(v.epoch, m.epoch());
        assert_eq!(v.nodes.len(), 2);
        let n0 = &v.nodes[0];
        assert_eq!(n0.server, ServerId(0));
        assert_eq!(n0.heartbeat_age_ms, 350);
        assert_eq!(n0.suspect_remaining_ms, None);
        let n1 = &v.nodes[1];
        assert_eq!(n1.state, NodeState::Suspect);
        assert_eq!(
            n1.suspect_remaining_ms,
            Some(300),
            "500ms confirm window, 200ms elapsed"
        );
        assert_eq!(v.cluster_size(), 2);
        assert_eq!(v.suspect_count(), 1);
    }

    #[test]
    fn epochs_are_monotonic_across_a_full_lifecycle() {
        let mut m = two_node_cluster();
        let mut last = m.epoch();
        let mut check = |m: &ClusterMembership| {
            assert!(m.epoch() >= last);
            last = m.epoch();
        };
        let _ = m.join(ServerId(2), 2, 0);
        check(&m);
        let _ = m.mark_up(ServerId(2));
        check(&m);
        let _ = m.heartbeat(ServerId(2), 0, 200);
        check(&m);
        let _ = m.drain(ServerId(0), 250);
        check(&m);
        let _ = m.mark_left(ServerId(0));
        check(&m);
        let _ = m.tick(10_000);
        check(&m);
    }
}
