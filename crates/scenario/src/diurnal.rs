//! Diurnal load curves: a piecewise-linear rate multiplier over the
//! fractional progress of a run.
//!
//! The load generator divides its base inter-arrival gap by the
//! multiplier, so `1.0` is the configured rate, `0.35` is the overnight
//! trough, and the linear segments between control points are the
//! morning/evening ramps an autoscaler has to chase.

use serde::{Deserialize, Serialize};

/// A piecewise-linear curve of `(time_fraction, multiplier)` control
/// points over `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalCurve {
    points: Vec<(f64, f64)>,
}

/// Multipliers are clamped here so a curve can never stall the
/// schedule (a zero multiplier would push every later op to infinity).
const MIN_MULT: f64 = 0.05;
const MAX_MULT: f64 = 20.0;

impl DiurnalCurve {
    /// Builds a curve from control points; they are sorted by time and
    /// clamped to sane ranges. An empty list yields the flat curve.
    pub fn new(mut points: Vec<(f64, f64)>) -> Self {
        if points.is_empty() {
            points.push((0.0, 1.0));
        }
        for p in &mut points {
            p.0 = p.0.clamp(0.0, 1.0);
            p.1 = p.1.clamp(MIN_MULT, MAX_MULT);
        }
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        Self { points }
    }

    /// The constant-rate curve (multiplier 1 everywhere).
    pub fn flat() -> Self {
        Self::new(vec![(0.0, 1.0)])
    }

    /// The canonical two-phase day/night shape used by the diurnal
    /// experiments: a trough at `low`, a ramp up to the full-rate peak
    /// through the middle of the run, and a ramp back down.
    pub fn two_phase(low: f64) -> Self {
        Self::new(vec![
            (0.0, low),
            (0.2, low),
            (0.35, 1.0),
            (0.6, 1.0),
            (0.8, low),
            (1.0, low),
        ])
    }

    /// The multiplier at run fraction `frac` (clamped to `[0, 1]`),
    /// linearly interpolated between control points.
    pub fn multiplier_at(&self, frac: f64) -> f64 {
        let f = frac.clamp(0.0, 1.0);
        let pts = &self.points;
        if f <= pts[0].0 {
            return pts[0].1;
        }
        for w in pts.windows(2) {
            let (t0, m0) = w[0];
            let (t1, m1) = w[1];
            if f <= t1 {
                if t1 - t0 <= f64::EPSILON {
                    return m1;
                }
                return m0 + (m1 - m0) * (f - t0) / (t1 - t0);
            }
        }
        pts.last().expect("non-empty").1
    }

    /// Mean multiplier over the whole run (trapezoidal integral) —
    /// what the achieved rate works out to relative to the base rate.
    pub fn mean(&self) -> f64 {
        let pts = &self.points;
        let mut area = pts[0].0 * pts[0].1;
        for w in pts.windows(2) {
            area += (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0;
        }
        let last = pts.last().expect("non-empty");
        area += (1.0 - last.0) * last.1;
        area
    }

    /// Parses `"t:mult,t:mult,..."` (e.g. `"0:0.35,0.4:1,0.8:0.35"`).
    pub fn parse(s: &str) -> Option<Self> {
        let mut pts = Vec::new();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (t, m) = part.split_once(':')?;
            pts.push((t.trim().parse().ok()?, m.trim().parse().ok()?));
        }
        if pts.is_empty() {
            return None;
        }
        Some(Self::new(pts))
    }

    /// Renders the curve back into the [`Self::parse`] format.
    pub fn label(&self) -> String {
        self.points
            .iter()
            .map(|(t, m)| format!("{t}:{m}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// The control points (diagnostics, tests).
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_curve_is_one_everywhere() {
        let c = DiurnalCurve::flat();
        for f in [0.0, 0.3, 0.99, 1.0, 2.0] {
            assert_eq!(c.multiplier_at(f), 1.0);
        }
        assert!((c.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_phase_ramps_linearly() {
        let c = DiurnalCurve::two_phase(0.4);
        assert_eq!(c.multiplier_at(0.0), 0.4);
        assert_eq!(c.multiplier_at(0.5), 1.0);
        assert_eq!(c.multiplier_at(1.0), 0.4);
        // Midpoint of the 0.2 -> 0.35 ramp.
        let mid = c.multiplier_at(0.275);
        assert!(
            (mid - 0.7).abs() < 1e-9,
            "ramp must interpolate linearly: {mid}"
        );
        let mean = c.mean();
        assert!(mean > 0.4 && mean < 1.0, "mean {mean}");
    }

    #[test]
    fn parse_roundtrips_and_rejects_garbage() {
        let c = DiurnalCurve::parse("0:0.35,0.4:1,0.8:0.35").expect("parses");
        assert_eq!(c.points().len(), 3);
        assert_eq!(DiurnalCurve::parse(&c.label()), Some(c));
        assert!(DiurnalCurve::parse("").is_none());
        assert!(DiurnalCurve::parse("0.5").is_none());
        assert!(DiurnalCurve::parse("a:b").is_none());
    }

    #[test]
    fn multipliers_are_clamped_against_stalls() {
        let c = DiurnalCurve::new(vec![(0.0, 0.0), (1.0, 1e9)]);
        assert!(c.multiplier_at(0.0) >= 0.05);
        assert!(c.multiplier_at(1.0) <= 20.0);
    }

    #[test]
    fn unsorted_points_are_sorted() {
        let c = DiurnalCurve::new(vec![(0.8, 0.5), (0.2, 2.0)]);
        assert_eq!(c.multiplier_at(0.0), 2.0);
        assert_eq!(c.multiplier_at(1.0), 0.5);
    }
}
