//! The reactive autoscaler: fleet utilization in, join/drain decisions
//! out.
//!
//! The controller is deliberately boring — watermarks with consecutive
//! -epoch hysteresis and a post-action cooldown — because it sits in
//! front of the membership machinery, where a flapping decision costs a
//! real grow/evacuate rebalance each way. The invariants the tests pin:
//!
//! 1. a single noisy epoch never scales (hysteresis),
//! 2. after an action, nothing fires until the cooldown expires (the
//!    rebalance gets to finish and the signal to settle),
//! 3. the fleet never leaves `[min_nodes, max_nodes]`.

use mbal_telemetry::WorkerSnapshot;
use serde::{Deserialize, Serialize};

/// What the autoscaler wants done this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// No change.
    Hold,
    /// Join one node (the caller picks which spare).
    ScaleOut,
    /// Drain one node (the caller picks the victim).
    ScaleIn,
}

/// Autoscaler tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscalerConfig {
    /// Fleet utilization above which the controller wants to grow.
    pub high_watermark: f64,
    /// Fleet utilization below which the controller wants to shrink.
    pub low_watermark: f64,
    /// Consecutive epochs above the high watermark before a join fires.
    pub up_epochs: u32,
    /// Consecutive epochs below the low watermark before a drain fires.
    pub down_epochs: u32,
    /// Epochs to hold after any action before another may fire.
    pub cooldown_epochs: u32,
    /// Smallest fleet the controller will drain down to.
    pub min_nodes: usize,
    /// Largest fleet the controller will grow to.
    pub max_nodes: usize,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        Self {
            high_watermark: 0.7,
            low_watermark: 0.3,
            up_epochs: 2,
            down_epochs: 4,
            cooldown_epochs: 4,
            min_nodes: 1,
            max_nodes: 64,
        }
    }
}

/// The reactive controller. Feed it one utilization sample per epoch
/// via [`Autoscaler::observe`].
#[derive(Debug, Clone)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    high_streak: u32,
    low_streak: u32,
    cooldown: u32,
    joins: u64,
    drains: u64,
}

impl Autoscaler {
    /// Creates a controller with the given tuning.
    pub fn new(cfg: AutoscalerConfig) -> Self {
        Self {
            cfg,
            high_streak: 0,
            low_streak: 0,
            cooldown: 0,
            joins: 0,
            drains: 0,
        }
    }

    /// The tuning in effect.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.cfg
    }

    /// Joins decided so far.
    pub fn joins(&self) -> u64 {
        self.joins
    }

    /// Drains decided so far.
    pub fn drains(&self) -> u64 {
        self.drains
    }

    /// Consumes one epoch's fleet signal: `members` live nodes at
    /// aggregate `utilization` (load / capacity over the whole fleet).
    /// Returns what to do; a non-`Hold` answer starts the cooldown and
    /// assumes the caller acts on it.
    pub fn observe(&mut self, members: usize, utilization: f64) -> ScaleDecision {
        if self.cooldown > 0 {
            // While cooling down the signal reflects a half-finished
            // rebalance; it must not accumulate toward the next action.
            self.cooldown -= 1;
            self.high_streak = 0;
            self.low_streak = 0;
            return ScaleDecision::Hold;
        }
        if utilization > self.cfg.high_watermark {
            self.high_streak += 1;
            self.low_streak = 0;
        } else if utilization < self.cfg.low_watermark {
            self.low_streak += 1;
            self.high_streak = 0;
        } else {
            self.high_streak = 0;
            self.low_streak = 0;
        }
        if self.high_streak >= self.cfg.up_epochs && members < self.cfg.max_nodes {
            self.high_streak = 0;
            self.cooldown = self.cfg.cooldown_epochs;
            self.joins += 1;
            return ScaleDecision::ScaleOut;
        }
        if self.low_streak >= self.cfg.down_epochs && members > self.cfg.min_nodes {
            self.low_streak = 0;
            self.cooldown = self.cfg.cooldown_epochs;
            self.drains += 1;
            return ScaleDecision::ScaleIn;
        }
        ScaleDecision::Hold
    }
}

/// Aggregate fleet utilization from one epoch's worker snapshots:
/// total load over total capacity, `0` for an empty or capacity-less
/// fleet.
pub fn fleet_utilization(snapshots: &[WorkerSnapshot]) -> f64 {
    let capacity: f64 = snapshots.iter().map(|s| s.load_capacity).sum();
    if capacity <= 0.0 {
        return 0.0;
    }
    snapshots.iter().map(|s| s.total_load()).sum::<f64>() / capacity
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbal_core::stats::CacheletLoad;
    use mbal_core::types::{ServerId, WorkerAddr, WorkerId};

    fn cfg() -> AutoscalerConfig {
        AutoscalerConfig {
            high_watermark: 0.7,
            low_watermark: 0.3,
            up_epochs: 2,
            down_epochs: 3,
            cooldown_epochs: 3,
            min_nodes: 2,
            max_nodes: 4,
        }
    }

    #[test]
    fn one_noisy_epoch_never_scales() {
        let mut a = Autoscaler::new(cfg());
        assert_eq!(a.observe(2, 0.95), ScaleDecision::Hold);
        assert_eq!(a.observe(2, 0.5), ScaleDecision::Hold);
        assert_eq!(a.observe(2, 0.95), ScaleDecision::Hold);
        assert_eq!(a.observe(2, 0.5), ScaleDecision::Hold);
        assert_eq!(a.joins(), 0);
    }

    #[test]
    fn sustained_overload_joins_then_cools_down() {
        let mut a = Autoscaler::new(cfg());
        assert_eq!(a.observe(2, 0.9), ScaleDecision::Hold);
        assert_eq!(a.observe(2, 0.9), ScaleDecision::ScaleOut);
        // Cooldown: even a screaming signal holds for 3 epochs.
        for _ in 0..3 {
            assert_eq!(a.observe(3, 0.99), ScaleDecision::Hold);
        }
        // And the streak restarted from zero after the cooldown.
        assert_eq!(a.observe(3, 0.9), ScaleDecision::Hold);
        assert_eq!(a.observe(3, 0.9), ScaleDecision::ScaleOut);
        assert_eq!(a.joins(), 2);
    }

    #[test]
    fn sustained_idle_drains_with_longer_hysteresis() {
        let mut a = Autoscaler::new(cfg());
        assert_eq!(a.observe(3, 0.1), ScaleDecision::Hold);
        assert_eq!(a.observe(3, 0.1), ScaleDecision::Hold);
        assert_eq!(a.observe(3, 0.1), ScaleDecision::ScaleIn);
        assert_eq!(a.drains(), 1);
    }

    #[test]
    fn fleet_bounds_are_hard() {
        let mut a = Autoscaler::new(cfg());
        for _ in 0..10 {
            assert_eq!(a.observe(4, 0.99), ScaleDecision::Hold, "at max_nodes");
        }
        let mut a = Autoscaler::new(cfg());
        for _ in 0..10 {
            assert_eq!(a.observe(2, 0.01), ScaleDecision::Hold, "at min_nodes");
        }
    }

    #[test]
    fn mid_band_resets_streaks() {
        let mut a = Autoscaler::new(cfg());
        assert_eq!(a.observe(2, 0.9), ScaleDecision::Hold);
        assert_eq!(a.observe(2, 0.5), ScaleDecision::Hold);
        assert_eq!(a.observe(2, 0.9), ScaleDecision::Hold);
        assert_eq!(a.observe(2, 0.9), ScaleDecision::ScaleOut);
    }

    fn snap(server: u16, load: f64, capacity: f64) -> WorkerSnapshot {
        WorkerSnapshot {
            addr: WorkerAddr {
                server: ServerId(server),
                worker: WorkerId(0),
            },
            cachelets: vec![CacheletLoad {
                cachelet: mbal_core::types::CacheletId(server as u32),
                load,
                mem_bytes: 0,
                read_ratio: 1.0,
            }],
            load_capacity: capacity,
            mem_capacity: 0,
            metrics: Default::default(),
            tenants: Vec::new(),
        }
    }

    #[test]
    fn utilization_is_load_over_capacity() {
        let snaps = [snap(0, 700.0, 1_000.0), snap(1, 100.0, 1_000.0)];
        let u = fleet_utilization(&snaps);
        assert!((u - 0.4).abs() < 1e-9, "utilization {u}");
        assert_eq!(fleet_utilization(&[]), 0.0);
        assert_eq!(fleet_utilization(&[snap(0, 5.0, 0.0)]), 0.0);
    }
}
