//! # mbal-scenario
//!
//! Trace-style workload scenarios and the elasticity machinery that
//! turns them into end-to-end experiments:
//!
//! - [`ScenarioPack`]: three seeded traffic generators modelled on real
//!   cache deployments — `video-cdn` (large long-tail objects, long
//!   TTLs), `social-feed` (hot rotating head, small values, heavy
//!   MultiGET), `session-store` (write-heavy with per-key TTL renewal
//!   via `Touch`). Each wraps [`mbal_workload::WorkloadGen`] and adds
//!   per-op value-size, TTL and op-kind draws from an independent
//!   seeded stream, so a pack's schedule is digest-stable per seed.
//! - [`DiurnalCurve`]: a piecewise-linear load multiplier over the run
//!   (ramps between phases), used by the load generator to stretch or
//!   compress inter-arrival gaps — the "day/night" shape an autoscaler
//!   must follow.
//! - [`Autoscaler`]: a reactive controller that consumes fleet
//!   utilization derived from epoch [`mbal_telemetry::WorkerSnapshot`]
//!   loads and decides join/drain actions with watermarks, consecutive
//!   -epoch hysteresis, and post-action cooldowns, so a noisy signal
//!   cannot flap the membership machinery.
//!
//! The crate is deliberately mechanism-free: it decides *what* the
//! traffic looks like and *when* to scale; the bench harness and the
//! cluster sim own the wiring to the real membership/migration path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autoscale;
pub mod diurnal;
pub mod packs;

pub use autoscale::{fleet_utilization, Autoscaler, AutoscalerConfig, ScaleDecision};
pub use diurnal::DiurnalCurve;
pub use packs::{origin_value, ScenarioGen, ScenarioPack, ScenarioSpec};
