//! The trace-style scenario packs.
//!
//! Each pack is a [`ScenarioSpec`]: a base [`WorkloadSpec`] (records,
//! popularity, read mix) plus the distributions YCSB does not model —
//! weighted value sizes, weighted TTLs, a `Touch`-renewal fraction, a
//! MultiGET burst cadence, and a rotating hot head. A [`ScenarioGen`]
//! draws all of the extras from a second seeded RNG stream, so the base
//! key/op stream stays exactly [`mbal_workload::WorkloadGen`]'s and the
//! whole pack replays bit-identically for a seed.

use mbal_workload::{Op, OpKind, Popularity, WorkloadGen, WorkloadSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A named trace-style traffic scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioPack {
    /// Video CDN: 98% GET over a long-tail (θ=0.7) catalogue of large
    /// objects (1 KiB – 64 KiB, weighted toward small), TTLs of
    /// minutes. Misses are expensive — the pack that makes the origin
    /// model and delayed hits matter.
    VideoCdn,
    /// Social feed: small values, a hot zipfian head that rotates
    /// through the key space during the run, and every few reads a
    /// MultiGET burst (a feed-page fetch).
    SocialFeed,
    /// Session store: write-heavy (55% mutation), short weighted TTLs,
    /// and a fraction of reads replaced by `Touch` renewals that push a
    /// live session's expiry out instead of re-writing it.
    SessionStore,
}

impl ScenarioPack {
    /// All packs, in label order.
    pub const ALL: [ScenarioPack; 3] = [
        ScenarioPack::VideoCdn,
        ScenarioPack::SocialFeed,
        ScenarioPack::SessionStore,
    ];

    /// The CLI/report label.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioPack::VideoCdn => "video-cdn",
            ScenarioPack::SocialFeed => "social-feed",
            ScenarioPack::SessionStore => "session-store",
        }
    }

    /// Parses a label back into a pack.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.label() == s)
    }

    /// The pack's full specification over `records` distinct keys.
    pub fn spec(&self, records: u64) -> ScenarioSpec {
        match self {
            ScenarioPack::VideoCdn => ScenarioSpec {
                base: WorkloadSpec {
                    records,
                    read_fraction: 0.98,
                    popularity: Popularity::Zipfian { theta: 0.7 },
                    key_len: 24,
                    value_len: 4096,
                    ttl_range_ms: (0, 0),
                },
                value_sizes: &[(1024, 50), (4096, 30), (16384, 18), (65536, 2)],
                ttl_choices_ms: &[(300_000, 2), (1_800_000, 1)],
                touch_fraction: 0.0,
                touch_ttl_ms: 0,
                multiget_every: 0,
                multiget_batch: 1,
                rotate_every: 0,
                rotate_step: 0,
            },
            ScenarioPack::SocialFeed => ScenarioSpec {
                base: WorkloadSpec {
                    records,
                    read_fraction: 0.9,
                    popularity: Popularity::Zipfian { theta: 0.99 },
                    key_len: 24,
                    value_len: 256,
                    ttl_range_ms: (0, 0),
                },
                value_sizes: &[(64, 50), (256, 35), (1024, 15)],
                ttl_choices_ms: &[(30_000, 1), (120_000, 1)],
                touch_fraction: 0.0,
                touch_ttl_ms: 0,
                multiget_every: 4,
                multiget_batch: 8,
                rotate_every: 20_000,
                rotate_step: records / 6,
            },
            ScenarioPack::SessionStore => ScenarioSpec {
                base: WorkloadSpec {
                    records,
                    read_fraction: 0.45,
                    popularity: Popularity::Zipfian { theta: 0.99 },
                    key_len: 24,
                    value_len: 512,
                    ttl_range_ms: (0, 0),
                },
                value_sizes: &[(128, 40), (512, 40), (2048, 20)],
                ttl_choices_ms: &[(2_000, 1), (5_000, 2), (10_000, 1)],
                touch_fraction: 0.3,
                touch_ttl_ms: 8_000,
                multiget_every: 0,
                multiget_batch: 1,
                rotate_every: 0,
                rotate_step: 0,
            },
        }
    }
}

/// The full parameterization of one scenario pack.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Key space, popularity and read mix (the YCSB-shaped core).
    /// `base.value_len` is the load-phase size, roughly the size mean.
    pub base: WorkloadSpec,
    /// Weighted `(bytes, weight)` choices for SET value sizes.
    pub value_sizes: &'static [(usize, u32)],
    /// Weighted `(ttl_ms, weight)` choices applied to every SET.
    pub ttl_choices_ms: &'static [(u64, u32)],
    /// Fraction of reads converted into `Touch` TTL renewals.
    pub touch_fraction: f64,
    /// The TTL a `Touch` renewal installs.
    pub touch_ttl_ms: u64,
    /// Every `multiget_every`-th read becomes a MultiGET burst
    /// (0 = never).
    pub multiget_every: u64,
    /// Keys per MultiGET burst.
    pub multiget_batch: usize,
    /// Rotate the hot head every `rotate_every` generated ops
    /// (0 = never).
    pub rotate_every: u64,
    /// Key-index offset added per rotation.
    pub rotate_step: u64,
}

/// A deterministic op stream for a [`ScenarioSpec`].
///
/// [`ScenarioGen::next_burst`] returns one *or more* ops: a MultiGET
/// burst comes back as a run of GETs the consumer should issue at the
/// same instant (the loadgen assigns the whole burst one intended start
/// time, and the client coalesces consecutive same-tick GETs into a
/// real MultiGET).
pub struct ScenarioGen {
    spec: ScenarioSpec,
    base: WorkloadGen,
    extra: SmallRng,
    ops: u64,
    reads: u64,
    offset: u64,
}

impl ScenarioGen {
    /// Creates a generator for `spec` with the given `seed`.
    pub fn new(spec: ScenarioSpec, seed: u64) -> Self {
        let base = WorkloadGen::new(spec.base.clone(), seed);
        Self {
            spec,
            base,
            // An independent stream for the scenario-only draws, so the
            // base key/op stream is exactly the YCSB generator's.
            extra: SmallRng::seed_from_u64(seed ^ 0x5CE7_A210_D15E_A5E5),
            ops: 0,
            reads: 0,
            offset: 0,
        }
    }

    /// The underlying specification.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Ops generated so far (burst members each count once).
    pub fn generated(&self) -> u64 {
        self.ops
    }

    /// The load phase of the base spec (pre-populates every record at
    /// the mean value size).
    pub fn load_phase(&self) -> impl Iterator<Item = (Vec<u8>, Vec<u8>)> + '_ {
        self.base.load_phase()
    }

    fn weighted<T: Copy>(rng: &mut SmallRng, choices: &[(T, u32)]) -> T {
        let total: u32 = choices.iter().map(|(_, w)| w).sum();
        let mut draw = rng.gen_range(0..total.max(1));
        for &(v, w) in choices {
            if draw < w {
                return v;
            }
            draw -= w;
        }
        choices.last().expect("non-empty choices").0
    }

    /// A deterministic value of `len` bytes derived from the key, so a
    /// re-set of the same key at the same drawn size replays the same
    /// bytes.
    fn sized_value(key: &[u8], len: usize) -> Vec<u8> {
        origin_value(key, len)
    }

    fn next_single(&mut self) -> Op {
        self.ops += 1;
        if self.spec.rotate_every > 0 && self.ops.is_multiple_of(self.spec.rotate_every) {
            self.offset = self.offset.wrapping_add(self.spec.rotate_step);
            self.base.set_index_offset(self.offset);
        }
        let mut op = self.base.next_op();
        match op.kind {
            OpKind::Set => {
                let len = Self::weighted(&mut self.extra, self.spec.value_sizes);
                op.value = Self::sized_value(&op.key, len);
                op.ttl_ms = Self::weighted(&mut self.extra, self.spec.ttl_choices_ms);
            }
            OpKind::Get => {
                if self.spec.touch_fraction > 0.0
                    && self.extra.gen::<f64>() < self.spec.touch_fraction
                {
                    op.kind = OpKind::Touch;
                    op.ttl_ms = self.spec.touch_ttl_ms;
                }
            }
            OpKind::Delete | OpKind::Touch => {}
        }
        op
    }

    /// Generates the next op, or a MultiGET burst of ops meant to be
    /// issued together.
    pub fn next_burst(&mut self) -> Vec<Op> {
        let op = self.next_single();
        if op.kind != OpKind::Get || self.spec.multiget_every == 0 {
            return vec![op];
        }
        self.reads += 1;
        if !self.reads.is_multiple_of(self.spec.multiget_every) {
            return vec![op];
        }
        let mut burst = vec![op];
        while burst.len() < self.spec.multiget_batch {
            // Draw follow-up keys from the base stream; whatever op kind
            // came out, the page fetch reads the key.
            let mut extra = self.next_single();
            extra.kind = OpKind::Get;
            extra.value = Vec::new();
            extra.ttl_ms = 0;
            burst.push(extra);
        }
        burst
    }
}

/// A deterministic pseudo-value of `len` bytes derived from `key` (FNV
/// keyed) — the bytes [`ScenarioGen`] stores on SET, and the bytes an
/// origin/backing-store model refills after a simulated miss fetch, so
/// both paths replay identically across runs.
pub fn origin_value(key: &[u8], len: usize) -> Vec<u8> {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let seed = h.to_le_bytes();
    (0..len).map(|i| seed[i % 8] ^ (i as u8)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(pack: ScenarioPack, seed: u64, n: usize) -> Vec<Op> {
        let mut g = ScenarioGen::new(pack.spec(10_000), seed);
        let mut out = Vec::new();
        while out.len() < n {
            out.extend(g.next_burst());
        }
        out
    }

    #[test]
    fn packs_replay_bit_identically_per_seed() {
        for pack in ScenarioPack::ALL {
            assert_eq!(drain(pack, 42, 5_000), drain(pack, 42, 5_000));
            assert_ne!(
                drain(pack, 42, 5_000),
                drain(pack, 43, 5_000),
                "{}: different seeds must diverge",
                pack.label()
            );
        }
    }

    #[test]
    fn labels_parse_back() {
        for pack in ScenarioPack::ALL {
            assert_eq!(ScenarioPack::parse(pack.label()), Some(pack));
        }
        assert_eq!(ScenarioPack::parse("nope"), None);
    }

    #[test]
    fn video_cdn_draws_long_tail_sizes_and_long_ttls() {
        let ops = drain(ScenarioPack::VideoCdn, 7, 50_000);
        let sets: Vec<&Op> = ops.iter().filter(|o| o.kind == OpKind::Set).collect();
        assert!(!sets.is_empty());
        let sizes: std::collections::HashSet<usize> = sets.iter().map(|o| o.value.len()).collect();
        assert!(sizes.len() >= 3, "size distribution collapsed: {sizes:?}");
        assert!(sets.iter().all(|o| o.ttl_ms >= 300_000));
        let reads = ops.iter().filter(|o| o.kind == OpKind::Get).count();
        assert!(reads as f64 / ops.len() as f64 > 0.95, "CDN is read-heavy");
    }

    #[test]
    fn social_feed_bursts_multigets_and_rotates_the_head() {
        let spec = ScenarioPack::SocialFeed.spec(10_000);
        let mut g = ScenarioGen::new(spec, 11);
        let mut burst_sizes = Vec::new();
        for _ in 0..2_000 {
            burst_sizes.push(g.next_burst().len());
        }
        assert!(burst_sizes.contains(&8), "no MultiGET bursts emitted");
        assert!(burst_sizes.iter().filter(|&&b| b == 1).count() > 100);
        // Rotation: after enough ops the index offset must have moved.
        while g.generated() < 45_000 {
            g.next_burst();
        }
        assert!(g.offset > 0, "hot head never rotated");
    }

    #[test]
    fn session_store_touches_renew_ttls() {
        let ops = drain(ScenarioPack::SessionStore, 3, 20_000);
        let touches = ops.iter().filter(|o| o.kind == OpKind::Touch).count();
        let gets = ops.iter().filter(|o| o.kind == OpKind::Get).count();
        let sets = ops.iter().filter(|o| o.kind == OpKind::Set).count();
        assert!(touches > 1_000, "touch renewals missing: {touches}");
        assert!(gets > touches, "touches are a minority of reads");
        assert!(sets as f64 / ops.len() as f64 > 0.4, "write-heavy mix");
        assert!(ops
            .iter()
            .filter(|o| o.kind == OpKind::Touch)
            .all(|o| o.ttl_ms == 8_000));
        assert!(ops
            .iter()
            .filter(|o| o.kind == OpKind::Set)
            .all(|o| (2_000..=10_000).contains(&o.ttl_ms)));
    }
}
