//! Property tests for the cluster substrate: event-queue ordering, the
//! EC2 model's monotonicity, and latency-summary invariants.

use mbal_cluster::ec2::{cluster_kqps, kqps_per_dollar, INSTANCES};
use mbal_cluster::engine::EventQueue;
use mbal_cluster::LatencySummary;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events pop in non-decreasing time order regardless of insertion
    /// order, and FIFO within a timestamp.
    #[test]
    fn event_queue_orders_any_schedule(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last_time = 0;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut popped = 0;
        while let Some((t, id)) = q.pop() {
            prop_assert!(t >= last_time, "time went backwards");
            if t != last_time {
                seen_at_time.clear();
            }
            // FIFO within a timestamp: insertion indices at equal times
            // must come out ascending.
            if let Some(&prev) = seen_at_time.last() {
                prop_assert!(
                    id > prev,
                    "FIFO violated at t={}: {} after {}", t, id, prev
                );
            }
            seen_at_time.push(id);
            last_time = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Cluster throughput never decreases with more nodes, and cost
    /// efficiency never *increases* with more nodes (the Figure 1(b)
    /// lesson: scaling out never improves KQPS/$).
    #[test]
    fn ec2_model_is_monotone(inst_idx in 0usize..6, n in 1u32..40) {
        let inst = &INSTANCES[inst_idx];
        let t_n = cluster_kqps(inst, n);
        let t_n1 = cluster_kqps(inst, n + 1);
        prop_assert!(t_n1 + 1e-9 >= t_n, "throughput dropped: {} -> {}", t_n, t_n1);
        let e_n = kqps_per_dollar(inst, n);
        let e_n1 = kqps_per_dollar(inst, n + 1);
        prop_assert!(
            e_n1 <= e_n + 1e-9,
            "cost efficiency improved with scale: {} -> {}", e_n, e_n1
        );
    }

    /// Percentiles are ordered and bounded by the sample extremes.
    #[test]
    fn latency_summary_invariants(mut samples in prop::collection::vec(1u64..1_000_000, 1..500)) {
        let max = *samples.iter().max().expect("non-empty") as f64;
        let min = *samples.iter().min().expect("non-empty") as f64;
        let s = LatencySummary::from_samples(&mut samples);
        prop_assert!(s.p50_us <= s.p90_us + 1e-9);
        prop_assert!(s.p90_us <= s.p95_us + 1e-9);
        prop_assert!(s.p95_us <= s.p99_us + 1e-9);
        prop_assert!(s.p99_us <= max);
        // Bucketed percentiles carry ≤ 1/16 relative error, so the
        // reported p50 may sit up to half a bucket below the true min.
        prop_assert!(s.p50_us >= min - min / 16.0 - 1.0);
        prop_assert!(s.mean_us >= min && s.mean_us <= max);
        prop_assert_eq!(s.count, samples.len());
    }
}
