//! # mbal-cluster
//!
//! The cluster substrate standing in for the paper's Amazon EC2 testbed.
//!
//! The paper's cluster experiments (Figures 1, 2, 10–13) ran on 20-node
//! EC2 clusters we do not have; per the reproduction ground rules we
//! simulate the testbed while running the **real** MBal control plane —
//! the actual `mbal-balancer` state machine, ILP planners, hot-key
//! trackers and mapping tables — on simulated time:
//!
//! - [`ec2`] — the Table 1 instance catalogue with a calibrated
//!   throughput model (CPU-bound small instances, NIC/switch-bound
//!   semi-powerful ones, multi-tenant interference on the biggest), and
//!   the cost model behind KQPS/$.
//! - [`engine`] — a discrete-event simulation core (event heap, virtual
//!   microsecond clock).
//! - [`sim`] — the cache-cluster model: closed-loop clients, per-worker
//!   FIFO service queues, network delay with congestion, key-granular
//!   routing through a real [`mbal_ring::MappingTable`], Phase 1/2/3
//!   effects (replica read spreading, cachelet re-homing, cross-server
//!   migration with its 5–6 s transfer tax), and latency percentile
//!   collection.
//! - [`multicore`] — a second, smaller simulator standing in for the
//!   paper's 8-/32-core hosts when the reproduction machine has fewer
//!   cores: measured single-thread segment costs + simulated cores with
//!   FIFO locks and cache-coherence handoff penalties (Figures 5–9).
//! - [`report`] — windowed throughput/latency series and experiment
//!   summaries the bench harness prints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ec2;
pub mod engine;
pub mod multicore;
pub mod report;
pub mod sim;

pub use ec2::{InstanceType, INSTANCES};
pub use multicore::{run_coresim, CoreSimConfig, Segment};
pub use report::{LatencySummary, SimReport};
pub use sim::{PhaseSet, SimConfig, Simulation};
