//! Simulation output: latency percentiles and windowed series.

/// Latency percentiles over a sample set (microseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Sample count.
    pub count: usize,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Median (µs).
    pub p50_us: f64,
    /// 90th percentile (µs).
    pub p90_us: f64,
    /// 95th percentile (µs).
    pub p95_us: f64,
    /// 99th percentile (µs).
    pub p99_us: f64,
}

impl LatencySummary {
    /// Computes percentiles from raw samples (sorted internally).
    pub fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let pct = |p: f64| -> f64 {
            let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
            samples[idx] as f64
        };
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        Self {
            count: samples.len(),
            mean_us: mean,
            p50_us: pct(0.50),
            p90_us: pct(0.90),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
        }
    }
}

/// One reporting window of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Window start in simulated ms.
    pub start_ms: u64,
    /// Completed requests in this window.
    pub completed: u64,
    /// Read-latency summary for the window.
    pub read_latency: LatencySummary,
}

/// The full result of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Per-window series (Figure 12-style timeline).
    pub windows: Vec<Window>,
    /// Whole-run read-latency summary.
    pub overall: LatencySummary,
    /// Total completed requests.
    pub completed: u64,
    /// Simulated duration in ms.
    pub duration_ms: u64,
    /// Balance events per phase `(p1, p2, p3)` over the run.
    pub phase_events: (usize, usize, usize),
}

impl SimReport {
    /// Aggregate throughput in KQPS.
    pub fn throughput_kqps(&self) -> f64 {
        if self.duration_ms == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.duration_ms as f64 / 1_000.0) / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_from_uniform_ramp() {
        let mut samples: Vec<u64> = (1..=1_000).collect();
        let s = LatencySummary::from_samples(&mut samples);
        assert_eq!(s.count, 1_000);
        assert!((s.p50_us - 500.0).abs() <= 1.0);
        assert!((s.p90_us - 900.0).abs() <= 1.0);
        assert!((s.p99_us - 990.0).abs() <= 1.0);
        assert!((s.mean_us - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_samples_are_zero() {
        let s = LatencySummary::from_samples(&mut Vec::new());
        assert_eq!(s, LatencySummary::default());
    }

    #[test]
    fn throughput_math() {
        let r = SimReport {
            completed: 500_000,
            duration_ms: 10_000,
            ..SimReport::default()
        };
        assert!((r.throughput_kqps() - 50.0).abs() < 1e-9);
        assert_eq!(SimReport::default().throughput_kqps(), 0.0);
    }
}
