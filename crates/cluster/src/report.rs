//! Simulation output: latency percentiles and windowed series.
//!
//! Percentiles are computed on the shared log-linear
//! [`mbal_telemetry::Histogram`] — the same structure the live server
//! uses — so simulated and measured latency numbers carry identical
//! bucketing error (≤ 1/16 relative).

use mbal_telemetry::Histogram;

/// Latency percentiles over a sample set (microseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Sample count.
    pub count: usize,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Median (µs).
    pub p50_us: f64,
    /// 90th percentile (µs).
    pub p90_us: f64,
    /// 95th percentile (µs).
    pub p95_us: f64,
    /// 99th percentile (µs).
    pub p99_us: f64,
}

impl LatencySummary {
    /// Computes percentiles from a recorded histogram.
    pub fn from_histogram(h: &Histogram) -> Self {
        if h.is_empty() {
            return Self::default();
        }
        let p = h.percentiles();
        Self {
            count: p.count as usize,
            mean_us: p.mean_us,
            p50_us: p.p50_us as f64,
            p90_us: p.p90_us as f64,
            p95_us: p.p95_us as f64,
            p99_us: p.p99_us as f64,
        }
    }

    /// Computes percentiles from raw samples (bucketed internally).
    pub fn from_samples(samples: &mut [u64]) -> Self {
        let mut h = Histogram::new();
        for &s in samples.iter() {
            h.record(s);
        }
        Self::from_histogram(&h)
    }
}

/// One reporting window of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Window start in simulated ms.
    pub start_ms: u64,
    /// Completed requests in this window.
    pub completed: u64,
    /// Read-latency summary for the window.
    pub read_latency: LatencySummary,
}

/// The full result of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Per-window series (Figure 12-style timeline).
    pub windows: Vec<Window>,
    /// Whole-run read-latency summary.
    pub overall: LatencySummary,
    /// Total completed requests.
    pub completed: u64,
    /// Simulated duration in ms.
    pub duration_ms: u64,
    /// Balance events per phase `(p1, p2, p3)` over the run.
    pub phase_events: (usize, usize, usize),
    /// Plain-hit read latency under the delayed-hits origin model
    /// (all-zero unless `SimConfig::origin_fetch_us` > 0).
    pub hit_latency: LatencySummary,
    /// Leader misses: reads that paid the full origin fetch.
    pub miss_latency: LatencySummary,
    /// Delayed hits: reads that coalesced behind an in-flight fetch
    /// and completed when its fill landed.
    pub delayed_hit_latency: LatencySummary,
    /// Origin fetches issued (one per leader miss, however many
    /// readers coalesced behind it).
    pub origin_fetches: u64,
    /// Reads that coalesced behind an in-flight origin fetch.
    pub delayed_hits: u64,
}

impl SimReport {
    /// Aggregate throughput in KQPS.
    pub fn throughput_kqps(&self) -> f64 {
        if self.duration_ms == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.duration_ms as f64 / 1_000.0) / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_from_uniform_ramp() {
        let mut samples: Vec<u64> = (1..=1_000).collect();
        let s = LatencySummary::from_samples(&mut samples);
        assert_eq!(s.count, 1_000);
        // Bucketed values carry ≤ 1/16 relative error (log-linear
        // histogram); the mean and count stay exact.
        assert!((s.p50_us - 500.0).abs() <= 500.0 / 16.0, "p50 {}", s.p50_us);
        assert!((s.p90_us - 900.0).abs() <= 900.0 / 16.0, "p90 {}", s.p90_us);
        assert!((s.p99_us - 990.0).abs() <= 990.0 / 16.0, "p99 {}", s.p99_us);
        assert!((s.mean_us - 500.5).abs() < 1e-9);
    }

    #[test]
    fn from_histogram_matches_from_samples() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1_000, 5_000] {
            h.record(v);
        }
        let a = LatencySummary::from_histogram(&h);
        let b = LatencySummary::from_samples(&mut [10, 20, 30, 40, 1_000, 5_000]);
        assert_eq!(a, b);
        assert_eq!(a.count, 6);
    }

    #[test]
    fn empty_samples_are_zero() {
        let s = LatencySummary::from_samples(&mut Vec::new());
        assert_eq!(s, LatencySummary::default());
    }

    #[test]
    fn throughput_math() {
        let r = SimReport {
            completed: 500_000,
            duration_ms: 10_000,
            ..SimReport::default()
        };
        assert!((r.throughput_kqps() - 50.0).abs() < 1e-9);
        assert_eq!(SimReport::default().throughput_kqps(), 0.0);
    }
}
