//! Discrete-event simulation core.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in microseconds.
pub type SimTime = u64;

/// The event heap: pops events in time order, FIFO within a timestamp.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventBox<E>)>>,
    seq: u64,
    now: SimTime,
}

/// Wrapper giving events a total order without requiring `Ord` on the
/// payload (the sequence number already breaks ties).
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, EventBox(event))));
    }

    /// Schedules `event` after a `delay`.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((t, _, EventBox(e))) = self.heap.pop()?;
        self.now = t;
        Some((t, e))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.now(), 10);
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_timestamp() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop().expect("e").1, 1);
        assert_eq!(q.pop().expect("e").1, 2);
        assert_eq!(q.pop().expect("e").1, 3);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        let _ = q.pop();
        q.schedule_in(50, ());
        assert_eq!(q.pop().expect("e").0, 150);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        let _ = q.pop();
        q.schedule(50, ());
    }
}
