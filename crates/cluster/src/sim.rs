//! The cache-cluster simulation model.
//!
//! What is simulated: request timing (closed-loop clients, per-worker
//! FIFO service, per-server NIC serialization, network RTT). What is
//! *real*: the routing tables (`mbal_ring::MappingTable`), the hot-key
//! trackers (`mbal_core::hotkey`), the Figure 4 state machine and the
//! Phase 1/2/3 planners — the actual `mbal-balancer` code runs on
//! simulated time, so the cluster experiments exercise the same control
//! plane as the live servers.
//!
//! Phase effects on the timing model:
//!
//! - **Phase 1** — replicated keys round-robin reads across home +
//!   shadow workers (writes stay home), exactly like the client library.
//! - **Phase 2** — cachelet re-homed between a server's workers at
//!   near-zero cost (a mapping update).
//! - **Phase 3** — cachelet re-homed across servers; source and
//!   destination workers are taxed busy for the transfer duration
//!   (the paper measured 5–6 s per cachelet at peak load).
//!
//! With [`SimConfig::multiget_batch`] > 1 each client slot draws a
//! whole batch per issue, groups the reads per worker, and pays one
//! round-trip plus one NIC charge per group (the §4.1 MultiGET path as
//! carried by `Transport::call_many`); writes stay singletons.

use crate::engine::EventQueue;
use crate::report::{LatencySummary, SimReport, Window};
use mbal_balancer::phase1::ReplicationAction;
use mbal_balancer::phase3::{plan_coordinated, ClusterView, Phase3Outcome};
use mbal_balancer::topology::{plan_coordinated_zoned, Topology};
use mbal_balancer::{BalanceDriver, BalancerConfig, Phase, WorkerLoad};
use mbal_core::hotkey::{HotKeyConfig, HotKeyTracker};
use mbal_core::stats::CacheletLoad;
use mbal_core::types::{ServerId, WorkerAddr, WorkerId};
use mbal_membership::{
    ClusterMembership, MembershipConfig, MembershipEvent, MembershipView, NodeState,
};
use mbal_ring::mapping::PlannedMove;
use mbal_ring::{ConsistentRing, MappingTable};
use mbal_server::fault::{FaultPlan, SplitMix64};
use mbal_telemetry::Histogram;
use mbal_workload::{WorkloadGen, WorkloadSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

// The phase-enable set now lives with the balancer tunables (it gates
// the live `BalanceDriver` too); re-exported here so simulation configs
// keep reading naturally.
pub use mbal_balancer::PhaseSet;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cache servers.
    pub servers: u16,
    /// Worker threads per server.
    pub workers_per_server: u16,
    /// Cachelets per worker.
    pub cachelets_per_worker: usize,
    /// Virtual nodes.
    pub vns: usize,
    /// Closed-loop client count.
    pub clients: usize,
    /// Outstanding requests per client.
    pub concurrency: usize,
    /// Keys per client MultiGET. At 1 every request is a singleton
    /// round-trip; above 1 each slot issues batches whose reads are
    /// grouped per worker and pipelined — one RTT + one NIC charge per
    /// group, per-key service time at the worker.
    pub multiget_batch: usize,
    /// Mean service time per request at a worker (µs).
    pub service_us: f64,
    /// Per-request NIC serialization time at a server (µs).
    pub nic_us: f64,
    /// Network round-trip time (µs).
    pub rtt_us: f64,
    /// Balancer epoch (ms).
    pub epoch_ms: u64,
    /// Enabled phases.
    pub phases: PhaseSet,
    /// Balancer tunables.
    pub balancer: BalancerConfig,
    /// Hot-key tracker tunables.
    pub hotkey: HotKeyConfig,
    /// Per-worker permissible load `T_j` in ops/s.
    pub worker_capacity_qps: f64,
    /// Duration of the service slowdown a coordinated transfer imposes
    /// on its endpoints (ms). The paper measured 5–6 s per cachelet at
    /// peak load — during which the worker keeps serving (per-bucket
    /// migration), just slower; the slowdown factor is
    /// [`MIGRATION_SLOWDOWN`].
    pub migration_tax_ms: u64,
    /// Memcached-style global server lock: all of a server's workers
    /// serialize through one queue.
    pub global_lock: bool,
    /// Number of zones (racks) servers are spread over round-robin.
    /// Cross-zone transfers pay double the slowdown tax regardless of
    /// planner.
    pub zones: u16,
    /// Plan coordinated migration hierarchically (intra-zone first, the
    /// §4.2.1 extension) instead of flat over the whole cluster.
    pub zone_planning: bool,
    /// Reporting window (ms).
    pub window_ms: u64,
    /// Warm-up period excluded from the overall latency/throughput
    /// summary (ms). Windows are still reported for the full run. The
    /// paper's steady-state numbers are post-convergence; Phase 3 in
    /// particular needs ≈150 s to converge at full scale (§4.2.2).
    pub warmup_ms: u64,
    /// RNG seed.
    pub seed: u64,
    /// Servers that are ring members at `t = 0`. `None` means all
    /// [`SimConfig::servers`]; set it lower to provision spare servers
    /// that a scripted [`MembershipAction::Join`] brings in later
    /// (workers, NICs, and balance drivers exist for *all* servers up
    /// front — only the mapping and the membership roster start small).
    pub initial_servers: Option<u16>,
    /// Scripted membership events, `(at_ms, action)` in virtual time,
    /// applied at the first balancer epoch at or after `at_ms` (sorted
    /// ascending). Joins and drains execute the Phase-3-style grow /
    /// evacuate plans against the live mapping with the usual migration
    /// tax; kills silence a server's heartbeats so the real
    /// `mbal-membership` detector walks it Suspect → Failed in virtual
    /// time, composing with [`SimConfig::fault`] network faults.
    pub membership: Vec<(u64, MembershipAction)>,
    /// Failure-detector tunables for the scripted membership events.
    pub membership_cfg: MembershipConfig,
    /// Optional network-fault model, shared with the live stack's
    /// `mbal_server::fault::FaultInjector`. In the timing model a
    /// dropped frame costs the client a retransmission timeout
    /// ([`DROP_RTO_US`]) and a delayed frame adds the drawn delay;
    /// duplicate/reorder/reset have no latency effect here (they are
    /// consistency faults, exercised by the chaos tests against the
    /// real stack). Uses the plan's own seed, independent of
    /// [`SimConfig::seed`].
    pub fault: Option<FaultPlan>,
    /// Origin fetch cost for the delayed-hits miss model (µs); `0`
    /// disables it. When armed, the cache starts cold: the first read
    /// of a key is a *miss* whose response is held for the full origin
    /// round trip, reads arriving while that fetch is in flight
    /// coalesce behind it and complete as *delayed hits* the moment it
    /// lands (one origin fetch, N waiters), and writes fill their key
    /// directly. Per-class latency summaries land in
    /// [`SimReport::hit_latency`] / `miss_latency` /
    /// `delayed_hit_latency`.
    pub origin_fetch_us: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            servers: 20,
            workers_per_server: 2,
            cachelets_per_worker: 16,
            vns: 4_096,
            clients: 12,
            concurrency: 16,
            multiget_batch: 1,
            service_us: 40.0,
            nic_us: 8.0,
            rtt_us: 200.0,
            epoch_ms: 1_000,
            phases: PhaseSet::none(),
            balancer: BalancerConfig {
                epochs_to_trigger: 2,
                ..BalancerConfig::default()
            },
            hotkey: HotKeyConfig::default(),
            worker_capacity_qps: 25_000.0,
            migration_tax_ms: 150,
            global_lock: false,
            zones: 1,
            zone_planning: false,
            window_ms: 1_000,
            warmup_ms: 0,
            seed: 42,
            initial_servers: None,
            membership: Vec::new(),
            membership_cfg: MembershipConfig::default(),
            fault: None,
            origin_fetch_us: 0,
        }
    }
}

/// One scripted membership action, applied at a virtual-time instant.
/// The sim provisions [`SimConfig::workers_per_server`] workers for
/// every server id below [`SimConfig::servers`], so actions address
/// servers, not individual workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipAction {
    /// Admit a spare server: minimal-churn grow rebalance onto its
    /// workers, then `Joining → Up`.
    Join {
        /// The joining server (must be `< SimConfig::servers`).
        server: ServerId,
    },
    /// Gracefully evacuate a member and mark it `Left`.
    Drain {
        /// The draining server.
        server: ServerId,
    },
    /// Kill a server outright: its heartbeats stop (the detector must
    /// notice and reassign its cachelets on confirmation) and requests
    /// routed to it burn a [`DROP_RTO_US`] retransmission timeout until
    /// the mapping heals.
    Kill {
        /// The killed server.
        server: ServerId,
    },
}

/// What a dropped frame costs the issuing client in the timing model: a
/// retransmission timeout before the retry lands (µs).
pub const DROP_RTO_US: u64 = 10_000;

/// Service-time inflation on a worker that is sourcing or sinking a
/// coordinated migration (it keeps serving, per-bucket, but pays the
/// serialization and transfer CPU).
pub const MIGRATION_SLOWDOWN: f64 = 1.35;

/// Per-key cache-fill state for the delayed-hits origin model.
#[derive(Debug, Clone, Copy)]
enum OriginEntry {
    /// The key is resident: reads are plain hits.
    Cached,
    /// A leader fetch is in flight and lands at `ready_at` (µs);
    /// reads arriving before then coalesce behind it.
    Fetching { ready_at: u64 },
}

/// Latency class of one read under the origin model.
#[derive(Debug, Clone, Copy)]
enum OpClass {
    Hit,
    Miss,
    DelayedHit,
}

struct SimWorker {
    addr: WorkerAddr,
    busy_until: u64,
    /// Service runs [`MIGRATION_SLOWDOWN`]× slower until this deadline.
    slow_until: u64,
    tracker: HotKeyTracker,
    epoch_ops: u64,
    cachelet_ops: HashMap<u32, u64>,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Client slot issues its next request.
    Issue { slot: u32 },
    /// A response reached the client.
    Complete {
        slot: u32,
        issued_at: u64,
        is_read: bool,
        /// How many ops this response carries (batch groups complete as
        /// a unit).
        ops: u32,
        /// Whether this completion re-arms the slot. Exactly one leg of
        /// a batch fan-out — the slowest — reissues.
        reissue: bool,
    },
    /// Balancer epoch boundary.
    EpochTick,
}

/// The simulation: build with [`Simulation::new`], run with
/// [`Simulation::run`].
pub struct Simulation {
    cfg: SimConfig,
    mapping: MappingTable,
    workers: Vec<SimWorker>,
    /// Per-server NIC serialization horizon.
    nic_busy: Vec<u64>,
    /// Replica sets: key index → (targets incl. home, rr cursor).
    replicas: HashMap<u64, (Vec<usize>, usize)>,
    /// Coordinated-migration cooldown per source worker (µs): after a
    /// transfer, the worker may not re-request coordination until the
    /// deadline passes — migration is "a last resort ... only for
    /// sustained hotspots" (§4.2.1).
    coord_cooldown: HashMap<usize, u64>,
    topology: Topology,
    intra_zone_migrations: u64,
    cross_zone_migrations: u64,
    drivers: Vec<BalanceDriver>,
    /// The real failure detector / epoch state machine, advanced on the
    /// balancer epoch in virtual time. Engaged only when the config
    /// scripts membership (otherwise it stays empty and inert).
    membership: ClusterMembership,
    /// Whether scripted membership is active for this run.
    member_sim: bool,
    /// Index of the next unapplied [`SimConfig::membership`] entry.
    next_member_event: usize,
    /// Servers killed by the script: no heartbeats, no service.
    dead: Vec<ServerId>,
    /// Cachelet moves executed by scripted join/drain rebalances.
    membership_moves: u64,
    rng: SmallRng,
    /// Fault-model PRNG, seeded from the plan (not [`SimConfig::seed`])
    /// so the same fault schedule can be replayed under different
    /// workload seeds.
    fault_rng: SplitMix64,
    faults_injected: u64,
    /// Delayed-hits origin model: per-key fill state by key id.
    /// Engaged only when [`SimConfig::origin_fetch_us`] > 0.
    origin: HashMap<u64, OriginEntry>,
    origin_fetches: u64,
    origin_delayed: u64,
    hit_hist: Histogram,
    miss_hist: Histogram,
    delayed_hist: Histogram,
    queue: EventQueue<Event>,
}

impl Simulation {
    /// Builds the cluster.
    pub fn new(cfg: SimConfig) -> Self {
        let initial = cfg
            .initial_servers
            .unwrap_or(cfg.servers)
            .min(cfg.servers)
            .max(1);
        let mut ring = ConsistentRing::new();
        for s in 0..initial {
            for w in 0..cfg.workers_per_server {
                ring.add_worker(WorkerAddr::new(s, w));
            }
        }
        let mapping = MappingTable::build(&ring, cfg.cachelets_per_worker, cfg.vns);
        let member_sim = !cfg.membership.is_empty() || cfg.initial_servers.is_some();
        let mut membership = ClusterMembership::new(cfg.membership_cfg);
        if member_sim {
            let seed: Vec<(ServerId, u16)> = (0..initial)
                .map(|s| (ServerId(s), cfg.workers_per_server))
                .collect();
            membership.bootstrap(&seed, 0);
        }
        let workers: Vec<SimWorker> = (0..cfg.servers)
            .flat_map(|s| (0..cfg.workers_per_server).map(move |w| WorkerAddr::new(s, w)))
            .map(|addr| SimWorker {
                addr,
                busy_until: 0,
                slow_until: 0,
                tracker: HotKeyTracker::new(cfg.hotkey.clone()),
                epoch_ops: 0,
                cachelet_ops: HashMap::new(),
            })
            .collect();
        let drivers = (0..cfg.servers)
            .map(|s| {
                let mut bal = cfg.balancer.clone();
                bal.epoch_ms = cfg.epoch_ms;
                BalanceDriver::new(ServerId(s), bal, cfg.hotkey.hot_threshold)
            })
            .collect();
        Self {
            rng: SmallRng::seed_from_u64(cfg.seed),
            fault_rng: SplitMix64::new(cfg.fault.as_ref().map_or(0, |p| p.seed)),
            faults_injected: 0,
            mapping,
            workers,
            nic_busy: vec![0; cfg.servers as usize],
            replicas: HashMap::new(),
            coord_cooldown: HashMap::new(),
            topology: Topology::round_robin(cfg.servers, cfg.zones.max(1)),
            intra_zone_migrations: 0,
            cross_zone_migrations: 0,
            drivers,
            membership,
            member_sim,
            next_member_event: 0,
            dead: Vec::new(),
            membership_moves: 0,
            origin: HashMap::new(),
            origin_fetches: 0,
            origin_delayed: 0,
            hit_hist: Histogram::new(),
            miss_hist: Histogram::new(),
            delayed_hist: Histogram::new(),
            queue: EventQueue::new(),
            cfg,
        }
    }

    fn widx(&self, addr: WorkerAddr) -> usize {
        addr.server.0 as usize * self.cfg.workers_per_server as usize + addr.worker.0 as usize
    }

    /// Latency penalty the fault model charges one round trip: drops
    /// cost [`DROP_RTO_US`], delays cost the drawn hold time. Draw
    /// order matches the live injector (drop before delay, one uniform
    /// draw per call) so the schedule is a pure function of the plan
    /// seed and the call sequence.
    fn fault_penalty_us(&mut self) -> u64 {
        let Some(plan) = &self.cfg.fault else {
            return 0;
        };
        if plan.max_faults > 0 && self.faults_injected >= plan.max_faults {
            return 0;
        }
        let roll = self.fault_rng.next_f64();
        if roll < plan.drop {
            self.faults_injected += 1;
            return DROP_RTO_US;
        }
        if roll < plan.drop + plan.delay {
            let (lo, hi) = plan.delay_ms;
            let ms = lo + self.fault_rng.next_below(hi.saturating_sub(lo) + 1);
            self.faults_injected += 1;
            return ms * 1_000;
        }
        0
    }

    /// Runs `phases` of workload back to back, reporting windows.
    pub fn run(&mut self, phases: &[(WorkloadSpec, u64)]) -> SimReport {
        let total_ms: u64 = phases.iter().map(|(_, d)| d).sum();
        let total_us = total_ms * 1_000;
        let slots = (self.cfg.clients * self.cfg.concurrency) as u32;
        for slot in 0..slots {
            // Stagger initial issues to avoid a thundering herd artifact.
            self.queue
                .schedule(slot as u64 % 997, Event::Issue { slot });
        }
        self.queue
            .schedule(self.cfg.epoch_ms * 1_000, Event::EpochTick);

        let mut gens: Vec<WorkloadGen> = phases
            .iter()
            .enumerate()
            .map(|(i, (spec, _))| WorkloadGen::new(spec.clone(), self.cfg.seed ^ (i as u64) << 32))
            .collect();
        let phase_ends: Vec<u64> = phases
            .iter()
            .scan(0u64, |acc, (_, d)| {
                *acc += d * 1_000;
                Some(*acc)
            })
            .collect();
        let phase_of = |t: u64| {
            phase_ends
                .iter()
                .position(|&e| t < e)
                .unwrap_or(phases.len() - 1)
        };

        let warmup_us = self.cfg.warmup_ms * 1_000;
        let mut window_hist = Histogram::new();
        let mut all_hist = Histogram::new();
        let mut steady_completed: u64 = 0;
        let mut windows: Vec<Window> = Vec::new();
        let mut window_start: u64 = 0;
        let mut window_completed: u64 = 0;
        let mut completed: u64 = 0;

        while let Some((t, ev)) = self.queue.pop() {
            if t >= total_us {
                break;
            }
            // Roll the reporting window.
            while t >= window_start + self.cfg.window_ms * 1_000 {
                windows.push(Window {
                    start_ms: window_start / 1_000,
                    completed: window_completed,
                    read_latency: LatencySummary::from_histogram(&window_hist),
                });
                if window_start >= warmup_us {
                    all_hist.merge(&window_hist);
                }
                window_hist = Histogram::new();
                window_completed = 0;
                window_start += self.cfg.window_ms * 1_000;
            }
            match ev {
                Event::Issue { slot } => {
                    let batch = self.cfg.multiget_batch.max(1);
                    if batch == 1 {
                        let gen = &mut gens[phase_of(t)];
                        let op = gen.next_op();
                        let is_read = op.kind == mbal_workload::OpKind::Get;
                        // Key index back from the generated key: the sim uses
                        // the generator's key bytes directly.
                        let key = op.key;
                        let target = self.route(&key, is_read);
                        let completion = self.serve(t, target, &key, is_read);
                        self.queue.schedule(
                            completion,
                            Event::Complete {
                                slot,
                                issued_at: t,
                                is_read,
                                ops: 1,
                                reissue: true,
                            },
                        );
                    } else {
                        // MultiGET client: draw the whole batch, group
                        // the reads per worker, and ship each group as
                        // one pipelined request. Writes stay singleton
                        // round-trips. The slot re-arms when its slowest
                        // leg returns.
                        let gen = &mut gens[phase_of(t)];
                        let mut groups: Vec<(usize, Vec<Vec<u8>>)> = Vec::new();
                        let mut legs: Vec<(u64, u32, bool)> = Vec::new();
                        for _ in 0..batch {
                            let op = gen.next_op();
                            let is_read = op.kind == mbal_workload::OpKind::Get;
                            let key = op.key;
                            let target = self.route(&key, is_read);
                            if is_read {
                                match groups.iter_mut().find(|(w, _)| *w == target) {
                                    Some((_, keys)) => keys.push(key),
                                    None => groups.push((target, vec![key])),
                                }
                            } else {
                                legs.push((self.serve(t, target, &key, false), 1, false));
                            }
                        }
                        for (widx, keys) in &groups {
                            let completion = self.serve_batch(t, *widx, keys);
                            legs.push((completion, keys.len() as u32, true));
                        }
                        let mut slowest = 0;
                        for i in 1..legs.len() {
                            if legs[i].0 >= legs[slowest].0 {
                                slowest = i;
                            }
                        }
                        for (i, (completion, ops, is_read)) in legs.into_iter().enumerate() {
                            self.queue.schedule(
                                completion,
                                Event::Complete {
                                    slot,
                                    issued_at: t,
                                    is_read,
                                    ops,
                                    reissue: i == slowest,
                                },
                            );
                        }
                    }
                }
                Event::Complete {
                    slot,
                    issued_at,
                    is_read,
                    ops,
                    reissue,
                } => {
                    completed += ops as u64;
                    window_completed += ops as u64;
                    if t >= warmup_us {
                        steady_completed += ops as u64;
                    }
                    if is_read {
                        window_hist.record_n(t - issued_at, ops as u64);
                    }
                    if reissue {
                        self.queue.schedule(t, Event::Issue { slot });
                    }
                }
                Event::EpochTick => {
                    self.run_balancers(t);
                    self.queue
                        .schedule_in(self.cfg.epoch_ms * 1_000, Event::EpochTick);
                }
            }
        }

        // Flush the trailing window.
        if window_completed > 0 || !window_hist.is_empty() {
            windows.push(Window {
                start_ms: window_start / 1_000,
                completed: window_completed,
                read_latency: LatencySummary::from_histogram(&window_hist),
            });
            if window_start >= warmup_us {
                all_hist.merge(&window_hist);
            }
        }
        let mut events = (0, 0, 0);
        for d in &self.drivers {
            for b in d.events().breakdown(u64::MAX / 2) {
                events.0 += b.p1;
                events.1 += b.p2;
                events.2 += b.p3;
            }
        }
        SimReport {
            overall: LatencySummary::from_histogram(&all_hist),
            windows,
            completed: if warmup_us > 0 {
                steady_completed
            } else {
                completed
            },
            duration_ms: total_ms - self.cfg.warmup_ms.min(total_ms),
            phase_events: events,
            hit_latency: LatencySummary::from_histogram(&self.hit_hist),
            miss_latency: LatencySummary::from_histogram(&self.miss_hist),
            delayed_hit_latency: LatencySummary::from_histogram(&self.delayed_hist),
            origin_fetches: self.origin_fetches,
            delayed_hits: self.origin_delayed,
        }
    }

    /// Routes a request: replica round-robin for hot read keys, home
    /// worker otherwise.
    fn route(&mut self, key: &[u8], is_read: bool) -> usize {
        let (_, home) = self.mapping.route(key).expect("mapping is total");
        let home_idx = self.widx(home);
        if !is_read {
            return home_idx;
        }
        let kid = key_id(key);
        if let Some((targets, cursor)) = self.replicas.get_mut(&kid) {
            let t = targets[*cursor % targets.len()];
            *cursor += 1;
            return t;
        }
        home_idx
    }

    /// Timing model: NIC queue then worker queue, exponential service.
    fn serve(&mut self, t: u64, widx: usize, key: &[u8], is_read: bool) -> u64 {
        if self.dead.contains(&self.workers[widx].addr.server) {
            // The endpoint is gone: the frame times out and the client
            // retries once the mapping heals. No service, no accounting.
            return t + (self.cfg.rtt_us / 2.0) as u64 + DROP_RTO_US;
        }
        let mut service =
            (-(self.rng.gen::<f64>().max(1e-12)).ln() * self.cfg.service_us).min(50_000.0);
        if t < self.workers[widx].slow_until {
            service *= MIGRATION_SLOWDOWN;
        }
        let half_rtt = (self.cfg.rtt_us / 2.0) as u64;
        let (sidx, effective_widx) = {
            let addr = self.workers[widx].addr;
            let sidx = addr.server.0 as usize;
            // Memcached-style global lock: all requests of a server
            // serialize through worker 0's queue.
            let w = if self.cfg.global_lock {
                sidx * self.cfg.workers_per_server as usize
            } else {
                widx
            };
            (sidx, w)
        };
        let arrive_nic = t + half_rtt;
        let nic_done = self.nic_busy[sidx].max(arrive_nic) + self.cfg.nic_us as u64;
        self.nic_busy[sidx] = nic_done;
        let w = &mut self.workers[effective_widx];
        let start = w.busy_until.max(nic_done);
        let done = start + service as u64 + 1;
        w.busy_until = done;
        // Accounting is charged to the *routed* worker so the balancer
        // sees the per-worker load picture.
        let acct = &mut self.workers[widx];
        acct.epoch_ops += 1;
        acct.tracker.record(key, is_read);
        let cachelet = self.mapping.cachelet_of_vn(self.mapping.vn_of(key));
        *acct.cachelet_ops.entry(cachelet.0).or_insert(0) += 1;
        let completion = done + half_rtt + self.fault_penalty_us();
        self.origin_adjust(t, completion, key, is_read)
    }

    /// Delayed-hits origin model. The first read of a key misses: the
    /// worker discovers the absence at service completion and holds the
    /// response for the full [`SimConfig::origin_fetch_us`] round trip.
    /// Reads that arrive while that fetch is in flight coalesce behind
    /// it — no second origin fetch — and complete as delayed hits the
    /// moment the fill lands. Writes fill their key directly. Returns
    /// the (possibly deferred) completion time and records the op into
    /// the per-class latency histograms.
    fn origin_adjust(&mut self, t: u64, completion: u64, key: &[u8], is_read: bool) -> u64 {
        if self.cfg.origin_fetch_us == 0 {
            return completion;
        }
        let kid = key_id(key);
        if !is_read {
            self.origin.insert(kid, OriginEntry::Cached);
            return completion;
        }
        let half_rtt = (self.cfg.rtt_us / 2.0) as u64;
        let (class, adjusted) = match self.origin.get(&kid).copied() {
            Some(OriginEntry::Cached) => (OpClass::Hit, completion),
            Some(OriginEntry::Fetching { ready_at }) if t < ready_at => {
                self.origin_delayed += 1;
                (OpClass::DelayedHit, completion.max(ready_at + half_rtt))
            }
            Some(OriginEntry::Fetching { .. }) => {
                // The fill landed before this read arrived: promote.
                self.origin.insert(kid, OriginEntry::Cached);
                (OpClass::Hit, completion)
            }
            None => {
                let ready_at = completion - half_rtt + self.cfg.origin_fetch_us;
                self.origin.insert(kid, OriginEntry::Fetching { ready_at });
                self.origin_fetches += 1;
                (OpClass::Miss, ready_at + half_rtt)
            }
        };
        if adjusted >= self.cfg.warmup_ms * 1_000 {
            let lat = adjusted - t;
            match class {
                OpClass::Hit => self.hit_hist.record(lat),
                OpClass::Miss => self.miss_hist.record(lat),
                OpClass::DelayedHit => self.delayed_hist.record(lat),
            }
        }
        adjusted
    }

    /// Timing model for one pipelined MultiGET group: the coalesced
    /// frame pays one half-RTT and one NIC serialization charge, the
    /// worker serves the keys back to back, and the whole response
    /// batch travels home in one half-RTT — the batch amortizes the
    /// per-request network costs that [`Simulation::serve`] charges per
    /// key.
    fn serve_batch(&mut self, t: u64, widx: usize, keys: &[Vec<u8>]) -> u64 {
        let half_rtt = (self.cfg.rtt_us / 2.0) as u64;
        if self.dead.contains(&self.workers[widx].addr.server) {
            return t + half_rtt + DROP_RTO_US;
        }
        let (sidx, effective_widx) = {
            let addr = self.workers[widx].addr;
            let sidx = addr.server.0 as usize;
            let w = if self.cfg.global_lock {
                sidx * self.cfg.workers_per_server as usize
            } else {
                widx
            };
            (sidx, w)
        };
        let arrive_nic = t + half_rtt;
        let nic_done = self.nic_busy[sidx].max(arrive_nic) + self.cfg.nic_us as u64;
        self.nic_busy[sidx] = nic_done;
        let slow = t < self.workers[widx].slow_until;
        let mut service_total: u64 = 0;
        for _ in keys {
            let mut service =
                (-(self.rng.gen::<f64>().max(1e-12)).ln() * self.cfg.service_us).min(50_000.0);
            if slow {
                service *= MIGRATION_SLOWDOWN;
            }
            service_total += service as u64 + 1;
        }
        let w = &mut self.workers[effective_widx];
        let start = w.busy_until.max(nic_done);
        let done = start + service_total;
        w.busy_until = done;
        let acct = &mut self.workers[widx];
        for key in keys {
            acct.epoch_ops += 1;
            acct.tracker.record(key, true);
            let cachelet = self.mapping.cachelet_of_vn(self.mapping.vn_of(key));
            *acct.cachelet_ops.entry(cachelet.0).or_insert(0) += 1;
        }
        let base = done + half_rtt + self.fault_penalty_us();
        // The batch response travels as one frame: a missing key defers
        // the whole group until its origin fill lands.
        let mut latest = base;
        for key in keys {
            latest = latest.max(self.origin_adjust(t, base, key, true));
        }
        latest
    }

    fn build_loads(&self, server: u16) -> Vec<WorkerLoad> {
        let epoch_secs = self.cfg.epoch_ms as f64 / 1_000.0;
        let per_cachelet_mem = 4_096u64; // synthetic: uniform key spread
        (0..self.cfg.workers_per_server)
            .map(|w| {
                let idx = server as usize * self.cfg.workers_per_server as usize + w as usize;
                let sw = &self.workers[idx];
                let owned = self.mapping.cachelets_of_worker(sw.addr);
                WorkerLoad {
                    addr: sw.addr,
                    cachelets: owned
                        .into_iter()
                        .map(|c| CacheletLoad {
                            cachelet: c,
                            load: sw.cachelet_ops.get(&c.0).copied().unwrap_or(0) as f64
                                / epoch_secs,
                            mem_bytes: per_cachelet_mem,
                            read_ratio: 0.9,
                        })
                        .collect(),
                    load_capacity: self.cfg.worker_capacity_qps,
                    mem_capacity: u64::MAX / 4,
                    metrics: Default::default(),
                    tenants: vec![],
                }
            })
            .collect()
    }

    fn run_balancers(&mut self, now_us: u64) {
        self.run_membership(now_us);
        let now_ms = now_us / 1_000;
        let cluster: Vec<WorkerAddr> = self.mapping.workers();
        // Only servers that are in the mapping and alive participate in
        // balance planning (with membership unscripted that is every
        // server, as before). Spare servers waiting to join and killed
        // servers must not look like attractive zero-load destinations.
        let mut active: Vec<u16> = cluster.iter().map(|w| w.server.0).collect();
        active.sort_unstable();
        active.dedup();
        active.retain(|s| !self.dead.contains(&ServerId(*s)));
        // Collect per-server inputs first (drivers borrow self mutably).
        let mut server_inputs = Vec::new();
        for &s in &active {
            let loads = self.build_loads(s);
            let mut hot = HashMap::new();
            for w in 0..self.cfg.workers_per_server {
                let idx = s as usize * self.cfg.workers_per_server as usize + w as usize;
                // With Phase 1 disabled the run models a system without
                // key replication at all: hot keys are not tracked, so
                // the state machine sees pure load imbalance and goes
                // straight to the migration phases.
                let keys = if self.cfg.phases.p1 {
                    let mut keys = self.workers[idx].tracker.hot_keys();
                    for wh in self.workers[idx].tracker.write_hot_keys() {
                        if !keys.iter().any(|k| k.key == wh.key) {
                            keys.push(wh);
                        }
                    }
                    keys
                } else {
                    Vec::new()
                };
                hot.insert(WorkerId(w), keys);
            }
            server_inputs.push((s, loads, hot));
        }

        let mut coordinated: Vec<WorkerAddr> = Vec::new();
        for (s, loads, hot) in &server_inputs {
            let actions = self.drivers[*s as usize].epoch(now_ms, loads, hot, &cluster);
            if self.cfg.phases.p1 {
                for (_, acts) in &actions.replication {
                    self.apply_replication(acts, now_ms);
                }
            }
            if self.cfg.phases.p2 {
                for m in &actions.local_migrations {
                    self.mapping.move_cachelet(m.cachelet, m.to);
                }
            } else if self.cfg.phases.p3 {
                // Figure 4 allows escalating straight to coordinated
                // migration when local migration is unavailable — the
                // per-phase experiments (Figures 10–12) run exactly that
                // configuration.
                for m in &actions.local_migrations {
                    if !coordinated.contains(&m.from) {
                        coordinated.push(m.from);
                    }
                }
            }
            if self.cfg.phases.p3 {
                coordinated.extend(actions.coordinate.iter().copied());
            }
        }

        // Coordinated migrations run against the freshest cluster view,
        // subject to the per-worker cooldown.
        let cooldown_us = self.cfg.epoch_ms * 1_000 * 8;
        for src in coordinated {
            let widx = self.widx(src);
            if self
                .coord_cooldown
                .get(&widx)
                .is_some_and(|&until| now_us < until)
            {
                continue;
            }
            let view = ClusterView {
                servers: active
                    .iter()
                    .map(|&s| (ServerId(s), self.build_loads(s)))
                    .collect(),
            };
            let plan: Vec<_> = if self.cfg.zone_planning && self.cfg.zones > 1 {
                plan_coordinated_zoned(&view, src, &self.topology, &self.cfg.balancer)
                    .plan()
                    .to_vec()
            } else {
                match plan_coordinated(&view, src, &self.cfg.balancer) {
                    Phase3Outcome::Plan(p) => p,
                    _ => Vec::new(),
                }
            };
            if !plan.is_empty() {
                self.coord_cooldown.insert(widx, now_us + cooldown_us);
            }
            for m in &plan {
                self.mapping.move_cachelet(m.cachelet, m.to);
                // Both endpoints keep serving, but slower, for the
                // transfer duration (per-bucket Write-Invalidate).
                // Cross-zone transfers traverse the oversubscribed core
                // and pay double.
                let cross = self.topology.is_cross_zone(m);
                if cross {
                    self.cross_zone_migrations += 1;
                } else {
                    self.intra_zone_migrations += 1;
                }
                let tax = self.cfg.migration_tax_ms * 1_000 * if cross { 2 } else { 1 };
                let fi = self.widx(m.from);
                self.workers[fi].slow_until = self.workers[fi].slow_until.max(now_us + tax);
                let ti = self.widx(m.to);
                self.workers[ti].slow_until = self.workers[ti].slow_until.max(now_us + tax / 2);
            }
        }

        // Epoch rollover: reset counters, decay trackers, expire replica
        // leases.
        for w in &mut self.workers {
            w.epoch_ops = 0;
            w.cachelet_ops.clear();
            w.tracker.end_epoch();
        }
    }

    fn apply_replication(&mut self, acts: &[ReplicationAction], _now_ms: u64) {
        for act in acts {
            match act {
                ReplicationAction::Install { key, shadow, .. }
                | ReplicationAction::Renew { key, shadow, .. } => {
                    let kid = key_id(key);
                    let home = self
                        .mapping
                        .route(key)
                        .map(|(_, w)| self.widx(w))
                        .expect("mapping total");
                    let sidx = self.widx(*shadow);
                    let entry = self.replicas.entry(kid).or_insert_with(|| (vec![home], 0));
                    if !entry.0.contains(&sidx) {
                        entry.0.push(sidx);
                    }
                }
                ReplicationAction::Retire { key, shadow } => {
                    let kid = key_id(key);
                    let sidx = self.widx(*shadow);
                    let drop_entry = match self.replicas.get_mut(&kid) {
                        Some((targets, _)) => {
                            targets.retain(|&t| t != sidx);
                            targets.len() <= 1
                        }
                        None => false,
                    };
                    if drop_entry {
                        self.replicas.remove(&kid);
                    }
                }
            }
        }
    }

    /// Advances the membership machinery one balancer epoch: applies
    /// scripted actions that have come due, heartbeats every live
    /// member (refuting suspicion with a bumped incarnation, like the
    /// real servers do), and ticks the detector — a `ConfirmedFailed`
    /// reassigns the dead server's cachelets and purges its replicas.
    fn run_membership(&mut self, now_us: u64) {
        if !self.member_sim {
            return;
        }
        let now_ms = now_us / 1_000;
        while let Some(&(at_ms, action)) = self.cfg.membership.get(self.next_member_event) {
            if at_ms > now_ms {
                break;
            }
            self.next_member_event += 1;
            self.apply_membership_action(action, now_ms, now_us);
        }
        let view = self.membership.view(now_ms);
        for n in &view.nodes {
            if !n.state.is_member() || self.dead.contains(&n.server) {
                continue;
            }
            let (state, _) = self.membership.heartbeat(n.server, n.incarnation, now_ms);
            if state == Some(NodeState::Suspect) {
                // A live-but-slow node refutes with a fresh incarnation.
                let _ = self
                    .membership
                    .heartbeat(n.server, n.incarnation + 1, now_ms);
            }
        }
        for ev in self.membership.tick(now_ms) {
            if let MembershipEvent::ConfirmedFailed { server } = ev {
                let _ = self.mapping.remove_server(server);
                self.purge_replicas_of(server);
            }
        }
    }

    fn apply_membership_action(&mut self, action: MembershipAction, now_ms: u64, now_us: u64) {
        match action {
            MembershipAction::Join { server } => {
                if server.0 >= self.cfg.servers {
                    return; // no provisioned workers for this id
                }
                let workers = self.cfg.workers_per_server;
                if self.membership.join(server, workers, now_ms).is_none() {
                    return; // already a member
                }
                let new_workers: Vec<WorkerAddr> =
                    (0..workers).map(|w| WorkerAddr::new(server.0, w)).collect();
                let moves = self.mapping.plan_grow(&new_workers);
                self.apply_member_moves(&moves, now_us);
                let _ = self.membership.mark_up(server);
            }
            MembershipAction::Drain { server } => {
                if self.membership.drain(server, now_ms).is_none() {
                    return; // not in a drainable state
                }
                let moves = self.mapping.plan_evacuate(server);
                self.apply_member_moves(&moves, now_us);
                let _ = self.membership.mark_left(server);
                self.purge_replicas_of(server);
            }
            MembershipAction::Kill { server } => {
                if !self.dead.contains(&server) {
                    self.dead.push(server);
                }
            }
        }
    }

    /// Commits planned grow/evacuate moves: the mapping flips and both
    /// endpoints pay the coordinated-transfer tax, exactly like a
    /// Phase 3 move (the data still has to cross the wire).
    fn apply_member_moves(&mut self, moves: &[PlannedMove], now_us: u64) {
        let tax = self.cfg.migration_tax_ms * 1_000;
        for &(cachelet, from, to) in moves {
            if self.mapping.move_cachelet(cachelet, to).is_none() {
                continue;
            }
            self.membership_moves += 1;
            let fi = self.widx(from);
            self.workers[fi].slow_until = self.workers[fi].slow_until.max(now_us + tax);
            let ti = self.widx(to);
            self.workers[ti].slow_until = self.workers[ti].slow_until.max(now_us + tax / 2);
        }
    }

    /// Drops replica targets hosted on `server` (its shadows are gone);
    /// entries left with only their home stop being replica sets.
    fn purge_replicas_of(&mut self, server: ServerId) {
        let wps = self.cfg.workers_per_server as usize;
        let lo = server.0 as usize * wps;
        let hi = lo + wps;
        self.replicas.retain(|_, (targets, _)| {
            targets.retain(|&t| t < lo || t >= hi);
            targets.len() > 1
        });
    }

    /// Per-phase balance event counts so far.
    pub fn phase_breakdown(&self) -> (usize, usize, usize) {
        let mut out = (0, 0, 0);
        for d in &self.drivers {
            for e in d.events().events() {
                match e.phase {
                    Phase::KeyReplication => out.0 += 1,
                    Phase::LocalMigration => out.1 += 1,
                    Phase::CoordinatedMigration => out.2 += 1,
                    Phase::Normal => {}
                }
            }
        }
        out
    }

    /// Number of keys currently replicated.
    pub fn replicated_keys(&self) -> usize {
        self.replicas.len()
    }

    /// Faults the network model has injected so far.
    pub fn injected_faults(&self) -> u64 {
        self.faults_injected
    }

    /// `(intra_zone, cross_zone)` coordinated-migration counts.
    pub fn zone_migration_counts(&self) -> (u64, u64) {
        (self.intra_zone_migrations, self.cross_zone_migrations)
    }

    /// The live mapping table (tests).
    pub fn mapping(&self) -> &MappingTable {
        &self.mapping
    }

    /// The cluster epoch of the scripted-membership detector (stays at
    /// its bootstrap value when no membership is scripted).
    pub fn cluster_epoch(&self) -> u64 {
        self.membership.epoch()
    }

    /// The membership view at virtual time `now_ms`.
    pub fn membership_view(&self, now_ms: u64) -> MembershipView {
        self.membership.view(now_ms)
    }

    /// Cachelet moves executed by scripted join/drain rebalances.
    pub fn membership_moves(&self) -> u64 {
        self.membership_moves
    }
}

fn key_id(key: &[u8]) -> u64 {
    mbal_core::hash::fnv1a64(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbal_workload::ycsb::Popularity;

    fn small_cfg(phases: PhaseSet) -> SimConfig {
        SimConfig {
            servers: 4,
            workers_per_server: 2,
            cachelets_per_worker: 4,
            vns: 256,
            clients: 8,
            concurrency: 4,
            epoch_ms: 200,
            window_ms: 500,
            phases,
            ..SimConfig::default()
        }
    }

    fn spec(read: f64, pop: Popularity) -> WorkloadSpec {
        WorkloadSpec {
            records: 10_000,
            read_fraction: read,
            popularity: pop,
            key_len: 16,
            value_len: 64,
            ttl_range_ms: (0, 0),
        }
    }

    #[test]
    fn uniform_load_completes_and_reports() {
        let mut sim = Simulation::new(small_cfg(PhaseSet::none()));
        let report = sim.run(&[(spec(0.95, Popularity::Uniform), 3_000)]);
        assert!(
            report.completed > 10_000,
            "only {} completed",
            report.completed
        );
        assert!(report.overall.p99_us > 0.0);
        assert!(report.throughput_kqps() > 1.0);
        assert!(!report.windows.is_empty());
    }

    #[test]
    fn concurrent_misses_coalesce_into_one_origin_fetch() {
        // Eight closed-loop slots hammer a single cold key behind a
        // slow origin: exactly one leader pays the fetch, the seven
        // readers that arrive inside its window coalesce as delayed
        // hits, and once the fill lands every later read is a plain
        // hit. Delayed-hit latency must sit strictly between the hit
        // and full-miss classes.
        let cfg = SimConfig {
            servers: 1,
            workers_per_server: 1,
            cachelets_per_worker: 4,
            vns: 64,
            clients: 8,
            concurrency: 1,
            origin_fetch_us: 200_000,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(cfg);
        let one_key = WorkloadSpec {
            records: 1,
            read_fraction: 1.0,
            popularity: Popularity::Uniform,
            key_len: 16,
            value_len: 64,
            ttl_range_ms: (0, 0),
        };
        let report = sim.run(&[(one_key, 2_000)]);

        assert_eq!(
            report.origin_fetches, 1,
            "eight concurrent misses must coalesce into exactly one fetch"
        );
        assert_eq!(
            report.delayed_hits, 7,
            "the seven followers ride the leader"
        );
        assert_eq!(report.miss_latency.count, 1);
        assert_eq!(report.delayed_hit_latency.count, 7);
        assert!(
            report.hit_latency.count > 100,
            "post-fill traffic must be plain hits: {}",
            report.hit_latency.count
        );
        // The ordering that defines the model: hit < delayed hit <
        // full miss (means are exact, immune to bucketing error).
        assert!(
            report.hit_latency.mean_us < report.delayed_hit_latency.mean_us,
            "hit {} vs delayed {}",
            report.hit_latency.mean_us,
            report.delayed_hit_latency.mean_us
        );
        assert!(
            report.delayed_hit_latency.mean_us < report.miss_latency.mean_us,
            "delayed {} vs miss {}",
            report.delayed_hit_latency.mean_us,
            report.miss_latency.mean_us
        );
        // A delayed hit still waits most of the origin fetch; a miss
        // pays at least the whole thing.
        assert!(report.delayed_hit_latency.mean_us > 150_000.0);
        assert!(report.miss_latency.mean_us >= 200_000.0);
        assert!(report.hit_latency.mean_us < 10_000.0);
    }

    #[test]
    fn origin_model_off_leaves_classes_empty() {
        let mut sim = Simulation::new(small_cfg(PhaseSet::none()));
        let report = sim.run(&[(spec(0.95, Popularity::Uniform), 1_000)]);
        assert_eq!(report.origin_fetches, 0);
        assert_eq!(report.delayed_hits, 0);
        assert_eq!(report.hit_latency.count, 0);
        assert_eq!(report.miss_latency.count, 0);
        assert_eq!(report.delayed_hit_latency.count, 0);
    }

    #[test]
    fn writes_fill_keys_and_suppress_misses() {
        // A write-heavy single-key run: the very first op decides the
        // story. If it is a write there is no miss at all; if a read
        // sneaks in first there is exactly one. Either way the origin
        // is touched at most once because writes fill the key.
        let cfg = SimConfig {
            servers: 1,
            workers_per_server: 1,
            cachelets_per_worker: 4,
            vns: 64,
            clients: 4,
            concurrency: 1,
            origin_fetch_us: 50_000,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(cfg);
        let writey = WorkloadSpec {
            records: 1,
            read_fraction: 0.5,
            popularity: Popularity::Uniform,
            key_len: 16,
            value_len: 64,
            ttl_range_ms: (0, 0),
        };
        let report = sim.run(&[(writey, 1_000)]);
        assert!(
            report.origin_fetches <= 1,
            "writes fill the key; at most the opening read misses: {}",
            report.origin_fetches
        );
        assert!(report.hit_latency.count > 50);
    }

    #[test]
    fn skew_hurts_tail_latency() {
        // Figure 2's effect: higher zipfian skew → worse p99 and lower
        // throughput, without any balancing.
        let run = |pop| {
            let mut sim = Simulation::new(small_cfg(PhaseSet::none()));
            sim.run(&[(spec(0.95, pop), 4_000)])
        };
        let unif = run(Popularity::Uniform);
        let skew = run(Popularity::Zipfian { theta: 0.99 });
        assert!(
            skew.overall.p99_us > unif.overall.p99_us * 1.2,
            "skewed p99 {} vs uniform {}",
            skew.overall.p99_us,
            unif.overall.p99_us
        );
        assert!(
            skew.completed < unif.completed,
            "skewed throughput {} must trail uniform {}",
            skew.completed,
            unif.completed
        );
    }

    #[test]
    fn phase1_relieves_hot_keys() {
        let hot = Popularity::Hotspot {
            hot_data: 0.001,
            hot_ops: 0.6,
        };
        let base = {
            let mut sim = Simulation::new(small_cfg(PhaseSet::none()));
            sim.run(&[(spec(1.0, hot), 5_000)])
        };
        let (p1, sim_p1) = {
            let mut sim = Simulation::new(small_cfg(PhaseSet::only_p1()));
            let r = sim.run(&[(spec(1.0, hot), 5_000)]);
            (r, sim.replicated_keys())
        };
        assert!(sim_p1 > 0, "replication never fired");
        assert!(
            p1.completed as f64 > base.completed as f64 * 1.02,
            "P1 {} vs base {}",
            p1.completed,
            base.completed
        );
    }

    #[test]
    fn phase2_rebalances_local_imbalance() {
        let pop = Popularity::Zipfian { theta: 0.99 };
        let base = {
            let mut sim = Simulation::new(small_cfg(PhaseSet::none()));
            sim.run(&[(spec(0.95, pop), 5_000)])
        };
        let p2 = {
            let mut sim = Simulation::new(small_cfg(PhaseSet::only_p2()));
            let r = sim.run(&[(spec(0.95, pop), 5_000)]);
            assert!(
                sim.phase_breakdown().1 > 0,
                "local migration never triggered"
            );
            r
        };
        assert!(
            p2.overall.p99_us < base.overall.p99_us * 1.05,
            "P2 p99 {} should not exceed baseline {}",
            p2.overall.p99_us,
            base.overall.p99_us
        );
    }

    #[test]
    fn zone_planning_keeps_migrations_local() {
        let mut cfg = small_cfg(PhaseSet::only_p3());
        cfg.zones = 2;
        cfg.zone_planning = true;
        let mut sim = Simulation::new(cfg);
        let _ = sim.run(&[(spec(0.95, Popularity::Zipfian { theta: 0.99 }), 5_000)]);
        let (intra, cross) = sim.zone_migration_counts();
        assert!(
            cross <= intra,
            "hierarchical planner went cross-zone too often: {intra} intra vs {cross} cross"
        );
    }

    #[test]
    fn flat_planning_counts_cross_zone_moves() {
        let mut cfg = small_cfg(PhaseSet::only_p3());
        cfg.zones = 4;
        cfg.zone_planning = false;
        let mut sim = Simulation::new(cfg);
        let _ = sim.run(&[(spec(0.95, Popularity::Zipfian { theta: 0.99 }), 5_000)]);
        let (intra, cross) = sim.zone_migration_counts();
        // With 4 zones and a flat planner, the least-loaded destination
        // is usually in another zone.
        assert!(
            intra + cross > 0,
            "no migrations happened at all — the scenario regressed"
        );
    }

    #[test]
    fn multiget_batching_amortizes_round_trips() {
        // §4.1 / Figure 5 effect: on an RTT-dominated network, shipping
        // eight keys per pipelined request completes far more ops than
        // one round-trip per key — the closed-loop clients spend the
        // same wall-clock waiting but each wait buys a whole batch.
        let mk = |batch| {
            let mut cfg = small_cfg(PhaseSet::none());
            cfg.rtt_us = 1_000.0;
            cfg.multiget_batch = batch;
            let mut sim = Simulation::new(cfg);
            sim.run(&[(spec(1.0, Popularity::Uniform), 3_000)])
                .completed
        };
        let serial = mk(1);
        let batched = mk(8);
        assert!(
            batched as f64 > serial as f64 * 2.0,
            "batched MultiGET {batched} should clearly beat serial {serial}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = Simulation::new(small_cfg(PhaseSet::all()));
            sim.run(&[(spec(0.9, Popularity::Zipfian { theta: 0.9 }), 2_000)])
                .completed
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fault_model_is_deterministic_and_degrades_service() {
        let run = |fault: Option<FaultPlan>| {
            let mut cfg = small_cfg(PhaseSet::none());
            cfg.fault = fault;
            let mut sim = Simulation::new(cfg);
            let r = sim.run(&[(spec(0.95, Popularity::Uniform), 3_000)]);
            (r.completed, r.overall.p99_us, sim.injected_faults())
        };
        let clean = run(None);
        assert_eq!(clean.2, 0, "no plan, no faults");
        let faulty = run(Some(FaultPlan::drops(7, 0.02)));
        assert!(faulty.2 > 0, "drops never fired");
        assert!(
            faulty.0 < clean.0,
            "drop RTOs must cost throughput: {} vs clean {}",
            faulty.0,
            clean.0
        );
        // Same plan seed → identical schedule and identical outcome.
        let replay = run(Some(FaultPlan::drops(7, 0.02)));
        assert_eq!(faulty, replay, "fault runs must replay exactly");
        // A different plan seed diverges even with the workload fixed.
        let other = run(Some(FaultPlan::drops(8, 0.02)));
        assert_ne!(faulty.0, other.0, "distinct seeds should diverge");
    }

    #[test]
    fn fault_budget_caps_injection() {
        let mut cfg = small_cfg(PhaseSet::none());
        let mut plan = FaultPlan::drops(3, 0.5);
        plan.max_faults = 25;
        cfg.fault = Some(plan);
        let mut sim = Simulation::new(cfg);
        let _ = sim.run(&[(spec(0.95, Popularity::Uniform), 2_000)]);
        assert_eq!(sim.injected_faults(), 25, "budget must cap the schedule");
    }

    #[test]
    fn scripted_join_grows_the_cluster() {
        let mut cfg = small_cfg(PhaseSet::none());
        // Server 3 is provisioned but starts outside the ring.
        cfg.initial_servers = Some(3);
        cfg.membership = vec![(
            1_000,
            MembershipAction::Join {
                server: ServerId(3),
            },
        )];
        let mut sim = Simulation::new(cfg);
        let epoch_before = sim.cluster_epoch();
        assert!(
            sim.mapping().workers().iter().all(|w| w.server.0 != 3),
            "spare server must start unmapped"
        );
        let report = sim.run(&[(spec(0.95, Popularity::Uniform), 3_000)]);
        assert!(report.completed > 0);
        assert!(
            sim.mapping().workers().iter().any(|w| w.server.0 == 3),
            "join must place cachelets on the new server"
        );
        assert!(sim.membership_moves() > 0, "grow plan must move cachelets");
        assert!(
            sim.cluster_epoch() >= epoch_before + 2,
            "join and became-up each bump the epoch"
        );
        assert_eq!(
            sim.membership_view(3_000).state_of(ServerId(3)),
            Some(NodeState::Up)
        );
    }

    #[test]
    fn scripted_drain_departs_cleanly() {
        let mut cfg = small_cfg(PhaseSet::none());
        cfg.membership = vec![(
            1_000,
            MembershipAction::Drain {
                server: ServerId(0),
            },
        )];
        let mut sim = Simulation::new(cfg);
        let report = sim.run(&[(spec(0.95, Popularity::Uniform), 3_000)]);
        assert!(report.completed > 0);
        assert_eq!(
            sim.membership_view(3_000).state_of(ServerId(0)),
            Some(NodeState::Left)
        );
        assert!(
            sim.mapping().workers().iter().all(|w| w.server.0 != 0),
            "evacuation must empty the drained server"
        );
        assert!(sim.membership_moves() > 0);
    }

    #[test]
    fn scripted_kill_is_detected_and_routed_around() {
        let mut cfg = small_cfg(PhaseSet::none());
        cfg.membership = vec![(
            500,
            MembershipAction::Kill {
                server: ServerId(3),
            },
        )];
        cfg.membership_cfg.suspect_after_ms = 400;
        cfg.membership_cfg.confirm_after_ms = 400;
        let mut sim = Simulation::new(cfg);
        let epoch_before = sim.cluster_epoch();
        let report = sim.run(&[(spec(0.95, Popularity::Uniform), 4_000)]);
        assert!(report.completed > 0);
        assert_eq!(
            sim.membership_view(4_000).state_of(ServerId(3)),
            Some(NodeState::Failed),
            "silenced heartbeats must walk the node Suspect → Failed"
        );
        assert!(
            sim.mapping().workers().iter().all(|w| w.server.0 != 3),
            "failed server's cachelets must be reassigned"
        );
        assert!(
            sim.cluster_epoch() > epoch_before,
            "failure bumps the epoch"
        );
    }

    #[test]
    fn kill_composes_with_network_faults_deterministically() {
        let run = || {
            let mut cfg = small_cfg(PhaseSet::none());
            cfg.fault = Some(FaultPlan::drops(11, 0.01));
            cfg.membership = vec![(
                500,
                MembershipAction::Kill {
                    server: ServerId(2),
                },
            )];
            cfg.membership_cfg.suspect_after_ms = 400;
            cfg.membership_cfg.confirm_after_ms = 400;
            let mut sim = Simulation::new(cfg);
            let r = sim.run(&[(spec(0.95, Popularity::Uniform), 3_000)]);
            (r.completed, sim.injected_faults(), sim.cluster_epoch())
        };
        let a = run();
        assert!(a.1 > 0, "network faults must fire alongside the kill");
        assert_eq!(
            a,
            run(),
            "composed fault+membership runs must replay exactly"
        );
    }

    #[test]
    fn global_lock_serializes_a_server() {
        let mk = |global_lock| {
            let mut cfg = small_cfg(PhaseSet::none());
            cfg.global_lock = global_lock;
            let mut sim = Simulation::new(cfg);
            sim.run(&[(spec(0.5, Popularity::Uniform), 3_000)])
                .completed
        };
        let mbal = mk(false);
        let memcached = mk(true);
        assert!(
            mbal as f64 > memcached as f64 * 1.3,
            "independent workers {mbal} must beat global lock {memcached}"
        );
    }
}
