//! Multicore contention simulator.
//!
//! The paper's single-machine scalability results (Figures 5–9) were
//! measured on 8- and 32-core hosts. When the reproduction runs on a
//! host with fewer cores, real thread sweeps cannot exhibit parallel
//! scaling, so we substitute a discrete-event model of N cores:
//!
//! - each simulated thread executes operations *closed-loop*;
//! - an operation is a sequence of [`Segment`]s — parallel compute, or
//!   a critical section on a named resource (the global cache lock, a
//!   bucket lock, the shared memory pool, …);
//! - resources grant FIFO by arrival; when a resource changes owner
//!   between cores, a cache-coherence handoff penalty is charged (the
//!   cross-core cacheline transfer that makes hot locks so expensive).
//!
//! Segment durations are **measured on the host** by running the real
//! single-threaded code paths (see `mbal-bench`); only the concurrency
//! is simulated. Lockless designs (MBal) have no critical segments and
//! scale linearly by construction — which is the paper's point; the
//! interesting output is where each *locking* design saturates.

use crate::engine::EventQueue;

/// One step of an operation.
#[derive(Debug, Clone, Copy)]
pub struct Segment {
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// `Some(resource)` runs under that resource's exclusive lock.
    pub resource: Option<u32>,
}

impl Segment {
    /// A parallel compute segment.
    pub fn parallel(dur_ns: u64) -> Self {
        Self {
            dur_ns,
            resource: None,
        }
    }

    /// A critical section on `resource`.
    pub fn critical(dur_ns: u64, resource: u32) -> Self {
        Self {
            dur_ns,
            resource: Some(resource),
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct CoreSimConfig {
    /// Simulated thread (= core) count.
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: u64,
    /// Cross-core cacheline handoff penalty charged when a resource's
    /// owner changes (ns). ~100–200 ns on commodity parts.
    pub handoff_ns: u64,
}

/// Runs the simulation. `op(thread, i, &mut segs)` fills the segment
/// sequence of the `i`-th operation of `thread` (the buffer is cleared
/// between calls). Returns throughput in MQPS.
pub fn run_coresim<F>(cfg: CoreSimConfig, mut op: F) -> f64
where
    F: FnMut(usize, u64, &mut Vec<Segment>),
{
    assert!(cfg.threads > 0, "need at least one simulated core");
    let mut queue: EventQueue<usize> = EventQueue::new();
    for t in 0..cfg.threads {
        queue.schedule(0, t);
    }
    let mut done = vec![0u64; cfg.threads];
    let mut resources: Vec<(u64, usize)> = Vec::new(); // (busy_until, owner)
    let mut segs = Vec::new();
    let mut end_time = 0u64;
    let mut remaining = cfg.threads;

    while let Some((t, thread)) = queue.pop() {
        if done[thread] >= cfg.ops_per_thread {
            continue;
        }
        segs.clear();
        op(thread, done[thread], &mut segs);
        let mut now = t;
        for s in &segs {
            match s.resource {
                None => now += s.dur_ns,
                Some(r) => {
                    let r = r as usize;
                    if r >= resources.len() {
                        resources.resize(r + 1, (0, usize::MAX));
                    }
                    let (busy, owner) = resources[r];
                    let start = busy.max(now);
                    let handoff = if owner != thread && owner != usize::MAX {
                        cfg.handoff_ns
                    } else {
                        0
                    };
                    let fin = start + handoff + s.dur_ns;
                    resources[r] = (fin, thread);
                    now = fin;
                }
            }
        }
        done[thread] += 1;
        if done[thread] == cfg.ops_per_thread {
            end_time = end_time.max(now);
            remaining -= 1;
            if remaining == 0 {
                break;
            }
        } else {
            queue.schedule(now.max(t + 1), thread);
        }
    }
    let total_ops = cfg.threads as u64 * cfg.ops_per_thread;
    if end_time == 0 {
        return 0.0;
    }
    total_ops as f64 / (end_time as f64 / 1e9) / 1e6
}

/// Convenience resource ids used by the bench harness.
pub mod resources {
    /// The Memcached-style global cache lock.
    pub const GLOBAL_LOCK: u32 = 0;
    /// The shared memory/free pool (Mercury, `MBal global lru`,
    /// jemalloc-like arena).
    pub const GLOBAL_POOL: u32 = 1;
    /// First of the bucket-lock resource ids; add `hash % N_BUCKET_LOCKS`.
    pub const BUCKET_BASE: u32 = 8;
    /// Number of simulated bucket locks (Mercury's fine-grained locks;
    /// modest so cross-core collisions exist, as they do on real parts).
    pub const N_BUCKET_LOCKS: u32 = 1_024;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threads: usize) -> CoreSimConfig {
        CoreSimConfig {
            threads,
            ops_per_thread: 20_000,
            handoff_ns: 150,
        }
    }

    #[test]
    fn lockless_scales_linearly() {
        let t1 = run_coresim(cfg(1), |_, _, s| s.push(Segment::parallel(300)));
        let t8 = run_coresim(cfg(8), |_, _, s| s.push(Segment::parallel(300)));
        assert!((t1 - 3.33).abs() < 0.2, "1-thread rate {t1}");
        assert!(
            (t8 / t1 - 8.0).abs() < 0.2,
            "lockless must scale 8x, got {:.2}x",
            t8 / t1
        );
    }

    #[test]
    fn global_lock_is_flat() {
        let op = |_: usize, _: u64, s: &mut Vec<Segment>| {
            s.push(Segment::critical(300, resources::GLOBAL_LOCK));
        };
        let t1 = run_coresim(cfg(1), op);
        let t8 = run_coresim(cfg(8), op);
        // With the handoff penalty, 8 threads are *slower* than 1 —
        // matching Memcached's measured behavior.
        assert!(t8 < t1 * 1.1, "global lock must not scale: {t1} -> {t8}");
    }

    #[test]
    fn partial_critical_section_caps_throughput() {
        // 100 ns parallel + 100 ns in the shared pool: cap ≈ 1/(100+150)
        // ns ≈ 4 MQPS regardless of thread count.
        let op = |_: usize, _: u64, s: &mut Vec<Segment>| {
            s.push(Segment::parallel(100));
            s.push(Segment::critical(100, resources::GLOBAL_POOL));
        };
        let t2 = run_coresim(cfg(2), op);
        let t16 = run_coresim(cfg(16), op);
        assert!(t16 < 4.3, "pool-bound cap exceeded: {t16}");
        assert!(t16 >= t2 * 0.8, "should hold near the cap, {t2} -> {t16}");
    }

    #[test]
    fn striped_locks_scale_until_collisions() {
        // Bucket-striped critical sections: near-linear at low thread
        // counts, sublinear as collisions appear.
        let op = |t: usize, i: u64, s: &mut Vec<Segment>| {
            let bucket = ((t as u64 * 7_919 + i) % resources::N_BUCKET_LOCKS as u64) as u32;
            s.push(Segment::parallel(150));
            s.push(Segment::critical(150, resources::BUCKET_BASE + bucket));
        };
        let t1 = run_coresim(cfg(1), op);
        let t8 = run_coresim(cfg(8), op);
        let speedup = t8 / t1;
        assert!(
            speedup > 4.0 && speedup <= 8.2,
            "striped speedup {speedup:.2} out of range"
        );
    }

    #[test]
    fn deterministic() {
        let op = |t: usize, i: u64, s: &mut Vec<Segment>| {
            s.push(Segment::parallel(100 + (t as u64 ^ i) % 50));
            s.push(Segment::critical(80, resources::GLOBAL_POOL));
        };
        let a = run_coresim(cfg(4), op);
        let b = run_coresim(cfg(4), op);
        assert_eq!(a, b);
    }
}
