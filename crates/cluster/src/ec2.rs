//! The EC2 instance catalogue (Table 1) and the Figure 1 cost model.
//!
//! Prices and specs are the paper's (US West – Oregon, Oct 10 2014);
//! network bandwidth is what the authors measured with Netperf. The
//! throughput model is calibrated to reproduce Figure 1's *shape*:
//!
//! - small instances (`m1.small`, `m3.medium`) are **CPU-bound** and
//!   scale linearly with cluster size at a low slope;
//! - the semi-powerful trio (`c3.large`, `m3.xlarge`, `c3.2xlarge`) has
//!   spare CPU but ≤1 Gbps NICs and converges to ≈1.1 MQPS at 20 nodes
//!   as the shared rack switch saturates (incast, §1);
//! - `c3.8xlarge` (10 GbE) roughly doubles that but pays multi-tenant
//!   interference, so performance-per-dollar collapses.

use serde::{Deserialize, Serialize};

/// One EC2 instance type (a Table 1 row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// API name.
    pub name: &'static str,
    /// Virtual CPUs.
    pub vcpus: u32,
    /// Memory in GiB.
    pub memory_gb: f64,
    /// Measured network bandwidth in Gbps.
    pub network_gbps: f64,
    /// On-demand price in $/hour.
    pub cost_per_hour: f64,
    /// Calibrated per-vCPU cache throughput in KQPS (small objects,
    /// 95% GET). Differs across families because ECUs differ.
    pub kqps_per_vcpu: f64,
}

/// The Table 1 catalogue.
pub const INSTANCES: [InstanceType; 6] = [
    InstanceType {
        name: "m1.small",
        vcpus: 1,
        memory_gb: 1.7,
        network_gbps: 0.1,
        cost_per_hour: 0.044,
        kqps_per_vcpu: 8.0,
    },
    InstanceType {
        name: "m3.medium",
        vcpus: 1,
        memory_gb: 3.75,
        network_gbps: 0.5,
        cost_per_hour: 0.07,
        kqps_per_vcpu: 32.0,
    },
    InstanceType {
        name: "c3.large",
        vcpus: 2,
        memory_gb: 3.75,
        network_gbps: 0.6,
        cost_per_hour: 0.105,
        kqps_per_vcpu: 45.0,
    },
    InstanceType {
        name: "m3.xlarge",
        vcpus: 4,
        memory_gb: 15.0,
        network_gbps: 0.7,
        cost_per_hour: 0.28,
        kqps_per_vcpu: 40.0,
    },
    InstanceType {
        name: "c3.2xlarge",
        vcpus: 8,
        memory_gb: 15.0,
        network_gbps: 1.0,
        cost_per_hour: 0.42,
        kqps_per_vcpu: 45.0,
    },
    InstanceType {
        name: "c3.8xlarge",
        vcpus: 32,
        memory_gb: 60.0,
        network_gbps: 10.0,
        cost_per_hour: 1.68,
        kqps_per_vcpu: 45.0,
    },
];

/// Effective wire cost per request in kilobits, calibrated so a
/// 0.6-Gbps NIC saturates near 55 KQPS (the Figure 1 convergence point
/// divided by 20 nodes): protocol framing, TCP/IP overhead and
/// imperfect batching make the effective footprint ≈1.3 KB per request.
pub const KBITS_PER_REQUEST: f64 = 10.9;

/// Shared rack-switch capacity in Gbps — the incast bottleneck that
/// caps the semi-powerful instances' aggregate near 1.1 MQPS.
pub const SWITCH_GBPS: f64 = 12.0;

/// Multi-tenant interference: fraction of nominal capacity actually
/// achievable, shrinking with instance size (the paper's observation
/// that even c3.8xlarge "does not scale well with the increase in
/// resource capacity").
fn tenancy_efficiency(inst: &InstanceType) -> f64 {
    match inst.vcpus {
        0..=2 => 1.0,
        3..=8 => 0.92,
        _ => 0.68,
    }
}

/// Effective NIC utilization: 10 GbE instances achieve well under their
/// line rate for small-object RPC (many-to-many congestion, interrupt
/// pressure); ≤1 Gbps NICs are assumed fully usable.
fn nic_efficiency(inst: &InstanceType) -> f64 {
    if inst.network_gbps >= 10.0 {
        0.45
    } else {
        1.0
    }
}

/// Peak aggregate throughput (KQPS) of a cluster of `n` nodes of type
/// `inst` under the 95% GET workload of Figure 1.
pub fn cluster_kqps(inst: &InstanceType, n: u32) -> f64 {
    let cpu_cap = inst.kqps_per_vcpu * inst.vcpus as f64 * n as f64;
    let nic_cap =
        inst.network_gbps * nic_efficiency(inst) * 1e6 / KBITS_PER_REQUEST * n as f64 / 1e3;
    let switch_cap = SWITCH_GBPS * 1e6 / KBITS_PER_REQUEST / 1e3
        * if inst.network_gbps >= 10.0 { 2.4 } else { 1.0 };
    // Small clusters do not stress the switch; the cap phases in.
    let switch_eff = if n <= 5 { switch_cap * 2.0 } else { switch_cap };
    cpu_cap.min(nic_cap).min(switch_eff) * tenancy_efficiency(inst)
}

/// Figure 1(b): throughput per dollar (KQPS/$ per hour of cluster).
pub fn kqps_per_dollar(inst: &InstanceType, n: u32) -> f64 {
    cluster_kqps(inst, n) / (inst.cost_per_hour * n as f64)
}

/// Looks up an instance by name.
pub fn instance(name: &str) -> Option<&'static InstanceType> {
    INSTANCES.iter().find(|i| i.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_matches_table1() {
        assert_eq!(INSTANCES.len(), 6);
        let c3l = instance("c3.large").expect("exists");
        assert_eq!(c3l.vcpus, 2);
        assert!((c3l.cost_per_hour - 0.105).abs() < 1e-9);
        assert!((instance("c3.8xlarge").expect("exists").network_gbps - 10.0).abs() < 1e-9);
        assert!(instance("m2.huge").is_none());
    }

    #[test]
    fn small_instances_are_cpu_bound_and_scale_linearly() {
        let m1 = instance("m1.small").expect("exists");
        let t1 = cluster_kqps(m1, 1);
        let t20 = cluster_kqps(m1, 20);
        assert!(
            (t20 / t1 - 20.0).abs() < 0.5,
            "m1.small must scale ~linearly"
        );
        // CPU-bound: below its NIC cap.
        assert!(t1 < m1.network_gbps * 1e3 / KBITS_PER_REQUEST * 1e3);
    }

    #[test]
    fn semi_powerful_instances_converge_at_20_nodes() {
        // The paper's headline: c3.large, m3.xlarge, c3.2xlarge all land
        // near 1.1 MQPS at 20 nodes.
        let mut vals = Vec::new();
        for name in ["c3.large", "m3.xlarge", "c3.2xlarge"] {
            vals.push(cluster_kqps(instance(name).expect("exists"), 20));
        }
        for &v in &vals {
            assert!(
                (900.0..=1_300.0).contains(&v),
                "semi-powerful 20-node cluster at {v} KQPS, expected ≈1100"
            );
        }
        let spread = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - vals.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 250.0, "convergence spread {spread}");
    }

    #[test]
    fn ten_gig_instance_roughly_doubles_but_underdelivers() {
        let big = instance("c3.8xlarge").expect("exists");
        let t20 = cluster_kqps(big, 20);
        let semi = cluster_kqps(instance("c3.2xlarge").expect("exists"), 20);
        assert!(
            t20 > 1.6 * semi,
            "10 GbE must clearly beat 1 GbE: {t20} vs {semi}"
        );
        assert!(t20 < 3.0 * semi, "but nowhere near its 10× NIC ratio");
    }

    #[test]
    fn c3_large_wins_cost_efficiency() {
        // Figure 1(b): cheap-but-capable c3.large has the best KQPS/$;
        // c3.8xlarge has poor return on investment.
        for n in [1u32, 5, 10, 20] {
            let c3l = kqps_per_dollar(instance("c3.large").expect("e"), n);
            let big = kqps_per_dollar(instance("c3.8xlarge").expect("e"), n);
            assert!(
                c3l > 2.0 * big,
                "n={n}: c3.large {c3l:.0} KQPS/$ vs c3.8xlarge {big:.0}"
            );
            let m1 = kqps_per_dollar(instance("m1.small").expect("e"), n);
            assert!(c3l > m1, "n={n}: c3.large must beat m1.small per dollar");
        }
    }
}
