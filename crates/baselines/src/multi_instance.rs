//! The multi-instance baseline (`Multi-inst Mc`, §2.5 and Figures 7–8).
//!
//! N independent single-threaded cache instances, statically sharded by
//! key hash on the client side. Each instance's lock is effectively
//! uncontended when each benchmark thread drives "its" instance — this is
//! the deployment that scales Memcached but that §2.5 argues against
//! (static memory partitioning, no cross-instance rebalancing, higher
//! management cost).

use crate::owned::OwnedShard;
use crate::ConcurrentCache;
use mbal_core::hash::shard_hash;
use mbal_core::store::{MallocStore, StaticStore, ValueStore};
use mbal_core::types::CacheError;
use parking_lot::Mutex;

/// N single-threaded instances with client-side sharding.
pub struct MultiInstance<S: ValueStore> {
    instances: Vec<Mutex<OwnedShard<S>>>,
}

impl MultiInstance<MallocStore> {
    /// Instances allocating per-request from the heap
    /// (`Multi-inst Mc(malloc)`), `capacity` split statically.
    pub fn with_malloc(n: usize, capacity: usize) -> Self {
        assert!(n > 0, "need at least one instance");
        Self {
            instances: (0..n)
                .map(|_| Mutex::new(OwnedShard::with_malloc(capacity / n)))
                .collect(),
        }
    }
}

impl MultiInstance<StaticStore> {
    /// Instances with statically preallocated slots
    /// (`Multi-inst Mc(static)`). `capacity` is split into fixed
    /// `slot_size` slots per instance — memory is committed up front
    /// whether used or not (the under-utilization §2.5 points out).
    pub fn with_static(n: usize, capacity: usize, slot_size: usize) -> Self {
        assert!(n > 0, "need at least one instance");
        let slots = (capacity / n / slot_size).max(1);
        Self {
            instances: (0..n)
                .map(|_| Mutex::new(OwnedShard::with_static(slots, slot_size)))
                .collect(),
        }
    }
}

impl<S: ValueStore> MultiInstance<S> {
    /// Number of instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// The instance index `key` shards to.
    pub fn instance_of(&self, key: &[u8]) -> usize {
        (shard_hash(key) % self.instances.len() as u64) as usize
    }

    /// Runs `f` against instance `idx` directly — benchmark threads pin
    /// themselves to one instance this way, modelling one process per
    /// core with no lock contention.
    pub fn with_instance<T>(&self, idx: usize, f: impl FnOnce(&mut OwnedShard<S>) -> T) -> T {
        f(&mut self.instances[idx].lock())
    }
}

impl<S: ValueStore + Send> ConcurrentCache for MultiInstance<S> {
    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.instances[self.instance_of(key)].lock().get(key)
    }

    fn set(&self, key: &[u8], value: &[u8]) -> Result<(), CacheError> {
        self.instances[self.instance_of(key)]
            .lock()
            .set(key, value)
            .map(|_| ())
    }

    fn delete(&self, key: &[u8]) -> bool {
        self.instances[self.instance_of(key)].lock().delete(key)
    }

    fn len(&self) -> usize {
        self.instances.iter().map(|i| i.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_is_stable_and_total() {
        let m = MultiInstance::with_malloc(8, 8 << 20);
        for i in 0..100 {
            let k = format!("key{i}");
            let a = m.instance_of(k.as_bytes());
            let b = m.instance_of(k.as_bytes());
            assert_eq!(a, b);
            assert!(a < 8);
        }
    }

    #[test]
    fn roundtrip_through_sharding() {
        let m = MultiInstance::with_malloc(4, 4 << 20);
        for i in 0..1_000u32 {
            let k = format!("key{i}");
            m.set(k.as_bytes(), &i.to_le_bytes()).expect("set");
        }
        assert_eq!(m.len(), 1_000);
        for i in 0..1_000u32 {
            let k = format!("key{i}");
            assert_eq!(m.get(k.as_bytes()).expect("hit"), i.to_le_bytes());
        }
    }

    #[test]
    fn static_instances_cap_memory_individually() {
        // 4 instances × 4 slots of 128 B each.
        let m = MultiInstance::with_static(4, 4 * 4 * 128, 128);
        for i in 0..200u32 {
            m.set(format!("key{i:04}").as_bytes(), &[0u8; 64])
                .expect("set");
        }
        assert!(m.len() <= 16, "len {} exceeds static slots", m.len());
    }

    #[test]
    fn skewed_keys_overload_one_instance() {
        // The §2.5 weakness: hot keys sharded to one instance cannot be
        // rebalanced. Verify the imbalance is observable.
        let m = MultiInstance::with_malloc(4, 4 << 20);
        // All writes to keys that shard to the same instance.
        let target = m.instance_of(b"hot0");
        let mut placed = 0;
        let mut i = 0u32;
        while placed < 100 {
            let k = format!("hot{i}");
            if m.instance_of(k.as_bytes()) == target {
                m.set(k.as_bytes(), b"v").expect("set");
                placed += 1;
            }
            i += 1;
        }
        let per_instance: Vec<usize> = (0..4)
            .map(|idx| m.with_instance(idx, |s| s.len()))
            .collect();
        assert_eq!(per_instance[target], 100);
        assert_eq!(per_instance.iter().sum::<usize>(), 100);
    }
}
