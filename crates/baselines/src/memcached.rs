//! The Memcached-v1.4-like baseline: one global lock.
//!
//! Memcached 1.4 serializes hash-table access, LRU maintenance and slab
//! free-list manipulation behind a global cache lock. We reproduce that
//! contention structure exactly: a single [`parking_lot::Mutex`] guards
//! the table, the LRU (embedded in the table) and the value store, so
//! every GET and SET from every thread takes the same lock.

use crate::ConcurrentCache;
use mbal_core::store::MallocStore;
use mbal_core::table::HashTable;
use mbal_core::types::CacheError;
use parking_lot::Mutex;

struct Inner {
    table: HashTable,
    store: MallocStore,
}

/// A global-lock cache modelled on stock Memcached.
pub struct MemcachedLike {
    inner: Mutex<Inner>,
}

impl MemcachedLike {
    /// Creates a cache with a `capacity`-byte value budget.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                table: HashTable::new(1 << 12),
                store: MallocStore::new(capacity),
            }),
        }
    }

    /// LRU evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().table.stats().evictions
    }
}

impl ConcurrentCache for MemcachedLike {
    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let mut g = self.inner.lock();
        let Inner { table, store } = &mut *g;
        table.get(key, store, 0).map(|c| c.to_vec())
    }

    fn set(&self, key: &[u8], value: &[u8]) -> Result<(), CacheError> {
        let mut g = self.inner.lock();
        let Inner { table, store } = &mut *g;
        table.set(key, value, store, 0, 0).map(|_| ())
    }

    fn delete(&self, key: &[u8]) -> bool {
        let mut g = self.inner.lock();
        let Inner { table, store } = &mut *g;
        table.delete(key, store, 0)
    }

    fn len(&self) -> usize {
        self.inner.lock().table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_roundtrip() {
        let c = MemcachedLike::new(1 << 20);
        c.set(b"k", b"v").expect("set");
        assert_eq!(c.get(b"k").expect("hit"), b"v");
        assert!(c.delete(b"k"));
        assert!(c.is_empty());
    }

    #[test]
    fn eviction_under_pressure() {
        let c = MemcachedLike::new(1_000);
        for i in 0..100u32 {
            c.set(format!("k{i}").as_bytes(), &[0u8; 100]).expect("set");
        }
        assert!(c.evictions() > 0);
        assert!(c.len() <= 10);
    }

    #[test]
    fn concurrent_threads_stay_consistent() {
        let c = Arc::new(MemcachedLike::new(16 << 20));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..2_000u32 {
                        let key = format!("t{t}:k{i}");
                        c.set(key.as_bytes(), &i.to_le_bytes()).expect("set");
                        assert_eq!(c.get(key.as_bytes()).expect("hit"), i.to_le_bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panic");
        }
        assert_eq!(c.len(), 8_000);
    }
}
