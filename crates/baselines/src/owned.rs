//! A single-owner cache shard: one hash table plus one value store.
//!
//! This is the building block for the multi-instance baseline (each
//! instance is one `OwnedShard` behind its own thread) and for
//! per-thread microbenchmarks of MBal's lockless fast path.

use mbal_core::store::{MallocStore, StaticStore, ValueStore};
use mbal_core::table::{HashTable, SetOutcome};
use mbal_core::types::CacheError;

/// A cache shard owned by exactly one thread.
#[derive(Debug)]
pub struct OwnedShard<S: ValueStore> {
    table: HashTable,
    store: S,
    now_ms: u64,
}

impl OwnedShard<MallocStore> {
    /// A shard whose values are individually heap-allocated (the
    /// `malloc` configuration of Figure 8), budgeted to `capacity` bytes.
    pub fn with_malloc(capacity: usize) -> Self {
        Self::new(MallocStore::new(capacity))
    }
}

impl OwnedShard<StaticStore> {
    /// A shard with statically preallocated fixed-size slots (the
    /// `static` configuration of Figure 8).
    pub fn with_static(slots: usize, slot_size: usize) -> Self {
        Self::new(StaticStore::new(slots, slot_size))
    }
}

impl<S: ValueStore> OwnedShard<S> {
    /// Wraps an arbitrary value store.
    pub fn new(store: S) -> Self {
        Self {
            table: HashTable::new(1 << 10),
            store,
            now_ms: 0,
        }
    }

    /// Advances the shard's logical clock (drives TTL expiry).
    pub fn set_now_ms(&mut self, now_ms: u64) {
        self.now_ms = now_ms;
    }

    /// Looks up `key`.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.table
            .get(key, &mut self.store, self.now_ms)
            .map(|c| c.to_vec())
    }

    /// Inserts or replaces `key` → `value`, evicting LRU entries on
    /// memory pressure.
    pub fn set(&mut self, key: &[u8], value: &[u8]) -> Result<SetOutcome, CacheError> {
        self.table.set(key, value, &mut self.store, self.now_ms, 0)
    }

    /// Deletes `key`.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        self.table.delete(key, &mut self.store, self.now_ms)
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Access to the underlying store (statistics).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Access to the underlying table (statistics).
    pub fn table(&self) -> &HashTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malloc_shard_roundtrip() {
        let mut s = OwnedShard::with_malloc(1 << 20);
        s.set(b"a", b"1").expect("set");
        assert_eq!(s.get(b"a").expect("hit"), b"1");
        assert!(s.delete(b"a"));
        assert!(s.is_empty());
    }

    #[test]
    fn static_shard_evicts_when_slots_exhaust() {
        let mut s = OwnedShard::with_static(4, 64);
        for i in 0..10u32 {
            s.set(format!("k{i}").as_bytes(), &[0u8; 32]).expect("set");
        }
        assert_eq!(s.len(), 4, "older entries evicted to fit slots");
        assert!(s.get(b"k9").is_some());
    }

    #[test]
    fn ttl_clock_advances() {
        let mut s = OwnedShard::with_malloc(1 << 20);
        s.set(b"k", b"v").expect("set");
        s.set_now_ms(10_000);
        // No TTL set, so the key survives arbitrary time.
        assert!(s.get(b"k").is_some());
    }
}
