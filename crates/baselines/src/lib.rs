//! # mbal-baselines
//!
//! From-scratch reimplementations of the systems the paper compares MBal
//! against (§4.1). Each baseline reproduces the *contention structure*
//! the paper attributes its performance to:
//!
//! - [`memcached`] — a Memcached-v1.4-like cache: one global lock covers
//!   the hash table, the LRU list and the slab free lists, so every
//!   operation serializes ("suffers from global lock contention,
//!   resulting in poor performance on a single server").
//! - [`mercury`] — a Mercury-like cache (Gandhi et al., SYSTOR'13):
//!   fine-grained bucket-level locking over the hash table (cache-line
//!   co-located bucket locks), but freed memory returns to a **global**
//!   free pool, so write-heavy workloads still serialize on the allocator
//!   — the reason MBal beats it 12× on SET (Figure 5(b)).
//! - [`multi_instance`] — N independent single-threaded cache instances
//!   with client-side sharding (`Multi-inst Mc` in Figures 7–8), the
//!   deployment §2.5 argues against.
//! - [`owned`] — a single-owner cache shard (hash table + value store)
//!   used by the multi-instance harness and by per-thread MBal
//!   microbenchmarks.
//!
//! All multi-threaded baselines implement [`ConcurrentCache`] so the
//! bench harness drives them interchangeably.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod memcached;
pub mod mercury;
pub mod multi_instance;
pub mod owned;

pub use memcached::MemcachedLike;
pub use mercury::MercuryLike;
pub use multi_instance::MultiInstance;
pub use owned::OwnedShard;

use mbal_core::types::CacheError;

/// A thread-safe cache facade shared across load-generating threads.
pub trait ConcurrentCache: Send + Sync {
    /// Looks up `key`.
    fn get(&self, key: &[u8]) -> Option<Vec<u8>>;

    /// Inserts or replaces `key` → `value`.
    fn set(&self, key: &[u8], value: &[u8]) -> Result<(), CacheError>;

    /// Deletes `key`, returning whether it existed.
    fn delete(&self, key: &[u8]) -> bool;

    /// Number of live entries.
    fn len(&self) -> usize;

    /// Returns `true` when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
