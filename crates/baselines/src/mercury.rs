//! The Mercury-like baseline: bucket-level locks, global free pool.
//!
//! Mercury (Gandhi et al., SYSTOR'13) improves on Memcached with
//! fine-grained bucket locking — each bucket lock is co-located with its
//! cache-line-aligned hash-table entry, so a GET takes one rarely
//! contended lock. But freed value memory still returns to a **global**
//! free pool, so SET-heavy workloads serialize on the allocator; this is
//! the asymmetry behind MBal's 2.3× GET vs 12× SET advantage (Figure 5).
//!
//! We model the bucket locks as a generous array of shard locks (4096 by
//! default — far more shards than threads, so lock collisions are as rare
//! as bucket-lock collisions) and route every allocation and free through
//! one shared free-pool mutex.

use crate::ConcurrentCache;
use mbal_core::hash::bucket_hash;
use mbal_core::store::{MallocStore, ValueStore};
use mbal_core::table::HashTable;
use mbal_core::types::CacheError;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default number of lock shards (proxy for per-bucket locks).
pub const DEFAULT_SHARDS: usize = 4_096;

/// The global free pool every alloc/free synchronizes on.
///
/// It genuinely recycles freed buffers (size-bucketed), like Memcached's
/// slab free lists — the point is that the recycling is *shared*, so the
/// mutex is hot under writes.
#[derive(Debug, Default)]
struct GlobalFreePool {
    /// Freed buffers bucketed by power-of-two size class.
    freed: Vec<Vec<Box<[u8]>>>,
    frees: u64,
    allocs: u64,
}

impl GlobalFreePool {
    fn new() -> Self {
        Self {
            freed: (0..32).map(|_| Vec::new()).collect(),
            frees: 0,
            allocs: 0,
        }
    }

    fn class(len: usize) -> usize {
        (usize::BITS - len.max(1).leading_zeros()) as usize
    }

    fn take(&mut self, len: usize) -> Option<Box<[u8]>> {
        self.allocs += 1;
        self.freed[Self::class(len)].pop()
    }

    fn put(&mut self, buf: Box<[u8]>) {
        self.frees += 1;
        let c = Self::class(buf.len());
        if self.freed[c].len() < 65_536 {
            self.freed[c].push(buf);
        }
    }
}

struct Shard {
    table: HashTable,
    store: MallocStore,
}

/// A Mercury-like cache: sharded table locks + one global memory pool.
pub struct MercuryLike {
    shards: Vec<Mutex<Shard>>,
    pool: Mutex<GlobalFreePool>,
    capacity_per_shard: usize,
    pool_ops: AtomicU64,
}

impl MercuryLike {
    /// Creates a cache with `capacity` total bytes and
    /// [`DEFAULT_SHARDS`] lock shards.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// Creates a cache with an explicit shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        table: HashTable::new(64),
                        store: MallocStore::new(usize::MAX),
                    })
                })
                .collect(),
            pool: Mutex::new(GlobalFreePool::new()),
            capacity_per_shard: (capacity / shards).max(1),
            pool_ops: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &[u8]) -> usize {
        // Use the high bits so shard choice is independent of the
        // in-table bucket choice (which uses the low bits).
        ((bucket_hash(key) >> 48) as usize) % self.shards.len()
    }

    /// Pool mutex acquisitions (contention diagnostic).
    pub fn pool_ops(&self) -> u64 {
        self.pool_ops.load(Ordering::Relaxed)
    }

    fn pool_alloc(&self, len: usize) -> Option<Box<[u8]>> {
        self.pool_ops.fetch_add(1, Ordering::Relaxed);
        self.pool.lock().take(len)
    }

    fn pool_free(&self, buf: Box<[u8]>) {
        self.pool_ops.fetch_add(1, Ordering::Relaxed);
        self.pool.lock().put(buf);
    }
}

impl ConcurrentCache for MercuryLike {
    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let mut g = self.shards[self.shard_of(key)].lock();
        let Shard { table, store } = &mut *g;
        table.get(key, store, 0).map(|c| c.to_vec())
    }

    fn set(&self, key: &[u8], value: &[u8]) -> Result<(), CacheError> {
        // Every SET pays a round trip through the global pool: one take
        // (buffer reuse attempt) and, when replacing/evicting, one put.
        // This mirrors Mercury pushing freed memory back into the global
        // pool "similarly as in Memcached" (§4.1).
        let recycled = self.pool_alloc(value.len());
        let mut g = self.shards[self.shard_of(key)].lock();
        let Shard { table, store } = &mut *g;
        // Track whether the shard grew past its budget; if so evict LRU
        // and return the evicted buffer to the global pool.
        let r = table.set(key, value, store, 0, 0).map(|_| ());
        let mut give_back = Vec::new();
        while store.used_bytes() > self.capacity_per_shard {
            // Capture the victim's bytes so the free pool sees them.
            if let Some(victim) = table.lru_victim().map(|k| k.to_vec()) {
                if let Some(v) = table.get(&victim, store, 0).map(|c| c.to_vec()) {
                    give_back.push(v.into_boxed_slice());
                }
                table.delete(&victim, store, 0);
            } else {
                break;
            }
        }
        drop(g);
        if let Some(buf) = recycled {
            // Reuse is modelled: the buffer's trip through the pool is the
            // contention we care about; drop it here.
            drop(buf);
        }
        for buf in give_back {
            self.pool_free(buf);
        }
        r
    }

    fn delete(&self, key: &[u8]) -> bool {
        let mut g = self.shards[self.shard_of(key)].lock();
        let Shard { table, store } = &mut *g;
        match table.get(key, store, 0).map(|c| c.to_vec()) {
            Some(v) => {
                table.delete(key, store, 0);
                drop(g);
                self.pool_free(v.into_boxed_slice());
                true
            }
            None => false,
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().table.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_roundtrip() {
        let c = MercuryLike::new(1 << 20);
        c.set(b"k", b"v").expect("set");
        assert_eq!(c.get(b"k").expect("hit"), b"v");
        assert!(c.delete(b"k"));
        assert!(!c.delete(b"k"));
    }

    #[test]
    fn sets_touch_the_global_pool() {
        let c = MercuryLike::new(1 << 20);
        for i in 0..100u32 {
            c.set(format!("k{i}").as_bytes(), &[1u8; 64]).expect("set");
        }
        assert!(c.pool_ops() >= 100, "every SET must hit the pool mutex");
    }

    #[test]
    fn capacity_is_enforced_per_shard() {
        let c = MercuryLike::with_shards(8_192, 4);
        for i in 0..1_000u32 {
            c.set(format!("k{i:06}").as_bytes(), &[0u8; 512])
                .expect("set");
        }
        // 8 KiB over 4 shards at 512 B values → about 4 live per shard.
        assert!(c.len() <= 4 * 5, "len {} exceeds budget slack", c.len());
    }

    #[test]
    fn concurrent_mixed_workload() {
        let c = Arc::new(MercuryLike::new(32 << 20));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..2_000u32 {
                        let key = format!("t{t}:k{i}");
                        c.set(key.as_bytes(), &i.to_le_bytes()).expect("set");
                        assert_eq!(c.get(key.as_bytes()).expect("hit"), i.to_le_bytes());
                        if i % 3 == 0 {
                            assert!(c.delete(key.as_bytes()));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panic");
        }
    }
}
