//! Dense two-phase primal simplex.
//!
//! Solves `minimize cᵀx subject to Ax {≤,≥,=} b, x ≥ 0` after translating
//! a [`Model`] into standard form:
//!
//! - continuous variables with `lo ≠ 0` are shifted so every variable has
//!   a zero lower bound; finite upper bounds (and the implicit `x ≤ 1` of
//!   relaxed binaries) become explicit `≤` rows;
//! - `≤` rows get slack variables, `≥` rows surplus + artificial, and `=`
//!   rows artificial variables;
//! - phase 1 minimizes the artificial sum; phase 2 the real objective.
//!
//! Pivoting uses Bland's rule, which guarantees termination.

use crate::model::{Model, Sense, VarKind};

/// Numeric tolerance.
const EPS: f64 = 1e-9;

/// LP solver outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal(LpSolution),
    /// The constraints are infeasible.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The iteration budget ran out (pathological; Bland's rule cannot
    /// cycle but the budget still bounds runtime).
    IterLimit,
}

/// An LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Variable assignment in model space.
    pub values: Vec<f64>,
}

struct Tableau {
    /// `rows × cols` coefficient matrix; the last column is `b`.
    a: Vec<Vec<f64>>,
    /// Objective row (phase-dependent), last element is `-z`.
    obj: Vec<f64>,
    /// Basis variable per row.
    basis: Vec<usize>,
    cols: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.a[row][col];
        debug_assert!(p.abs() > EPS, "pivot on ~zero");
        for v in self.a[row].iter_mut() {
            *v /= p;
        }
        let pivot_row = self.a[row].clone();
        for (r, arow) in self.a.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let f = arow[col];
            if f.abs() > EPS {
                for (v, pv) in arow.iter_mut().zip(&pivot_row) {
                    *v -= f * pv;
                }
            }
        }
        let f = self.obj[col];
        if f.abs() > EPS {
            for (v, pv) in self.obj.iter_mut().zip(&pivot_row) {
                *v -= f * pv;
            }
        }
        self.basis[row] = col;
    }

    /// Runs simplex iterations until optimal / unbounded / budget.
    fn run(&mut self, max_iters: usize) -> SimplexStatus {
        for _ in 0..max_iters {
            // Bland's rule: entering variable = lowest index with negative
            // reduced cost.
            let Some(col) = (0..self.cols - 1).find(|&c| self.obj[c] < -EPS) else {
                return SimplexStatus::Optimal;
            };
            // Ratio test; Bland tie-break on the smallest basis index.
            let mut best: Option<(usize, f64)> = None;
            for r in 0..self.a.len() {
                let arc = self.a[r][col];
                if arc > EPS {
                    let ratio = self.a[r][self.cols - 1] / arc;
                    match best {
                        None => best = Some((r, ratio)),
                        Some((br, bratio)) => {
                            if ratio < bratio - EPS
                                || ((ratio - bratio).abs() <= EPS && self.basis[r] < self.basis[br])
                            {
                                best = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            match best {
                Some((row, _)) => self.pivot(row, col),
                None => return SimplexStatus::Unbounded,
            }
        }
        SimplexStatus::IterLimit
    }
}

enum SimplexStatus {
    Optimal,
    Unbounded,
    IterLimit,
}

/// Solves the LP relaxation of `model`. Binary variables are relaxed to
/// `[0, 1]`; `extra_le` rows (used by branch & bound to pin variables)
/// are appended as `x_i ≤ rhs` / `x_i ≥ rhs` bounds expressed as
/// constraints.
pub fn solve_lp(model: &Model, extra: &[(usize, Sense, f64)]) -> LpOutcome {
    let n = model.num_vars();

    // Shift for non-zero lower bounds: x = y + lo, y ≥ 0.
    let mut shift = vec![0.0; n];
    let mut upper = vec![f64::INFINITY; n];
    for (i, k) in model.kinds().iter().enumerate() {
        match *k {
            VarKind::Binary => upper[i] = 1.0,
            VarKind::Continuous { lo, hi } => {
                shift[i] = lo;
                upper[i] = hi - lo;
            }
        }
    }

    // Build rows: model constraints (rhs adjusted by shifts), upper
    // bounds, extra branch rows.
    struct Row {
        coeffs: Vec<f64>,
        sense: Sense,
        rhs: f64,
    }
    let mut rows = Vec::new();
    for c in model.constraints() {
        let mut coeffs = vec![0.0; n];
        let mut rhs = c.rhs;
        for &(v, coef) in &c.terms {
            coeffs[v] += coef;
            rhs -= coef * shift[v];
        }
        rows.push(Row {
            coeffs,
            sense: c.sense,
            rhs,
        });
    }
    for (i, &u) in upper.iter().enumerate() {
        if u.is_finite() {
            let mut coeffs = vec![0.0; n];
            coeffs[i] = 1.0;
            rows.push(Row {
                coeffs,
                sense: Sense::Le,
                rhs: u,
            });
        }
    }
    for &(v, sense, rhs) in extra {
        let mut coeffs = vec![0.0; n];
        coeffs[v] = 1.0;
        rows.push(Row {
            coeffs,
            sense,
            rhs: rhs - shift[v],
        });
    }

    // Normalize to b ≥ 0.
    for r in rows.iter_mut() {
        if r.rhs < 0.0 {
            for c in r.coeffs.iter_mut() {
                *c = -*c;
            }
            r.rhs = -r.rhs;
            r.sense = match r.sense {
                Sense::Le => Sense::Ge,
                Sense::Ge => Sense::Le,
                Sense::Eq => Sense::Eq,
            };
        }
    }

    // Count auxiliary columns.
    let n_slack = rows
        .iter()
        .filter(|r| matches!(r.sense, Sense::Le | Sense::Ge))
        .count();
    let n_art = rows
        .iter()
        .filter(|r| matches!(r.sense, Sense::Ge | Sense::Eq))
        .count();
    let m = rows.len();
    let cols = n + n_slack + n_art + 1;

    let mut a = vec![vec![0.0; cols]; m];
    let mut basis = vec![0usize; m];
    let mut art_cols = Vec::new();
    let mut s_idx = n;
    let mut a_idx = n + n_slack;
    for (r, row) in rows.iter().enumerate() {
        a[r][..n].copy_from_slice(&row.coeffs);
        a[r][cols - 1] = row.rhs;
        match row.sense {
            Sense::Le => {
                a[r][s_idx] = 1.0;
                basis[r] = s_idx;
                s_idx += 1;
            }
            Sense::Ge => {
                a[r][s_idx] = -1.0;
                s_idx += 1;
                a[r][a_idx] = 1.0;
                basis[r] = a_idx;
                art_cols.push(a_idx);
                a_idx += 1;
            }
            Sense::Eq => {
                a[r][a_idx] = 1.0;
                basis[r] = a_idx;
                art_cols.push(a_idx);
                a_idx += 1;
            }
        }
    }

    let iter_budget = 200 * (m + cols);

    // Phase 1: minimize the artificial sum.
    if !art_cols.is_empty() {
        let mut obj = vec![0.0; cols];
        for &c in &art_cols {
            obj[c] = 1.0;
        }
        // Price out the basic artificials.
        for (r, &b) in basis.iter().enumerate() {
            if art_cols.contains(&b) {
                for c in 0..cols {
                    obj[c] -= a[r][c];
                }
            }
        }
        let mut t = Tableau {
            a,
            obj,
            basis,
            cols,
        };
        match t.run(iter_budget) {
            SimplexStatus::Optimal => {}
            SimplexStatus::Unbounded => return LpOutcome::Infeasible,
            SimplexStatus::IterLimit => return LpOutcome::IterLimit,
        }
        let phase1_obj = -t.obj[cols - 1];
        if phase1_obj > 1e-6 {
            return LpOutcome::Infeasible;
        }
        // Drive any artificial still in the basis out (degenerate zero
        // rows); if impossible the row is redundant — pivot on any
        // non-artificial column with a non-zero coefficient.
        for r in 0..m {
            if art_cols.contains(&t.basis[r]) {
                if let Some(c) = (0..n + n_slack).find(|&c| t.a[r][c].abs() > EPS) {
                    t.pivot(r, c);
                }
            }
        }
        a = t.a;
        basis = t.basis;
    }

    // Phase 2: real objective (ban artificial columns by pricing them
    // prohibitively — simpler: zero them out of every row first).
    for row in a.iter_mut() {
        for &c in &art_cols {
            row[c] = 0.0;
        }
    }
    let mut obj = vec![0.0; cols];
    obj[..n].copy_from_slice(model.objective());
    // Account the shift constant: minimize c(y + shift) = c·y + c·shift.
    let shift_const: f64 = model
        .objective()
        .iter()
        .zip(&shift)
        .map(|(c, s)| c * s)
        .sum();
    // Price out basic variables.
    for (r, &b) in basis.iter().enumerate() {
        if obj[b].abs() > EPS {
            let f = obj[b];
            for c in 0..cols {
                obj[c] -= f * a[r][c];
            }
        }
    }
    let mut t = Tableau {
        a,
        obj,
        basis,
        cols,
    };
    match t.run(iter_budget) {
        SimplexStatus::Optimal => {}
        SimplexStatus::Unbounded => return LpOutcome::Unbounded,
        SimplexStatus::IterLimit => return LpOutcome::IterLimit,
    }

    let mut values = vec![0.0; n];
    for (r, &b) in t.basis.iter().enumerate() {
        if b < n {
            values[b] = t.a[r][cols - 1];
        }
    }
    for (v, s) in values.iter_mut().zip(&shift) {
        *v += s;
    }
    let objective = model.objective_value(&values);
    debug_assert!(
        (objective - (-t.obj[cols - 1] + shift_const)).abs() < 1e-4,
        "objective bookkeeping"
    );
    LpOutcome::Optimal(LpSolution { objective, values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn assert_opt(outcome: LpOutcome, obj: f64, tol: f64) -> LpSolution {
        match outcome {
            LpOutcome::Optimal(s) => {
                assert!(
                    (s.objective - obj).abs() < tol,
                    "objective {} expected {obj}",
                    s.objective
                );
                s
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_maximization_as_min() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  (optimum 36 at (2,6))
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 100.0, -3.0);
        let y = m.add_continuous(0.0, 100.0, -5.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Le, 4.0);
        m.add_constraint(vec![(y, 2.0)], Sense::Le, 12.0);
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let s = assert_opt(solve_lp(&m, &[]), -36.0, 1e-6);
        assert!((s.values[x] - 2.0).abs() < 1e-6);
        assert!((s.values[y] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn ge_and_eq_constraints() {
        // min x + 2y s.t. x + y = 10, x ≥ 3  → x=10 is better? cost(10,0)=10;
        // need y ≥ 0; optimum x=10,y=0 → 10. With x ≤ 7: x=7,y=3 → 13.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 7.0, 1.0);
        let y = m.add_continuous(0.0, 100.0, 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Eq, 10.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 3.0);
        let s = assert_opt(solve_lp(&m, &[]), 13.0, 1e-6);
        assert!((s.values[x] - 7.0).abs() < 1e-6);
        assert!((s.values[y] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 5.0);
        assert_eq!(solve_lp(&m, &[]), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1e18, -1.0);
        m.add_constraint(vec![(x, 0.0)], Sense::Le, 1.0);
        match solve_lp(&m, &[]) {
            // x's finite (huge) upper bound makes this Optimal at 1e18 or
            // detected Unbounded depending on bound handling; both prove
            // the solver pushed the variable to its limit.
            LpOutcome::Optimal(s) => assert!(s.objective < -1e17),
            LpOutcome::Unbounded => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nonzero_lower_bounds_are_shifted() {
        // min x + y s.t. x + y ≥ 8, x ∈ [2, 10], y ∈ [3, 10] → 8 with
        // e.g. x=5,y=3.
        let mut m = Model::new();
        let x = m.add_continuous(2.0, 10.0, 1.0);
        let y = m.add_continuous(3.0, 10.0, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 8.0);
        let s = assert_opt(solve_lp(&m, &[]), 8.0, 1e-6);
        assert!(s.values[x] >= 2.0 - 1e-9);
        assert!(s.values[y] >= 3.0 - 1e-9);
    }

    #[test]
    fn binary_relaxation_yields_fractional() {
        // min -(x0 + x1) s.t. x0 + x1 ≤ 1.5, binaries → LP optimum 1.5.
        let mut m = Model::new();
        let a = m.add_binary(-1.0);
        let b = m.add_binary(-1.0);
        m.add_constraint(vec![(a, 1.0), (b, 1.0)], Sense::Le, 1.5);
        let s = assert_opt(solve_lp(&m, &[]), -1.5, 1e-6);
        assert!((s.values[a] + s.values[b] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn extra_branch_rows_pin_variables() {
        let mut m = Model::new();
        let a = m.add_binary(-1.0);
        let b = m.add_binary(-1.0);
        m.add_constraint(vec![(a, 1.0), (b, 1.0)], Sense::Le, 1.5);
        let s = assert_opt(solve_lp(&m, &[(a, Sense::Eq, 0.0)]), -1.0, 1e-6);
        assert!(s.values[a].abs() < 1e-9);
        assert!((s.values[b] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problems_terminate() {
        // A classically degenerate LP; Bland's rule must terminate.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1e6, -0.75);
        let y = m.add_continuous(0.0, 1e6, 150.0);
        let z = m.add_continuous(0.0, 1e6, -0.02);
        let w = m.add_continuous(0.0, 1e6, 6.0);
        m.add_constraint(
            vec![(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)],
            Sense::Le,
            0.0,
        );
        m.add_constraint(
            vec![(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)],
            Sense::Le,
            0.0,
        );
        m.add_constraint(vec![(z, 1.0)], Sense::Le, 1.0);
        let s = assert_opt(solve_lp(&m, &[]), -0.05, 1e-4);
        assert!(s.values[z] > 0.9);
    }
}
