//! 0-1 branch & bound over the LP relaxation.

use crate::model::{Model, Sense, VarKind};
use crate::simplex::{solve_lp, LpOutcome};

/// Integrality tolerance.
const INT_TOL: f64 = 1e-6;

/// Branch & bound budgets.
#[derive(Debug, Clone, Copy)]
pub struct BranchConfig {
    /// Maximum branch & bound nodes explored.
    pub max_nodes: usize,
}

impl Default for BranchConfig {
    fn default() -> Self {
        Self { max_nodes: 20_000 }
    }
}

/// ILP outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum IlpOutcome {
    /// Proven-optimal integral solution.
    Optimal {
        /// Objective value.
        objective: f64,
        /// Variable assignment (binaries are exactly 0.0/1.0).
        values: Vec<f64>,
    },
    /// No integral solution exists.
    Infeasible,
    /// The node budget ran out; carries the best incumbent if any was
    /// found. The caller should fall back to its greedy planner — the
    /// paper's behaviour when the ILP "is not able to converge".
    Budget {
        /// Best feasible assignment seen, if any.
        incumbent: Option<(f64, Vec<f64>)>,
    },
}

/// Solves the 0-1 ILP `model` by branch & bound with best-bound pruning.
pub fn solve_ilp(model: &Model, cfg: BranchConfig) -> IlpOutcome {
    let binaries: Vec<usize> = model
        .kinds()
        .iter()
        .enumerate()
        .filter(|(_, k)| matches!(k, VarKind::Binary))
        .map(|(i, _)| i)
        .collect();

    let mut best: Option<(f64, Vec<f64>)> = None;
    // DFS stack of fixings: Vec<(var, value)>.
    let mut stack: Vec<Vec<(usize, f64)>> = vec![Vec::new()];
    let mut nodes = 0usize;
    let mut saw_budget_pressure = false;

    while let Some(fixings) = stack.pop() {
        nodes += 1;
        if nodes > cfg.max_nodes {
            saw_budget_pressure = true;
            break;
        }
        let extra: Vec<(usize, Sense, f64)> = fixings
            .iter()
            .map(|&(v, val)| (v, Sense::Eq, val))
            .collect();
        let relax = match solve_lp(model, &extra) {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                // An unbounded relaxation of a 0-1 problem means some
                // continuous variable dives; with finite bounds enforced
                // this cannot happen, treat as infeasible branch.
                continue;
            }
            LpOutcome::IterLimit => {
                saw_budget_pressure = true;
                continue;
            }
        };
        // Prune on bound.
        if let Some((best_obj, _)) = &best {
            if relax.objective >= best_obj - INT_TOL {
                continue;
            }
        }
        // Most fractional binary.
        let frac = binaries
            .iter()
            .map(|&v| (v, (relax.values[v] - relax.values[v].round()).abs()))
            .filter(|&(_, f)| f > INT_TOL)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fractionality"));
        match frac {
            None => {
                // Integral: round binaries exactly and record.
                let mut values = relax.values.clone();
                for &v in &binaries {
                    values[v] = values[v].round();
                }
                if model.check(&values, 1e-5).is_ok() {
                    let obj = model.objective_value(&values);
                    if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                        best = Some((obj, values));
                    }
                }
            }
            Some((v, _)) => {
                // Branch: explore the rounded-towards side first (pushed
                // last so it pops first).
                let mut zero = fixings.clone();
                zero.push((v, 0.0));
                let mut one = fixings;
                one.push((v, 1.0));
                if relax.values[v] >= 0.5 {
                    stack.push(zero);
                    stack.push(one);
                } else {
                    stack.push(one);
                    stack.push(zero);
                }
            }
        }
    }

    // Any budget event (node cap or an LP iteration cap on some node)
    // means subtrees may have gone unexplored: report Budget so callers
    // fall back to greedy planning rather than trusting a false optimum.
    if saw_budget_pressure {
        return IlpOutcome::Budget { incumbent: best };
    }
    match best {
        Some((objective, values)) => IlpOutcome::Optimal { objective, values },
        None => IlpOutcome::Infeasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn optimal(o: IlpOutcome) -> (f64, Vec<f64>) {
        match o {
            IlpOutcome::Optimal { objective, values } => (objective, values),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c ≤ 6 → best {a,c}=17? or {b,c}=20
        // weights: b+c = 6 ≤ 6 value 20; a+c = 5 value 17; a+b=7 infeasible.
        let mut m = Model::new();
        let a = m.add_binary(-10.0);
        let b = m.add_binary(-13.0);
        let c = m.add_binary(-7.0);
        m.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Sense::Le, 6.0);
        let (obj, x) = optimal(solve_ilp(&m, BranchConfig::default()));
        assert!((obj + 20.0).abs() < 1e-6);
        assert_eq!(
            (
                x[a].round() as i32,
                x[b].round() as i32,
                x[c].round() as i32
            ),
            (0, 1, 1)
        );
    }

    #[test]
    fn assignment_problem() {
        // 3 tasks to 3 machines, cost matrix; classic assignment ILP.
        let cost = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut m = Model::new();
        let mut vars = [[0usize; 3]; 3];
        for (i, vrow) in vars.iter_mut().enumerate() {
            for (j, v) in vrow.iter_mut().enumerate() {
                *v = m.add_binary(cost[i][j]);
            }
        }
        #[allow(clippy::needless_range_loop)] // symmetric row/column indexing
        for i in 0..3 {
            m.add_constraint((0..3).map(|j| (vars[i][j], 1.0)).collect(), Sense::Eq, 1.0);
            m.add_constraint((0..3).map(|j| (vars[j][i], 1.0)).collect(), Sense::Eq, 1.0);
        }
        let (obj, _) = optimal(solve_ilp(&m, BranchConfig::default()));
        // Optimal: t0→m1 (2), t1→m2? costs: rows are tasks.
        // Enumerate: perms of machines: (0,1,2):4+3+6=13 (0,2,1):4+7+1=12
        // (1,0,2):2+4+6=12 (1,2,0):2+7+3=12 (2,0,1):8+4+1=13 (2,1,0):8+3+3=14
        assert!((obj - 12.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_ilp() {
        let mut m = Model::new();
        let a = m.add_binary(1.0);
        let b = m.add_binary(1.0);
        m.add_constraint(vec![(a, 1.0), (b, 1.0)], Sense::Ge, 3.0);
        assert_eq!(
            solve_ilp(&m, BranchConfig::default()),
            IlpOutcome::Infeasible
        );
    }

    #[test]
    fn mixed_integer_with_continuous_aux() {
        // min t s.t. t ≥ x - 2, t ≥ 2 - x, x = 3a (a binary) →
        // a=1: x=3, t ≥ 1 → t=1; a=0: x=0, t ≥ 2 → t=2. Optimal a=1, t=1.
        let mut m = Model::new();
        let a = m.add_binary(0.0);
        let x = m.add_continuous(0.0, 10.0, 0.0);
        let t = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, 1.0), (a, -3.0)], Sense::Eq, 0.0);
        m.add_constraint(vec![(t, 1.0), (x, -1.0)], Sense::Ge, -2.0);
        m.add_constraint(vec![(t, 1.0), (x, 1.0)], Sense::Ge, 2.0);
        let (obj, v) = optimal(solve_ilp(&m, BranchConfig::default()));
        assert!((obj - 1.0).abs() < 1e-6, "objective {obj}");
        assert!((v[a] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn budget_exhaustion_reports_incumbent() {
        // A knapsack whose LP relaxation is fractional at every node
        // (uniform weight 2, odd capacity), with a node budget too small
        // to finish: the solver must report Budget rather than lie about
        // optimality.
        let mut m = Model::new();
        let vars: Vec<usize> = (0..12).map(|_| m.add_binary(-1.0)).collect();
        m.add_constraint(vars.iter().map(|&v| (v, 2.0)).collect(), Sense::Le, 3.0);
        match solve_ilp(&m, BranchConfig { max_nodes: 2 }) {
            IlpOutcome::Budget { .. } => {}
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn brute_force_agreement_on_random_instances() {
        // Deterministic pseudo-random small instances, checked against
        // exhaustive enumeration.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _case in 0..20 {
            let n = 6;
            let mut m = Model::new();
            let costs: Vec<f64> = (0..n).map(|_| (next() % 21) as f64 - 10.0).collect();
            let vars: Vec<usize> = costs.iter().map(|&c| m.add_binary(c)).collect();
            let weights: Vec<f64> = (0..n).map(|_| (next() % 10 + 1) as f64).collect();
            let cap = (next() % 25 + 5) as f64;
            m.add_constraint(
                vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect(),
                Sense::Le,
                cap,
            );
            // Brute force.
            let mut best = f64::INFINITY;
            for mask in 0..(1u32 << n) {
                let w: f64 = (0..n)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| weights[i])
                    .sum();
                if w <= cap {
                    let c: f64 = (0..n)
                        .filter(|&i| mask & (1 << i) != 0)
                        .map(|i| costs[i])
                        .sum();
                    best = best.min(c);
                }
            }
            let (obj, x) = optimal(solve_ilp(&m, BranchConfig::default()));
            assert!(
                (obj - best).abs() < 1e-6,
                "case objective {obj} vs brute {best}"
            );
            assert!(m.check(&x, 1e-6).is_ok());
        }
    }
}
