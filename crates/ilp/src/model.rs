//! The modelling layer: variables, linear constraints, objective.

/// Variable kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarKind {
    /// A 0-1 integer variable.
    Binary,
    /// A continuous variable bounded to `[lo, hi]`.
    Continuous {
        /// Lower bound (finite).
        lo: f64,
        /// Upper bound (finite).
        hi: f64,
    },
}

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `expr ≤ rhs`.
    Le,
    /// `expr ≥ rhs`.
    Ge,
    /// `expr = rhs`.
    Eq,
}

/// A linear constraint `Σ coeff·x  sense  rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Sparse `(variable, coefficient)` terms.
    pub terms: Vec<(usize, f64)>,
    /// Comparison sense.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A minimization model.
#[derive(Debug, Clone, Default)]
pub struct Model {
    kinds: Vec<VarKind>,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a binary variable with objective coefficient `cost`; returns
    /// its index.
    pub fn add_binary(&mut self, cost: f64) -> usize {
        self.kinds.push(VarKind::Binary);
        self.objective.push(cost);
        self.kinds.len() - 1
    }

    /// Adds a continuous variable in `[lo, hi]` with objective coefficient
    /// `cost`; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `lo > hi`.
    pub fn add_continuous(&mut self, lo: f64, hi: f64, cost: f64) -> usize {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad bounds");
        self.kinds.push(VarKind::Continuous { lo, hi });
        self.objective.push(cost);
        self.kinds.len() - 1
    }

    /// Adds a constraint.
    ///
    /// # Panics
    ///
    /// Panics if any term references an unknown variable.
    pub fn add_constraint(&mut self, terms: Vec<(usize, f64)>, sense: Sense, rhs: f64) {
        for &(v, _) in &terms {
            assert!(v < self.kinds.len(), "unknown variable {v}");
        }
        self.constraints.push(Constraint { terms, sense, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.kinds.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The variable kinds.
    pub fn kinds(&self) -> &[VarKind] {
        &self.kinds
    }

    /// The objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Objective value of assignment `x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks `x` against every constraint and variable bound within
    /// tolerance `tol`; returns the first violation description.
    pub fn check(&self, x: &[f64], tol: f64) -> Result<(), String> {
        if x.len() != self.kinds.len() {
            return Err(format!(
                "assignment has {} values for {} variables",
                x.len(),
                self.kinds.len()
            ));
        }
        for (i, (&v, k)) in x.iter().zip(&self.kinds).enumerate() {
            match *k {
                VarKind::Binary => {
                    if (v - 0.0).abs() > tol && (v - 1.0).abs() > tol {
                        return Err(format!("x{i} = {v} is not binary"));
                    }
                }
                VarKind::Continuous { lo, hi } => {
                    if v < lo - tol || v > hi + tol {
                        return Err(format!("x{i} = {v} outside [{lo}, {hi}]"));
                    }
                }
            }
        }
        for (ci, c) in self.constraints.iter().enumerate() {
            let lhs: f64 = c.terms.iter().map(|&(v, coef)| coef * x[v]).sum();
            let ok = match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return Err(format!(
                    "constraint {ci} violated: lhs {lhs} {:?} rhs {}",
                    c.sense, c.rhs
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_check() {
        let mut m = Model::new();
        let a = m.add_binary(1.0);
        let b = m.add_binary(2.0);
        let t = m.add_continuous(0.0, 10.0, 0.5);
        m.add_constraint(vec![(a, 1.0), (b, 1.0)], Sense::Ge, 1.0);
        m.add_constraint(vec![(t, 1.0), (a, -3.0)], Sense::Le, 2.0);
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.num_constraints(), 2);
        assert!(m.check(&[1.0, 0.0, 2.0], 1e-9).is_ok());
        assert!((m.objective_value(&[1.0, 0.0, 2.0]) - 2.0).abs() < 1e-12);
        // Violations are reported.
        assert!(m.check(&[0.0, 0.0, 0.0], 1e-9).is_err(), "Ge violated");
        assert!(m.check(&[0.5, 0.0, 0.0], 1e-9).is_err(), "not binary");
        assert!(m.check(&[1.0, 0.0, 11.0], 1e-9).is_err(), "bound violated");
        assert!(m.check(&[1.0, 0.0], 1e-9).is_err(), "wrong arity");
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn rejects_unknown_variable() {
        let mut m = Model::new();
        m.add_constraint(vec![(0, 1.0)], Sense::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "bad bounds")]
    fn rejects_inverted_bounds() {
        let mut m = Model::new();
        m.add_continuous(1.0, 0.0, 0.0);
    }
}
