//! # mbal-ilp
//!
//! A from-scratch linear/integer programming toolkit sized for MBal's
//! migration planners (§3.3–§3.4 of the paper). Phase 2 and Phase 3 of
//! the load balancer formulate cachelet migration as 0-1 integer linear
//! programs (objectives (1), (2)/(4) and (8) of the paper); this crate
//! provides:
//!
//! - [`model`] — a small modelling layer: variables (binary or bounded
//!   continuous), linear constraints, a minimization objective, and a
//!   solution checker used by tests and by the balancer's paranoia
//!   assertions.
//! - [`simplex`] — a dense two-phase primal simplex solver for the LP
//!   relaxations (Bland's rule, so it never cycles).
//! - [`branch`] — depth-first branch & bound over the binary variables
//!   with best-bound pruning and node/iteration budgets. When the budget
//!   is exhausted without proving optimality the solver reports
//!   [`branch::IlpOutcome::Budget`] with the best incumbent found — the
//!   balancer then falls back to its greedy planner, exactly as the paper
//!   prescribes when "ILP is not able to converge".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod model;
pub mod simplex;

pub use branch::{solve_ilp, BranchConfig, IlpOutcome};
pub use model::{Constraint, Model, Sense, VarKind};
pub use simplex::{solve_lp, LpOutcome, LpSolution};
