//! Property tests for the LP/ILP solvers: solutions are feasible,
//! integral solutions match exhaustive enumeration, and the LP bound
//! dominates the ILP optimum.

use mbal_ilp::{solve_ilp, solve_lp, BranchConfig, IlpOutcome, LpOutcome, Model, Sense};
use proptest::prelude::*;

/// A random small knapsack-style model: n binaries, one weight
/// constraint, optional side constraint.
fn small_model() -> impl Strategy<Value = (Model, usize)> {
    (
        2usize..7,
        prop::collection::vec(-10i32..10, 7),
        prop::collection::vec(1i32..10, 7),
        5i32..30,
        any::<bool>(),
    )
        .prop_map(|(n, costs, weights, cap, extra)| {
            let mut m = Model::new();
            let vars: Vec<usize> = (0..n).map(|i| m.add_binary(costs[i] as f64)).collect();
            m.add_constraint(
                vars.iter()
                    .zip(&weights)
                    .map(|(&v, &w)| (v, w as f64))
                    .collect(),
                Sense::Le,
                cap as f64,
            );
            if extra && n >= 3 {
                // x0 + x1 + x2 ≥ 1 (forces some selection).
                m.add_constraint(
                    vars[..3].iter().map(|&v| (v, 1.0)).collect(),
                    Sense::Ge,
                    1.0,
                );
            }
            (m, n)
        })
}

fn brute_force(m: &Model, n: usize) -> Option<f64> {
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << n) {
        let x: Vec<f64> = (0..n).map(|i| f64::from(mask >> i & 1)).collect();
        if m.check(&x, 1e-9).is_ok() {
            let obj = m.objective_value(&x);
            best = Some(best.map_or(obj, |b: f64| b.min(obj)));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Branch & bound equals brute force on every random instance.
    #[test]
    fn ilp_matches_brute_force((m, n) in small_model()) {
        let brute = brute_force(&m, n);
        match solve_ilp(&m, BranchConfig::default()) {
            IlpOutcome::Optimal { objective, values } => {
                let expect = brute.expect("solver found a solution where none exists");
                prop_assert!((objective - expect).abs() < 1e-6,
                    "solver {} vs brute {}", objective, expect);
                prop_assert!(m.check(&values, 1e-6).is_ok(), "infeasible 'optimal'");
            }
            IlpOutcome::Infeasible => prop_assert!(brute.is_none(), "solver missed a solution"),
            IlpOutcome::Budget { .. } => {
                // Tiny instances must never exhaust the default budget.
                prop_assert!(false, "budget exhausted on a {}-var instance", n);
            }
        }
    }

    /// The LP relaxation lower-bounds the ILP optimum.
    #[test]
    fn lp_bound_dominates((m, n) in small_model()) {
        let brute = brute_force(&m, n);
        if let (LpOutcome::Optimal(lp), Some(ilp)) = (solve_lp(&m, &[]), brute) {
            prop_assert!(
                lp.objective <= ilp + 1e-6,
                "LP bound {} above ILP optimum {}", lp.objective, ilp
            );
        }
    }

    /// LP solutions satisfy every constraint.
    #[test]
    fn lp_solutions_are_feasible((m, _) in small_model()) {
        if let LpOutcome::Optimal(s) = solve_lp(&m, &[]) {
            // Relax binaries to [0,1] for the check.
            for (i, &v) in s.values.iter().enumerate() {
                prop_assert!((-1e-7..=1.0 + 1e-7).contains(&v), "x{} = {}", i, v);
            }
            for (ci, c) in m.constraints().iter().enumerate() {
                let lhs: f64 = c.terms.iter().map(|&(v, co)| co * s.values[v]).sum();
                let ok = match c.sense {
                    Sense::Le => lhs <= c.rhs + 1e-6,
                    Sense::Ge => lhs >= c.rhs - 1e-6,
                    Sense::Eq => (lhs - c.rhs).abs() <= 1e-6,
                };
                prop_assert!(ok, "constraint {} violated: {} vs {}", ci, lhs, c.rhs);
            }
        }
    }
}
