//! # mbal-netpoll
//!
//! A minimal, safe readiness-notification wrapper over Linux `epoll`,
//! just wide enough for MBal's event-driven TCP transport: register a
//! file descriptor under a `u64` token with read/write interest, block
//! in [`Poller::wait`], get `(token, readable, writable, hangup)`
//! events back.
//!
//! This crate is the only place in the workspace that uses `unsafe`
//! (the three `epoll_*` syscalls and an `rlimit` helper); everything
//! above it — connection state machines, frame reassembly, vectored
//! writes — is safe code in `mbal-server`. The FFI declarations bind
//! libc symbols that `std` already links on Linux, so no new
//! dependency is involved.

#![deny(unsafe_code)]
#![warn(missing_docs)]

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;

    // The x86-64 kernel ABI packs epoll_event; other architectures use
    // natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }

    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    const RLIMIT_NOFILE: c_int = 7;

    pub fn create() -> io::Result<RawFd> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn ctl(epfd: RawFd, op: c_int, fd: RawFd, mut ev: Option<EpollEvent>) -> io::Result<()> {
        let ptr = ev
            .as_mut()
            .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
        if unsafe { epoll_ctl(epfd, op, fd, ptr) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn wait(epfd: RawFd, buf: &mut [EpollEvent], timeout_ms: c_int) -> io::Result<usize> {
        let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }

    pub fn close_fd(fd: RawFd) {
        unsafe {
            close(fd);
        }
    }

    /// Raises the soft open-file limit towards `want` (capped at the
    /// hard limit). Returns the resulting soft limit.
    pub fn raise_nofile(want: u64) -> io::Result<u64> {
        let mut lim = Rlimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
            return Err(io::Error::last_os_error());
        }
        if lim.cur >= want {
            return Ok(lim.cur);
        }
        let target = want.min(lim.max);
        let next = Rlimit {
            cur: target,
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &next) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(target)
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::sys;
    use std::io;
    use std::os::unix::io::RawFd;

    /// I/O readiness to watch a descriptor for.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Interest {
        /// Wake when the descriptor becomes readable.
        pub readable: bool,
        /// Wake when the descriptor becomes writable.
        pub writable: bool,
    }

    impl Interest {
        /// Read-only interest.
        pub const READ: Interest = Interest {
            readable: true,
            writable: false,
        };
        /// Read + write interest.
        pub const READ_WRITE: Interest = Interest {
            readable: true,
            writable: true,
        };

        fn mask(self) -> u32 {
            let mut m = sys::EPOLLRDHUP;
            if self.readable {
                m |= sys::EPOLLIN;
            }
            if self.writable {
                m |= sys::EPOLLOUT;
            }
            m
        }
    }

    /// One readiness event out of [`Poller::wait`].
    #[derive(Debug, Clone, Copy)]
    pub struct PollEvent {
        /// The token the descriptor was registered under.
        pub token: u64,
        /// Readable (or a peer half-close — drain until EOF).
        pub readable: bool,
        /// Writable.
        pub writable: bool,
        /// Error or hangup; the connection is done for.
        pub hangup: bool,
    }

    /// An epoll instance. Closes its descriptor on drop.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Creates a new epoll instance.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                epfd: sys::create()?,
            })
        }

        /// Registers `fd` under `token`.
        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            sys::ctl(
                self.epfd,
                sys::EPOLL_CTL_ADD,
                fd,
                Some(sys::EpollEvent {
                    events: interest.mask(),
                    data: token,
                }),
            )
        }

        /// Changes the interest set of a registered `fd`.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            sys::ctl(
                self.epfd,
                sys::EPOLL_CTL_MOD,
                fd,
                Some(sys::EpollEvent {
                    events: interest.mask(),
                    data: token,
                }),
            )
        }

        /// Deregisters `fd`.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, None)
        }

        /// Blocks until readiness or `timeout_ms` (negative blocks
        /// forever), appending events to `out`. Returns the event count.
        pub fn wait(&self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<usize> {
            let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 256];
            let n = sys::wait(self.epfd, &mut buf, timeout_ms)?;
            for ev in &buf[..n] {
                let bits = ev.events;
                out.push(PollEvent {
                    token: ev.data,
                    readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            sys::close_fd(self.epfd);
        }
    }

    /// Raises the process soft fd limit towards `want` (capped at the
    /// hard limit); returns the resulting soft limit. Connection-dense
    /// servers and tests call this so accept storms don't die on EMFILE.
    pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
        sys::raise_nofile(want)
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use std::io;
    use std::os::unix::io::RawFd;

    /// I/O readiness to watch a descriptor for.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Interest {
        /// Wake when the descriptor becomes readable.
        pub readable: bool,
        /// Wake when the descriptor becomes writable.
        pub writable: bool,
    }

    impl Interest {
        /// Read-only interest.
        pub const READ: Interest = Interest {
            readable: true,
            writable: false,
        };
        /// Read + write interest.
        pub const READ_WRITE: Interest = Interest {
            readable: true,
            writable: true,
        };
    }

    /// One readiness event out of [`Poller::wait`].
    #[derive(Debug, Clone, Copy)]
    pub struct PollEvent {
        /// The token the descriptor was registered under.
        pub token: u64,
        /// Readable.
        pub readable: bool,
        /// Writable.
        pub writable: bool,
        /// Error or hangup.
        pub hangup: bool,
    }

    /// Unsupported on this platform; construction fails so callers fall
    /// back to the threaded transport backend.
    #[derive(Debug)]
    pub struct Poller {}

    impl Poller {
        /// Always fails off Linux.
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll is Linux-only; use the threaded I/O backend",
            ))
        }

        /// Unreachable (construction fails).
        pub fn add(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("Poller cannot be constructed off Linux")
        }

        /// Unreachable (construction fails).
        pub fn modify(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("Poller cannot be constructed off Linux")
        }

        /// Unreachable (construction fails).
        pub fn delete(&self, _fd: RawFd) -> io::Result<()> {
            unreachable!("Poller cannot be constructed off Linux")
        }

        /// Unreachable (construction fails).
        pub fn wait(&self, _out: &mut Vec<PollEvent>, _timeout_ms: i32) -> io::Result<usize> {
            unreachable!("Poller cannot be constructed off Linux")
        }
    }

    /// No-op off Linux.
    pub fn raise_nofile_limit(_want: u64) -> io::Result<u64> {
        Ok(u64::MAX)
    }
}

pub use imp::{raise_nofile_limit, Interest, PollEvent, Poller};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readiness_roundtrip() {
        let poller = Poller::new().expect("epoll_create");
        let (mut a, mut b) = UnixStream::pair().expect("socketpair");
        poller
            .add(b.as_raw_fd(), 7, Interest::READ)
            .expect("register");

        // Nothing pending: a zero-timeout wait returns no events.
        let mut evs = Vec::new();
        poller.wait(&mut evs, 0).expect("wait");
        assert!(evs.is_empty());

        a.write_all(b"x").expect("write");
        poller.wait(&mut evs, 1000).expect("wait");
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].token, 7);
        assert!(evs[0].readable);

        let mut byte = [0u8; 1];
        b.read_exact(&mut byte).expect("read");

        // Write interest on an empty socket buffer fires immediately.
        poller
            .modify(b.as_raw_fd(), 7, Interest::READ_WRITE)
            .expect("modify");
        evs.clear();
        poller.wait(&mut evs, 1000).expect("wait");
        assert!(evs.iter().any(|e| e.token == 7 && e.writable));

        poller.delete(b.as_raw_fd()).expect("delete");
        evs.clear();
        a.write_all(b"y").expect("write");
        poller.wait(&mut evs, 0).expect("wait");
        assert!(evs.is_empty(), "deregistered fd raises no events");
    }

    #[test]
    fn peer_close_raises_readable_for_eof() {
        let poller = Poller::new().expect("epoll_create");
        let (a, b) = UnixStream::pair().expect("socketpair");
        poller
            .add(b.as_raw_fd(), 1, Interest::READ)
            .expect("register");
        drop(a);
        let mut evs = Vec::new();
        poller.wait(&mut evs, 1000).expect("wait");
        assert!(
            evs.iter().any(|e| e.token == 1 && (e.readable || e.hangup)),
            "peer close must surface: {evs:?}"
        );
    }

    #[test]
    fn nofile_limit_is_queryable() {
        let got = raise_nofile_limit(1).expect("rlimit");
        assert!(got >= 1);
    }
}
