/root/repo/target/debug/examples/session_store-5eec1698d7530200.d: examples/session_store.rs

/root/repo/target/debug/examples/libsession_store-5eec1698d7530200.rmeta: examples/session_store.rs

examples/session_store.rs:
