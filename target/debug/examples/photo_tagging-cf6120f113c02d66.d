/root/repo/target/debug/examples/photo_tagging-cf6120f113c02d66.d: examples/photo_tagging.rs Cargo.toml

/root/repo/target/debug/examples/libphoto_tagging-cf6120f113c02d66.rmeta: examples/photo_tagging.rs Cargo.toml

examples/photo_tagging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
