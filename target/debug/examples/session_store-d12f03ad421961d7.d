/root/repo/target/debug/examples/session_store-d12f03ad421961d7.d: examples/session_store.rs

/root/repo/target/debug/examples/session_store-d12f03ad421961d7: examples/session_store.rs

examples/session_store.rs:
