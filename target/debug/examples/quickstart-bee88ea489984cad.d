/root/repo/target/debug/examples/quickstart-bee88ea489984cad.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bee88ea489984cad: examples/quickstart.rs

examples/quickstart.rs:
