/root/repo/target/debug/examples/provisioning_advisor-7a439f0c51408fa5.d: examples/provisioning_advisor.rs

/root/repo/target/debug/examples/provisioning_advisor-7a439f0c51408fa5: examples/provisioning_advisor.rs

examples/provisioning_advisor.rs:
