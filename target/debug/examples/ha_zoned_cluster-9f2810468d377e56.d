/root/repo/target/debug/examples/ha_zoned_cluster-9f2810468d377e56.d: examples/ha_zoned_cluster.rs

/root/repo/target/debug/examples/ha_zoned_cluster-9f2810468d377e56: examples/ha_zoned_cluster.rs

examples/ha_zoned_cluster.rs:
