/root/repo/target/debug/examples/quickstart-aabcfdc73195d7cc.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-aabcfdc73195d7cc.rmeta: examples/quickstart.rs

examples/quickstart.rs:
