/root/repo/target/debug/examples/photo_tagging-4f6d1029c8311ea1.d: examples/photo_tagging.rs

/root/repo/target/debug/examples/photo_tagging-4f6d1029c8311ea1: examples/photo_tagging.rs

examples/photo_tagging.rs:
