/root/repo/target/debug/examples/session_store-1269596bbfe2c3bd.d: examples/session_store.rs Cargo.toml

/root/repo/target/debug/examples/libsession_store-1269596bbfe2c3bd.rmeta: examples/session_store.rs Cargo.toml

examples/session_store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
