/root/repo/target/debug/examples/quickstart-bb735dbcc884451b.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-bb735dbcc884451b.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
