/root/repo/target/debug/examples/provisioning_advisor-c7c71cc5ba42ad75.d: examples/provisioning_advisor.rs

/root/repo/target/debug/examples/libprovisioning_advisor-c7c71cc5ba42ad75.rmeta: examples/provisioning_advisor.rs

examples/provisioning_advisor.rs:
