/root/repo/target/debug/examples/ha_zoned_cluster-7bf0d79680343ae4.d: examples/ha_zoned_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libha_zoned_cluster-7bf0d79680343ae4.rmeta: examples/ha_zoned_cluster.rs Cargo.toml

examples/ha_zoned_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
