/root/repo/target/debug/examples/ha_zoned_cluster-6dc4a9a40e40b2c6.d: examples/ha_zoned_cluster.rs

/root/repo/target/debug/examples/libha_zoned_cluster-6dc4a9a40e40b2c6.rmeta: examples/ha_zoned_cluster.rs

examples/ha_zoned_cluster.rs:
