/root/repo/target/debug/examples/provisioning_advisor-7b0b58ea7cd07a7a.d: examples/provisioning_advisor.rs Cargo.toml

/root/repo/target/debug/examples/libprovisioning_advisor-7b0b58ea7cd07a7a.rmeta: examples/provisioning_advisor.rs Cargo.toml

examples/provisioning_advisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
