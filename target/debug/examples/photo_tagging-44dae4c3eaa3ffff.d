/root/repo/target/debug/examples/photo_tagging-44dae4c3eaa3ffff.d: examples/photo_tagging.rs

/root/repo/target/debug/examples/libphoto_tagging-44dae4c3eaa3ffff.rmeta: examples/photo_tagging.rs

examples/photo_tagging.rs:
