/root/repo/target/debug/deps/ops_micro-675bbf33d5c5b484.d: crates/bench/benches/ops_micro.rs

/root/repo/target/debug/deps/libops_micro-675bbf33d5c5b484.rmeta: crates/bench/benches/ops_micro.rs

crates/bench/benches/ops_micro.rs:
