/root/repo/target/debug/deps/stats_wire-20769d38c98186ad.d: tests/stats_wire.rs

/root/repo/target/debug/deps/libstats_wire-20769d38c98186ad.rmeta: tests/stats_wire.rs

tests/stats_wire.rs:
