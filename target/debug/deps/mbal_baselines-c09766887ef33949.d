/root/repo/target/debug/deps/mbal_baselines-c09766887ef33949.d: crates/baselines/src/lib.rs crates/baselines/src/memcached.rs crates/baselines/src/mercury.rs crates/baselines/src/multi_instance.rs crates/baselines/src/owned.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_baselines-c09766887ef33949.rmeta: crates/baselines/src/lib.rs crates/baselines/src/memcached.rs crates/baselines/src/mercury.rs crates/baselines/src/multi_instance.rs crates/baselines/src/owned.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/memcached.rs:
crates/baselines/src/mercury.rs:
crates/baselines/src/multi_instance.rs:
crates/baselines/src/owned.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
