/root/repo/target/debug/deps/cluster-3f94d02aa8662aa6.d: crates/client/tests/cluster.rs

/root/repo/target/debug/deps/cluster-3f94d02aa8662aa6: crates/client/tests/cluster.rs

crates/client/tests/cluster.rs:
