/root/repo/target/debug/deps/mbal_ring-2c1907903ef87f3d.d: crates/ring/src/lib.rs crates/ring/src/mapping.rs crates/ring/src/ring.rs

/root/repo/target/debug/deps/mbal_ring-2c1907903ef87f3d: crates/ring/src/lib.rs crates/ring/src/mapping.rs crates/ring/src/ring.rs

crates/ring/src/lib.rs:
crates/ring/src/mapping.rs:
crates/ring/src/ring.rs:
