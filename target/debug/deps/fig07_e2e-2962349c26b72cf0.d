/root/repo/target/debug/deps/fig07_e2e-2962349c26b72cf0.d: crates/bench/benches/fig07_e2e.rs

/root/repo/target/debug/deps/libfig07_e2e-2962349c26b72cf0.rmeta: crates/bench/benches/fig07_e2e.rs

crates/bench/benches/fig07_e2e.rs:
