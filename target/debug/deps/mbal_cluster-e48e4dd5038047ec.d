/root/repo/target/debug/deps/mbal_cluster-e48e4dd5038047ec.d: crates/cluster/src/lib.rs crates/cluster/src/ec2.rs crates/cluster/src/engine.rs crates/cluster/src/multicore.rs crates/cluster/src/report.rs crates/cluster/src/sim.rs

/root/repo/target/debug/deps/mbal_cluster-e48e4dd5038047ec: crates/cluster/src/lib.rs crates/cluster/src/ec2.rs crates/cluster/src/engine.rs crates/cluster/src/multicore.rs crates/cluster/src/report.rs crates/cluster/src/sim.rs

crates/cluster/src/lib.rs:
crates/cluster/src/ec2.rs:
crates/cluster/src/engine.rs:
crates/cluster/src/multicore.rs:
crates/cluster/src/report.rs:
crates/cluster/src/sim.rs:
