/root/repo/target/debug/deps/rand-66c1b69e2b923854.d: /root/repo/.stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-66c1b69e2b923854.rlib: /root/repo/.stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-66c1b69e2b923854.rmeta: /root/repo/.stubs/rand/src/lib.rs

/root/repo/.stubs/rand/src/lib.rs:
