/root/repo/target/debug/deps/migration_consistency-3ac6a1345afc654a.d: tests/migration_consistency.rs

/root/repo/target/debug/deps/libmigration_consistency-3ac6a1345afc654a.rmeta: tests/migration_consistency.rs

tests/migration_consistency.rs:
