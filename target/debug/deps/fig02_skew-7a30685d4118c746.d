/root/repo/target/debug/deps/fig02_skew-7a30685d4118c746.d: crates/bench/benches/fig02_skew.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_skew-7a30685d4118c746.rmeta: crates/bench/benches/fig02_skew.rs Cargo.toml

crates/bench/benches/fig02_skew.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
