/root/repo/target/debug/deps/proptest-549c1b82a6de7d90.d: /root/repo/.stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-549c1b82a6de7d90.rlib: /root/repo/.stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-549c1b82a6de7d90.rmeta: /root/repo/.stubs/proptest/src/lib.rs

/root/repo/.stubs/proptest/src/lib.rs:
