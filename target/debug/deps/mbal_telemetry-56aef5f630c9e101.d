/root/repo/target/debug/deps/mbal_telemetry-56aef5f630c9e101.d: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

/root/repo/target/debug/deps/libmbal_telemetry-56aef5f630c9e101.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
