/root/repo/target/debug/deps/proptest_ring-090e84ebbce931e7.d: crates/ring/tests/proptest_ring.rs

/root/repo/target/debug/deps/libproptest_ring-090e84ebbce931e7.rmeta: crates/ring/tests/proptest_ring.rs

crates/ring/tests/proptest_ring.rs:
