/root/repo/target/debug/deps/multiget_batch-c6599dad37dd151b.d: crates/bench/benches/multiget_batch.rs

/root/repo/target/debug/deps/libmultiget_batch-c6599dad37dd151b.rmeta: crates/bench/benches/multiget_batch.rs

crates/bench/benches/multiget_batch.rs:
