/root/repo/target/debug/deps/mbal_loadgen-f9305556f6e61ffe.d: crates/bench/src/bin/mbal-loadgen.rs

/root/repo/target/debug/deps/libmbal_loadgen-f9305556f6e61ffe.rmeta: crates/bench/src/bin/mbal-loadgen.rs

crates/bench/src/bin/mbal-loadgen.rs:
