/root/repo/target/debug/deps/crossbeam_channel-c25fb802f91619af.d: /root/repo/.stubs/crossbeam-channel/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_channel-c25fb802f91619af.rmeta: /root/repo/.stubs/crossbeam-channel/src/lib.rs

/root/repo/.stubs/crossbeam-channel/src/lib.rs:
