/root/repo/target/debug/deps/ops_micro-f5c2daf16f1b8945.d: crates/bench/benches/ops_micro.rs Cargo.toml

/root/repo/target/debug/deps/libops_micro-f5c2daf16f1b8945.rmeta: crates/bench/benches/ops_micro.rs Cargo.toml

crates/bench/benches/ops_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
