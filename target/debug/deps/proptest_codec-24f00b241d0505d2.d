/root/repo/target/debug/deps/proptest_codec-24f00b241d0505d2.d: crates/proto/tests/proptest_codec.rs

/root/repo/target/debug/deps/libproptest_codec-24f00b241d0505d2.rmeta: crates/proto/tests/proptest_codec.rs

crates/proto/tests/proptest_codec.rs:
