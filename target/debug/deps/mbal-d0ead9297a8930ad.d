/root/repo/target/debug/deps/mbal-d0ead9297a8930ad.d: src/lib.rs

/root/repo/target/debug/deps/libmbal-d0ead9297a8930ad.rmeta: src/lib.rs

src/lib.rs:
