/root/repo/target/debug/deps/mbal_ilp-f683e73f8a06045f.d: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/model.rs crates/ilp/src/simplex.rs

/root/repo/target/debug/deps/mbal_ilp-f683e73f8a06045f: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/model.rs crates/ilp/src/simplex.rs

crates/ilp/src/lib.rs:
crates/ilp/src/branch.rs:
crates/ilp/src/model.rs:
crates/ilp/src/simplex.rs:
