/root/repo/target/debug/deps/proptest_cluster-c7018aa48430fa6e.d: crates/cluster/tests/proptest_cluster.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_cluster-c7018aa48430fa6e.rmeta: crates/cluster/tests/proptest_cluster.rs Cargo.toml

crates/cluster/tests/proptest_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
