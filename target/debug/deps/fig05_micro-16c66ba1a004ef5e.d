/root/repo/target/debug/deps/fig05_micro-16c66ba1a004ef5e.d: crates/bench/benches/fig05_micro.rs

/root/repo/target/debug/deps/libfig05_micro-16c66ba1a004ef5e.rmeta: crates/bench/benches/fig05_micro.rs

crates/bench/benches/fig05_micro.rs:
