/root/repo/target/debug/deps/table1_instances-50f90e02ca54613d.d: crates/bench/benches/table1_instances.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_instances-50f90e02ca54613d.rmeta: crates/bench/benches/table1_instances.rs Cargo.toml

crates/bench/benches/table1_instances.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
