/root/repo/target/debug/deps/extended_ops-46fab081ebfd8051.d: tests/extended_ops.rs

/root/repo/target/debug/deps/extended_ops-46fab081ebfd8051: tests/extended_ops.rs

tests/extended_ops.rs:
