/root/repo/target/debug/deps/tcp_faults-2db6331c58b09497.d: tests/tcp_faults.rs

/root/repo/target/debug/deps/tcp_faults-2db6331c58b09497: tests/tcp_faults.rs

tests/tcp_faults.rs:
