/root/repo/target/debug/deps/fig08_alloc-fc096a44cfbc7c11.d: crates/bench/benches/fig08_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_alloc-fc096a44cfbc7c11.rmeta: crates/bench/benches/fig08_alloc.rs Cargo.toml

crates/bench/benches/fig08_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
