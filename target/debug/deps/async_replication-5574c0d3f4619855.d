/root/repo/target/debug/deps/async_replication-5574c0d3f4619855.d: tests/async_replication.rs

/root/repo/target/debug/deps/async_replication-5574c0d3f4619855: tests/async_replication.rs

tests/async_replication.rs:
