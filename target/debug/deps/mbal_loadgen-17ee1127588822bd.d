/root/repo/target/debug/deps/mbal_loadgen-17ee1127588822bd.d: crates/bench/src/bin/mbal-loadgen.rs

/root/repo/target/debug/deps/mbal_loadgen-17ee1127588822bd: crates/bench/src/bin/mbal-loadgen.rs

crates/bench/src/bin/mbal-loadgen.rs:
