/root/repo/target/debug/deps/fig11_latency_breakdown-ddb8120d3d360f19.d: crates/bench/benches/fig11_latency_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_latency_breakdown-ddb8120d3d360f19.rmeta: crates/bench/benches/fig11_latency_breakdown.rs Cargo.toml

crates/bench/benches/fig11_latency_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
