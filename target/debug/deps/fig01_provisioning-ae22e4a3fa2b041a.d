/root/repo/target/debug/deps/fig01_provisioning-ae22e4a3fa2b041a.d: crates/bench/benches/fig01_provisioning.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_provisioning-ae22e4a3fa2b041a.rmeta: crates/bench/benches/fig01_provisioning.rs Cargo.toml

crates/bench/benches/fig01_provisioning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
