/root/repo/target/debug/deps/balancer_adaptivity-ee4800e3eabffcd3.d: tests/balancer_adaptivity.rs Cargo.toml

/root/repo/target/debug/deps/libbalancer_adaptivity-ee4800e3eabffcd3.rmeta: tests/balancer_adaptivity.rs Cargo.toml

tests/balancer_adaptivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
