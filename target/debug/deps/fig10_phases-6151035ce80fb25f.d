/root/repo/target/debug/deps/fig10_phases-6151035ce80fb25f.d: crates/bench/benches/fig10_phases.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_phases-6151035ce80fb25f.rmeta: crates/bench/benches/fig10_phases.rs Cargo.toml

crates/bench/benches/fig10_phases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
