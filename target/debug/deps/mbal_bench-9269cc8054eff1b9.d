/root/repo/target/debug/deps/mbal_bench-9269cc8054eff1b9.d: crates/bench/src/lib.rs crates/bench/src/loadgen.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_bench-9269cc8054eff1b9.rmeta: crates/bench/src/lib.rs crates/bench/src/loadgen.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/loadgen.rs:
Cargo.toml:

# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
