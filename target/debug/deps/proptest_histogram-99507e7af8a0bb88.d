/root/repo/target/debug/deps/proptest_histogram-99507e7af8a0bb88.d: crates/telemetry/tests/proptest_histogram.rs

/root/repo/target/debug/deps/proptest_histogram-99507e7af8a0bb88: crates/telemetry/tests/proptest_histogram.rs

crates/telemetry/tests/proptest_histogram.rs:
