/root/repo/target/debug/deps/mbal_loadgen-cb8ec047ead71445.d: crates/bench/src/bin/mbal-loadgen.rs

/root/repo/target/debug/deps/mbal_loadgen-cb8ec047ead71445: crates/bench/src/bin/mbal-loadgen.rs

crates/bench/src/bin/mbal-loadgen.rs:
