/root/repo/target/debug/deps/mbal-372d0c047d8a9e9b.d: src/lib.rs

/root/repo/target/debug/deps/mbal-372d0c047d8a9e9b: src/lib.rs

src/lib.rs:
