/root/repo/target/debug/deps/table2_phases-dc60cd46e74dc462.d: crates/bench/benches/table2_phases.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_phases-dc60cd46e74dc462.rmeta: crates/bench/benches/table2_phases.rs Cargo.toml

crates/bench/benches/table2_phases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
