/root/repo/target/debug/deps/parking_lot-97e925ae6db1f4c7.d: /root/repo/.stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-97e925ae6db1f4c7.rmeta: /root/repo/.stubs/parking_lot/src/lib.rs

/root/repo/.stubs/parking_lot/src/lib.rs:
