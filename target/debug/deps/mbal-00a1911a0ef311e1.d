/root/repo/target/debug/deps/mbal-00a1911a0ef311e1.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmbal-00a1911a0ef311e1.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
