/root/repo/target/debug/deps/mbal_workload-c598bc6faa9b1b16.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/latest.rs crates/workload/src/ycsb.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_workload-c598bc6faa9b1b16.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/latest.rs crates/workload/src/ycsb.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/latest.rs:
crates/workload/src/ycsb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
