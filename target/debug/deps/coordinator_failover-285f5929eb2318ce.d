/root/repo/target/debug/deps/coordinator_failover-285f5929eb2318ce.d: tests/coordinator_failover.rs Cargo.toml

/root/repo/target/debug/deps/libcoordinator_failover-285f5929eb2318ce.rmeta: tests/coordinator_failover.rs Cargo.toml

tests/coordinator_failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
