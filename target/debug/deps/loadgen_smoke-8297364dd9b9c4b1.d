/root/repo/target/debug/deps/loadgen_smoke-8297364dd9b9c4b1.d: crates/bench/tests/loadgen_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libloadgen_smoke-8297364dd9b9c4b1.rmeta: crates/bench/tests/loadgen_smoke.rs Cargo.toml

crates/bench/tests/loadgen_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
