/root/repo/target/debug/deps/migration_consistency-284951a4efe69ef4.d: tests/migration_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libmigration_consistency-284951a4efe69ef4.rmeta: tests/migration_consistency.rs Cargo.toml

tests/migration_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
