/root/repo/target/debug/deps/bytes-57769da16122040d.d: /root/repo/.stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-57769da16122040d.rmeta: /root/repo/.stubs/bytes/src/lib.rs

/root/repo/.stubs/bytes/src/lib.rs:
