/root/repo/target/debug/deps/mbal_membership-55db071f033bffce.d: crates/membership/src/lib.rs crates/membership/src/detector.rs crates/membership/src/view.rs

/root/repo/target/debug/deps/mbal_membership-55db071f033bffce: crates/membership/src/lib.rs crates/membership/src/detector.rs crates/membership/src/view.rs

crates/membership/src/lib.rs:
crates/membership/src/detector.rs:
crates/membership/src/view.rs:
