/root/repo/target/debug/deps/mbal_server-24c207fef8a71326.d: crates/server/src/bin/mbal-server.rs

/root/repo/target/debug/deps/mbal_server-24c207fef8a71326: crates/server/src/bin/mbal-server.rs

crates/server/src/bin/mbal-server.rs:
