/root/repo/target/debug/deps/mbal_client-537c6420dbc5f029.d: crates/client/src/lib.rs

/root/repo/target/debug/deps/libmbal_client-537c6420dbc5f029.rmeta: crates/client/src/lib.rs

crates/client/src/lib.rs:
