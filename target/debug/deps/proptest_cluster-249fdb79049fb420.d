/root/repo/target/debug/deps/proptest_cluster-249fdb79049fb420.d: crates/cluster/tests/proptest_cluster.rs

/root/repo/target/debug/deps/libproptest_cluster-249fdb79049fb420.rmeta: crates/cluster/tests/proptest_cluster.rs

crates/cluster/tests/proptest_cluster.rs:
