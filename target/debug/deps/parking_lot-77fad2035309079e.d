/root/repo/target/debug/deps/parking_lot-77fad2035309079e.d: /root/repo/.stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-77fad2035309079e.rlib: /root/repo/.stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-77fad2035309079e.rmeta: /root/repo/.stubs/parking_lot/src/lib.rs

/root/repo/.stubs/parking_lot/src/lib.rs:
