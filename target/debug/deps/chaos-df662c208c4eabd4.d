/root/repo/target/debug/deps/chaos-df662c208c4eabd4.d: tests/chaos.rs

/root/repo/target/debug/deps/libchaos-df662c208c4eabd4.rmeta: tests/chaos.rs

tests/chaos.rs:
