/root/repo/target/debug/deps/extended_ops-e342b64eb6db8b3f.d: tests/extended_ops.rs

/root/repo/target/debug/deps/libextended_ops-e342b64eb6db8b3f.rmeta: tests/extended_ops.rs

tests/extended_ops.rs:
