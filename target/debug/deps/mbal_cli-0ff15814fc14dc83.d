/root/repo/target/debug/deps/mbal_cli-0ff15814fc14dc83.d: crates/client/src/bin/mbal-cli.rs

/root/repo/target/debug/deps/libmbal_cli-0ff15814fc14dc83.rmeta: crates/client/src/bin/mbal-cli.rs

crates/client/src/bin/mbal-cli.rs:
