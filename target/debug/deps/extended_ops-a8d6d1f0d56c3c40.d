/root/repo/target/debug/deps/extended_ops-a8d6d1f0d56c3c40.d: tests/extended_ops.rs Cargo.toml

/root/repo/target/debug/deps/libextended_ops-a8d6d1f0d56c3c40.rmeta: tests/extended_ops.rs Cargo.toml

tests/extended_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
