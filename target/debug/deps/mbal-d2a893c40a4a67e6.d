/root/repo/target/debug/deps/mbal-d2a893c40a4a67e6.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmbal-d2a893c40a4a67e6.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
