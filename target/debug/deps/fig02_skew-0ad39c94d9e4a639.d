/root/repo/target/debug/deps/fig02_skew-0ad39c94d9e4a639.d: crates/bench/benches/fig02_skew.rs

/root/repo/target/debug/deps/libfig02_skew-0ad39c94d9e4a639.rmeta: crates/bench/benches/fig02_skew.rs

crates/bench/benches/fig02_skew.rs:
