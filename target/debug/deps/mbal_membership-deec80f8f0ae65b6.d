/root/repo/target/debug/deps/mbal_membership-deec80f8f0ae65b6.d: crates/membership/src/lib.rs crates/membership/src/detector.rs crates/membership/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_membership-deec80f8f0ae65b6.rmeta: crates/membership/src/lib.rs crates/membership/src/detector.rs crates/membership/src/view.rs Cargo.toml

crates/membership/src/lib.rs:
crates/membership/src/detector.rs:
crates/membership/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
