/root/repo/target/debug/deps/mbal_client-5ac507537433cc2b.d: crates/client/src/lib.rs

/root/repo/target/debug/deps/libmbal_client-5ac507537433cc2b.rmeta: crates/client/src/lib.rs

crates/client/src/lib.rs:
