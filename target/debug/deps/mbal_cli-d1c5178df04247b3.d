/root/repo/target/debug/deps/mbal_cli-d1c5178df04247b3.d: crates/client/src/bin/mbal-cli.rs

/root/repo/target/debug/deps/libmbal_cli-d1c5178df04247b3.rmeta: crates/client/src/bin/mbal-cli.rs

crates/client/src/bin/mbal-cli.rs:
