/root/repo/target/debug/deps/membership-c275474b10c5076c.d: tests/membership.rs

/root/repo/target/debug/deps/libmembership-c275474b10c5076c.rmeta: tests/membership.rs

tests/membership.rs:
