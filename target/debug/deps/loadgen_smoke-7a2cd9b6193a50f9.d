/root/repo/target/debug/deps/loadgen_smoke-7a2cd9b6193a50f9.d: crates/bench/tests/loadgen_smoke.rs

/root/repo/target/debug/deps/libloadgen_smoke-7a2cd9b6193a50f9.rmeta: crates/bench/tests/loadgen_smoke.rs

crates/bench/tests/loadgen_smoke.rs:
