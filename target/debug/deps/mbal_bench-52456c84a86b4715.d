/root/repo/target/debug/deps/mbal_bench-52456c84a86b4715.d: crates/bench/src/lib.rs crates/bench/src/loadgen.rs

/root/repo/target/debug/deps/libmbal_bench-52456c84a86b4715.rlib: crates/bench/src/lib.rs crates/bench/src/loadgen.rs

/root/repo/target/debug/deps/libmbal_bench-52456c84a86b4715.rmeta: crates/bench/src/lib.rs crates/bench/src/loadgen.rs

crates/bench/src/lib.rs:
crates/bench/src/loadgen.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
