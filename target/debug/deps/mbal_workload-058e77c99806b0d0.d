/root/repo/target/debug/deps/mbal_workload-058e77c99806b0d0.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/latest.rs crates/workload/src/ycsb.rs

/root/repo/target/debug/deps/libmbal_workload-058e77c99806b0d0.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/latest.rs crates/workload/src/ycsb.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/latest.rs:
crates/workload/src/ycsb.rs:
