/root/repo/target/debug/deps/mbal_membership-69e8285ca1309a3d.d: crates/membership/src/lib.rs crates/membership/src/detector.rs crates/membership/src/view.rs

/root/repo/target/debug/deps/libmbal_membership-69e8285ca1309a3d.rlib: crates/membership/src/lib.rs crates/membership/src/detector.rs crates/membership/src/view.rs

/root/repo/target/debug/deps/libmbal_membership-69e8285ca1309a3d.rmeta: crates/membership/src/lib.rs crates/membership/src/detector.rs crates/membership/src/view.rs

crates/membership/src/lib.rs:
crates/membership/src/detector.rs:
crates/membership/src/view.rs:
