/root/repo/target/debug/deps/tcp_faults-286baf0c25b63046.d: tests/tcp_faults.rs

/root/repo/target/debug/deps/libtcp_faults-286baf0c25b63046.rmeta: tests/tcp_faults.rs

tests/tcp_faults.rs:
