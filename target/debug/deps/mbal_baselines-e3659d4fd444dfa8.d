/root/repo/target/debug/deps/mbal_baselines-e3659d4fd444dfa8.d: crates/baselines/src/lib.rs crates/baselines/src/memcached.rs crates/baselines/src/mercury.rs crates/baselines/src/multi_instance.rs crates/baselines/src/owned.rs

/root/repo/target/debug/deps/libmbal_baselines-e3659d4fd444dfa8.rmeta: crates/baselines/src/lib.rs crates/baselines/src/memcached.rs crates/baselines/src/mercury.rs crates/baselines/src/multi_instance.rs crates/baselines/src/owned.rs

crates/baselines/src/lib.rs:
crates/baselines/src/memcached.rs:
crates/baselines/src/mercury.rs:
crates/baselines/src/multi_instance.rs:
crates/baselines/src/owned.rs:
