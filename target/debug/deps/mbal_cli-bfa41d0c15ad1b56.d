/root/repo/target/debug/deps/mbal_cli-bfa41d0c15ad1b56.d: crates/client/src/bin/mbal-cli.rs

/root/repo/target/debug/deps/mbal_cli-bfa41d0c15ad1b56: crates/client/src/bin/mbal-cli.rs

crates/client/src/bin/mbal-cli.rs:
