/root/repo/target/debug/deps/mbal_server-42c4f1b100eb65d8.d: crates/server/src/bin/mbal-server.rs

/root/repo/target/debug/deps/libmbal_server-42c4f1b100eb65d8.rmeta: crates/server/src/bin/mbal-server.rs

crates/server/src/bin/mbal-server.rs:
