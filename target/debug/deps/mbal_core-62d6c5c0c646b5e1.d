/root/repo/target/debug/deps/mbal_core-62d6c5c0c646b5e1.d: crates/core/src/lib.rs crates/core/src/cachelet.rs crates/core/src/clock.rs crates/core/src/engine/mod.rs crates/core/src/engine/seg.rs crates/core/src/engine/slab_lru.rs crates/core/src/hash.rs crates/core/src/hotkey.rs crates/core/src/mem/mod.rs crates/core/src/mem/global.rs crates/core/src/mem/local.rs crates/core/src/mem/sizeclass.rs crates/core/src/replica.rs crates/core/src/stats.rs crates/core/src/store.rs crates/core/src/table.rs crates/core/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_core-62d6c5c0c646b5e1.rmeta: crates/core/src/lib.rs crates/core/src/cachelet.rs crates/core/src/clock.rs crates/core/src/engine/mod.rs crates/core/src/engine/seg.rs crates/core/src/engine/slab_lru.rs crates/core/src/hash.rs crates/core/src/hotkey.rs crates/core/src/mem/mod.rs crates/core/src/mem/global.rs crates/core/src/mem/local.rs crates/core/src/mem/sizeclass.rs crates/core/src/replica.rs crates/core/src/stats.rs crates/core/src/store.rs crates/core/src/table.rs crates/core/src/types.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cachelet.rs:
crates/core/src/clock.rs:
crates/core/src/engine/mod.rs:
crates/core/src/engine/seg.rs:
crates/core/src/engine/slab_lru.rs:
crates/core/src/hash.rs:
crates/core/src/hotkey.rs:
crates/core/src/mem/mod.rs:
crates/core/src/mem/global.rs:
crates/core/src/mem/local.rs:
crates/core/src/mem/sizeclass.rs:
crates/core/src/replica.rs:
crates/core/src/stats.rs:
crates/core/src/store.rs:
crates/core/src/table.rs:
crates/core/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
