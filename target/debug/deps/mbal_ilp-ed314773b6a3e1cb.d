/root/repo/target/debug/deps/mbal_ilp-ed314773b6a3e1cb.d: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/model.rs crates/ilp/src/simplex.rs

/root/repo/target/debug/deps/libmbal_ilp-ed314773b6a3e1cb.rmeta: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/model.rs crates/ilp/src/simplex.rs

crates/ilp/src/lib.rs:
crates/ilp/src/branch.rs:
crates/ilp/src/model.rs:
crates/ilp/src/simplex.rs:
