/root/repo/target/debug/deps/mbal_balancer-77e4b8f025d1b9d6.d: crates/balancer/src/lib.rs crates/balancer/src/config.rs crates/balancer/src/coordinator.rs crates/balancer/src/driver.rs crates/balancer/src/events.rs crates/balancer/src/phase1.rs crates/balancer/src/phase2.rs crates/balancer/src/phase3.rs crates/balancer/src/plan.rs crates/balancer/src/replicated.rs crates/balancer/src/state.rs crates/balancer/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_balancer-77e4b8f025d1b9d6.rmeta: crates/balancer/src/lib.rs crates/balancer/src/config.rs crates/balancer/src/coordinator.rs crates/balancer/src/driver.rs crates/balancer/src/events.rs crates/balancer/src/phase1.rs crates/balancer/src/phase2.rs crates/balancer/src/phase3.rs crates/balancer/src/plan.rs crates/balancer/src/replicated.rs crates/balancer/src/state.rs crates/balancer/src/topology.rs Cargo.toml

crates/balancer/src/lib.rs:
crates/balancer/src/config.rs:
crates/balancer/src/coordinator.rs:
crates/balancer/src/driver.rs:
crates/balancer/src/events.rs:
crates/balancer/src/phase1.rs:
crates/balancer/src/phase2.rs:
crates/balancer/src/phase3.rs:
crates/balancer/src/plan.rs:
crates/balancer/src/replicated.rs:
crates/balancer/src/state.rs:
crates/balancer/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
