/root/repo/target/debug/deps/table1_instances-7fe0d596b5085902.d: crates/bench/benches/table1_instances.rs

/root/repo/target/debug/deps/libtable1_instances-7fe0d596b5085902.rmeta: crates/bench/benches/table1_instances.rs

crates/bench/benches/table1_instances.rs:
