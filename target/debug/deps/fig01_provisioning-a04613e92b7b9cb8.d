/root/repo/target/debug/deps/fig01_provisioning-a04613e92b7b9cb8.d: crates/bench/benches/fig01_provisioning.rs

/root/repo/target/debug/deps/libfig01_provisioning-a04613e92b7b9cb8.rmeta: crates/bench/benches/fig01_provisioning.rs

crates/bench/benches/fig01_provisioning.rs:
