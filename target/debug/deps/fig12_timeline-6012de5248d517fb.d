/root/repo/target/debug/deps/fig12_timeline-6012de5248d517fb.d: crates/bench/benches/fig12_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_timeline-6012de5248d517fb.rmeta: crates/bench/benches/fig12_timeline.rs Cargo.toml

crates/bench/benches/fig12_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
