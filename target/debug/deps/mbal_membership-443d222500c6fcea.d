/root/repo/target/debug/deps/mbal_membership-443d222500c6fcea.d: crates/membership/src/lib.rs crates/membership/src/detector.rs crates/membership/src/view.rs

/root/repo/target/debug/deps/libmbal_membership-443d222500c6fcea.rmeta: crates/membership/src/lib.rs crates/membership/src/detector.rs crates/membership/src/view.rs

crates/membership/src/lib.rs:
crates/membership/src/detector.rs:
crates/membership/src/view.rs:
