/root/repo/target/debug/deps/proptest_cluster-af782a9573347fc3.d: crates/cluster/tests/proptest_cluster.rs

/root/repo/target/debug/deps/proptest_cluster-af782a9573347fc3: crates/cluster/tests/proptest_cluster.rs

crates/cluster/tests/proptest_cluster.rs:
