/root/repo/target/debug/deps/rand-647e102546549794.d: /root/repo/.stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-647e102546549794.rmeta: /root/repo/.stubs/rand/src/lib.rs

/root/repo/.stubs/rand/src/lib.rs:
