/root/repo/target/debug/deps/engine_differential-8dba0f54eadc3ec4.d: crates/core/tests/engine_differential.rs

/root/repo/target/debug/deps/engine_differential-8dba0f54eadc3ec4: crates/core/tests/engine_differential.rs

crates/core/tests/engine_differential.rs:
