/root/repo/target/debug/deps/mbal_client-6ae167ac663640ad.d: crates/client/src/lib.rs

/root/repo/target/debug/deps/mbal_client-6ae167ac663640ad: crates/client/src/lib.rs

crates/client/src/lib.rs:
