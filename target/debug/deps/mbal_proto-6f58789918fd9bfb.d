/root/repo/target/debug/deps/mbal_proto-6f58789918fd9bfb.d: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/message.rs

/root/repo/target/debug/deps/libmbal_proto-6f58789918fd9bfb.rmeta: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/message.rs

crates/proto/src/lib.rs:
crates/proto/src/codec.rs:
crates/proto/src/message.rs:
