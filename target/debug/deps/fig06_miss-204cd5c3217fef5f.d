/root/repo/target/debug/deps/fig06_miss-204cd5c3217fef5f.d: crates/bench/benches/fig06_miss.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_miss-204cd5c3217fef5f.rmeta: crates/bench/benches/fig06_miss.rs Cargo.toml

crates/bench/benches/fig06_miss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
