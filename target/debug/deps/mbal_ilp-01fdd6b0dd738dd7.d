/root/repo/target/debug/deps/mbal_ilp-01fdd6b0dd738dd7.d: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/model.rs crates/ilp/src/simplex.rs

/root/repo/target/debug/deps/libmbal_ilp-01fdd6b0dd738dd7.rlib: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/model.rs crates/ilp/src/simplex.rs

/root/repo/target/debug/deps/libmbal_ilp-01fdd6b0dd738dd7.rmeta: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/model.rs crates/ilp/src/simplex.rs

crates/ilp/src/lib.rs:
crates/ilp/src/branch.rs:
crates/ilp/src/model.rs:
crates/ilp/src/simplex.rs:
