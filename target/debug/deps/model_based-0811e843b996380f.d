/root/repo/target/debug/deps/model_based-0811e843b996380f.d: tests/model_based.rs

/root/repo/target/debug/deps/model_based-0811e843b996380f: tests/model_based.rs

tests/model_based.rs:
