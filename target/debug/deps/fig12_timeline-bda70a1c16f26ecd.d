/root/repo/target/debug/deps/fig12_timeline-bda70a1c16f26ecd.d: crates/bench/benches/fig12_timeline.rs

/root/repo/target/debug/deps/libfig12_timeline-bda70a1c16f26ecd.rmeta: crates/bench/benches/fig12_timeline.rs

crates/bench/benches/fig12_timeline.rs:
