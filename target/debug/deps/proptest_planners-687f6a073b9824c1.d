/root/repo/target/debug/deps/proptest_planners-687f6a073b9824c1.d: crates/balancer/tests/proptest_planners.rs

/root/repo/target/debug/deps/libproptest_planners-687f6a073b9824c1.rmeta: crates/balancer/tests/proptest_planners.rs

crates/balancer/tests/proptest_planners.rs:
