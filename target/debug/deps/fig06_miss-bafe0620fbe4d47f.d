/root/repo/target/debug/deps/fig06_miss-bafe0620fbe4d47f.d: crates/bench/benches/fig06_miss.rs

/root/repo/target/debug/deps/libfig06_miss-bafe0620fbe4d47f.rmeta: crates/bench/benches/fig06_miss.rs

crates/bench/benches/fig06_miss.rs:
