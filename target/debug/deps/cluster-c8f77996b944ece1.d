/root/repo/target/debug/deps/cluster-c8f77996b944ece1.d: crates/client/tests/cluster.rs Cargo.toml

/root/repo/target/debug/deps/libcluster-c8f77996b944ece1.rmeta: crates/client/tests/cluster.rs Cargo.toml

crates/client/tests/cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
