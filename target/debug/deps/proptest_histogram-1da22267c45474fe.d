/root/repo/target/debug/deps/proptest_histogram-1da22267c45474fe.d: crates/telemetry/tests/proptest_histogram.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_histogram-1da22267c45474fe.rmeta: crates/telemetry/tests/proptest_histogram.rs Cargo.toml

crates/telemetry/tests/proptest_histogram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
