/root/repo/target/debug/deps/stats_wire-0a2669284e918f9e.d: tests/stats_wire.rs

/root/repo/target/debug/deps/stats_wire-0a2669284e918f9e: tests/stats_wire.rs

tests/stats_wire.rs:
