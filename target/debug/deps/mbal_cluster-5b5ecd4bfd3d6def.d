/root/repo/target/debug/deps/mbal_cluster-5b5ecd4bfd3d6def.d: crates/cluster/src/lib.rs crates/cluster/src/ec2.rs crates/cluster/src/engine.rs crates/cluster/src/multicore.rs crates/cluster/src/report.rs crates/cluster/src/sim.rs

/root/repo/target/debug/deps/libmbal_cluster-5b5ecd4bfd3d6def.rlib: crates/cluster/src/lib.rs crates/cluster/src/ec2.rs crates/cluster/src/engine.rs crates/cluster/src/multicore.rs crates/cluster/src/report.rs crates/cluster/src/sim.rs

/root/repo/target/debug/deps/libmbal_cluster-5b5ecd4bfd3d6def.rmeta: crates/cluster/src/lib.rs crates/cluster/src/ec2.rs crates/cluster/src/engine.rs crates/cluster/src/multicore.rs crates/cluster/src/report.rs crates/cluster/src/sim.rs

crates/cluster/src/lib.rs:
crates/cluster/src/ec2.rs:
crates/cluster/src/engine.rs:
crates/cluster/src/multicore.rs:
crates/cluster/src/report.rs:
crates/cluster/src/sim.rs:
