/root/repo/target/debug/deps/balancer_adaptivity-c120a41edff752a6.d: tests/balancer_adaptivity.rs

/root/repo/target/debug/deps/libbalancer_adaptivity-c120a41edff752a6.rmeta: tests/balancer_adaptivity.rs

tests/balancer_adaptivity.rs:
