/root/repo/target/debug/deps/end_to_end-6a2d20259d8ddf06.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-6a2d20259d8ddf06: tests/end_to_end.rs

tests/end_to_end.rs:
