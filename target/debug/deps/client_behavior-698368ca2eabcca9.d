/root/repo/target/debug/deps/client_behavior-698368ca2eabcca9.d: crates/client/tests/client_behavior.rs

/root/repo/target/debug/deps/client_behavior-698368ca2eabcca9: crates/client/tests/client_behavior.rs

crates/client/tests/client_behavior.rs:
