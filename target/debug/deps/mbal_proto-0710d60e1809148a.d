/root/repo/target/debug/deps/mbal_proto-0710d60e1809148a.d: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/message.rs

/root/repo/target/debug/deps/libmbal_proto-0710d60e1809148a.rlib: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/message.rs

/root/repo/target/debug/deps/libmbal_proto-0710d60e1809148a.rmeta: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/message.rs

crates/proto/src/lib.rs:
crates/proto/src/codec.rs:
crates/proto/src/message.rs:
