/root/repo/target/debug/deps/coordinator_failover-a3bd9c027ac52a6f.d: tests/coordinator_failover.rs

/root/repo/target/debug/deps/coordinator_failover-a3bd9c027ac52a6f: tests/coordinator_failover.rs

tests/coordinator_failover.rs:
