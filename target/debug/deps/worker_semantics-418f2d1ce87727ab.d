/root/repo/target/debug/deps/worker_semantics-418f2d1ce87727ab.d: crates/server/tests/worker_semantics.rs

/root/repo/target/debug/deps/libworker_semantics-418f2d1ce87727ab.rmeta: crates/server/tests/worker_semantics.rs

crates/server/tests/worker_semantics.rs:
