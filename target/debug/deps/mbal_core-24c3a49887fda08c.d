/root/repo/target/debug/deps/mbal_core-24c3a49887fda08c.d: crates/core/src/lib.rs crates/core/src/cachelet.rs crates/core/src/clock.rs crates/core/src/engine/mod.rs crates/core/src/engine/seg.rs crates/core/src/engine/slab_lru.rs crates/core/src/hash.rs crates/core/src/hotkey.rs crates/core/src/mem/mod.rs crates/core/src/mem/global.rs crates/core/src/mem/local.rs crates/core/src/mem/sizeclass.rs crates/core/src/replica.rs crates/core/src/stats.rs crates/core/src/store.rs crates/core/src/table.rs crates/core/src/types.rs

/root/repo/target/debug/deps/libmbal_core-24c3a49887fda08c.rmeta: crates/core/src/lib.rs crates/core/src/cachelet.rs crates/core/src/clock.rs crates/core/src/engine/mod.rs crates/core/src/engine/seg.rs crates/core/src/engine/slab_lru.rs crates/core/src/hash.rs crates/core/src/hotkey.rs crates/core/src/mem/mod.rs crates/core/src/mem/global.rs crates/core/src/mem/local.rs crates/core/src/mem/sizeclass.rs crates/core/src/replica.rs crates/core/src/stats.rs crates/core/src/store.rs crates/core/src/table.rs crates/core/src/types.rs

crates/core/src/lib.rs:
crates/core/src/cachelet.rs:
crates/core/src/clock.rs:
crates/core/src/engine/mod.rs:
crates/core/src/engine/seg.rs:
crates/core/src/engine/slab_lru.rs:
crates/core/src/hash.rs:
crates/core/src/hotkey.rs:
crates/core/src/mem/mod.rs:
crates/core/src/mem/global.rs:
crates/core/src/mem/local.rs:
crates/core/src/mem/sizeclass.rs:
crates/core/src/replica.rs:
crates/core/src/stats.rs:
crates/core/src/store.rs:
crates/core/src/table.rs:
crates/core/src/types.rs:
