/root/repo/target/debug/deps/mbal_baselines-34b794a07ab22753.d: crates/baselines/src/lib.rs crates/baselines/src/memcached.rs crates/baselines/src/mercury.rs crates/baselines/src/multi_instance.rs crates/baselines/src/owned.rs

/root/repo/target/debug/deps/mbal_baselines-34b794a07ab22753: crates/baselines/src/lib.rs crates/baselines/src/memcached.rs crates/baselines/src/mercury.rs crates/baselines/src/multi_instance.rs crates/baselines/src/owned.rs

crates/baselines/src/lib.rs:
crates/baselines/src/memcached.rs:
crates/baselines/src/mercury.rs:
crates/baselines/src/multi_instance.rs:
crates/baselines/src/owned.rs:
