/root/repo/target/debug/deps/mbal_ring-66ca0e139e40a34d.d: crates/ring/src/lib.rs crates/ring/src/mapping.rs crates/ring/src/ring.rs

/root/repo/target/debug/deps/libmbal_ring-66ca0e139e40a34d.rmeta: crates/ring/src/lib.rs crates/ring/src/mapping.rs crates/ring/src/ring.rs

crates/ring/src/lib.rs:
crates/ring/src/mapping.rs:
crates/ring/src/ring.rs:
