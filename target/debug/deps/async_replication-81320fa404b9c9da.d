/root/repo/target/debug/deps/async_replication-81320fa404b9c9da.d: tests/async_replication.rs

/root/repo/target/debug/deps/libasync_replication-81320fa404b9c9da.rmeta: tests/async_replication.rs

tests/async_replication.rs:
