/root/repo/target/debug/deps/mbal_ring-270f267ddcee93fe.d: crates/ring/src/lib.rs crates/ring/src/mapping.rs crates/ring/src/ring.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_ring-270f267ddcee93fe.rmeta: crates/ring/src/lib.rs crates/ring/src/mapping.rs crates/ring/src/ring.rs Cargo.toml

crates/ring/src/lib.rs:
crates/ring/src/mapping.rs:
crates/ring/src/ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
