/root/repo/target/debug/deps/serde_json-bbebbf7eef0f65ab.d: /root/repo/.stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-bbebbf7eef0f65ab.rmeta: /root/repo/.stubs/serde_json/src/lib.rs

/root/repo/.stubs/serde_json/src/lib.rs:
