/root/repo/target/debug/deps/proptest_codec-1d8372a08e892c2b.d: crates/proto/tests/proptest_codec.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_codec-1d8372a08e892c2b.rmeta: crates/proto/tests/proptest_codec.rs Cargo.toml

crates/proto/tests/proptest_codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
