/root/repo/target/debug/deps/engine_differential-46c1ff0ba4f469ca.d: crates/core/tests/engine_differential.rs Cargo.toml

/root/repo/target/debug/deps/libengine_differential-46c1ff0ba4f469ca.rmeta: crates/core/tests/engine_differential.rs Cargo.toml

crates/core/tests/engine_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
