/root/repo/target/debug/deps/proptest_ilp-89cf66d1ea1aa954.d: crates/ilp/tests/proptest_ilp.rs

/root/repo/target/debug/deps/libproptest_ilp-89cf66d1ea1aa954.rmeta: crates/ilp/tests/proptest_ilp.rs

crates/ilp/tests/proptest_ilp.rs:
