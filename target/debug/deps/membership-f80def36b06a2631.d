/root/repo/target/debug/deps/membership-f80def36b06a2631.d: tests/membership.rs Cargo.toml

/root/repo/target/debug/deps/libmembership-f80def36b06a2631.rmeta: tests/membership.rs Cargo.toml

tests/membership.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
