/root/repo/target/debug/deps/fig05_micro-4e01ad1e0cabfb58.d: crates/bench/benches/fig05_micro.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_micro-4e01ad1e0cabfb58.rmeta: crates/bench/benches/fig05_micro.rs Cargo.toml

crates/bench/benches/fig05_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
