/root/repo/target/debug/deps/mbal_baselines-8d68d4a2120b02c8.d: crates/baselines/src/lib.rs crates/baselines/src/memcached.rs crates/baselines/src/mercury.rs crates/baselines/src/multi_instance.rs crates/baselines/src/owned.rs

/root/repo/target/debug/deps/libmbal_baselines-8d68d4a2120b02c8.rlib: crates/baselines/src/lib.rs crates/baselines/src/memcached.rs crates/baselines/src/mercury.rs crates/baselines/src/multi_instance.rs crates/baselines/src/owned.rs

/root/repo/target/debug/deps/libmbal_baselines-8d68d4a2120b02c8.rmeta: crates/baselines/src/lib.rs crates/baselines/src/memcached.rs crates/baselines/src/mercury.rs crates/baselines/src/multi_instance.rs crates/baselines/src/owned.rs

crates/baselines/src/lib.rs:
crates/baselines/src/memcached.rs:
crates/baselines/src/mercury.rs:
crates/baselines/src/multi_instance.rs:
crates/baselines/src/owned.rs:
