/root/repo/target/debug/deps/fig10_phases-6a4f9ccb1735074d.d: crates/bench/benches/fig10_phases.rs

/root/repo/target/debug/deps/libfig10_phases-6a4f9ccb1735074d.rmeta: crates/bench/benches/fig10_phases.rs

crates/bench/benches/fig10_phases.rs:
