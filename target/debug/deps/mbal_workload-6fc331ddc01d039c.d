/root/repo/target/debug/deps/mbal_workload-6fc331ddc01d039c.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/latest.rs crates/workload/src/ycsb.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_workload-6fc331ddc01d039c.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/latest.rs crates/workload/src/ycsb.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/latest.rs:
crates/workload/src/ycsb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
