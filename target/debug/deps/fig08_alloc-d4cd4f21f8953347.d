/root/repo/target/debug/deps/fig08_alloc-d4cd4f21f8953347.d: crates/bench/benches/fig08_alloc.rs

/root/repo/target/debug/deps/libfig08_alloc-d4cd4f21f8953347.rmeta: crates/bench/benches/fig08_alloc.rs

crates/bench/benches/fig08_alloc.rs:
