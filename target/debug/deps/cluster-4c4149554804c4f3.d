/root/repo/target/debug/deps/cluster-4c4149554804c4f3.d: crates/client/tests/cluster.rs

/root/repo/target/debug/deps/libcluster-4c4149554804c4f3.rmeta: crates/client/tests/cluster.rs

crates/client/tests/cluster.rs:
