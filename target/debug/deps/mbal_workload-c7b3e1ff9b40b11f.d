/root/repo/target/debug/deps/mbal_workload-c7b3e1ff9b40b11f.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/latest.rs crates/workload/src/ycsb.rs

/root/repo/target/debug/deps/libmbal_workload-c7b3e1ff9b40b11f.rlib: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/latest.rs crates/workload/src/ycsb.rs

/root/repo/target/debug/deps/libmbal_workload-c7b3e1ff9b40b11f.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/latest.rs crates/workload/src/ycsb.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/latest.rs:
crates/workload/src/ycsb.rs:
