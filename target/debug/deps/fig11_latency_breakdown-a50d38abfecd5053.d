/root/repo/target/debug/deps/fig11_latency_breakdown-a50d38abfecd5053.d: crates/bench/benches/fig11_latency_breakdown.rs

/root/repo/target/debug/deps/libfig11_latency_breakdown-a50d38abfecd5053.rmeta: crates/bench/benches/fig11_latency_breakdown.rs

crates/bench/benches/fig11_latency_breakdown.rs:
