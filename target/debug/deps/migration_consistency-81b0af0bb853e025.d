/root/repo/target/debug/deps/migration_consistency-81b0af0bb853e025.d: tests/migration_consistency.rs

/root/repo/target/debug/deps/migration_consistency-81b0af0bb853e025: tests/migration_consistency.rs

tests/migration_consistency.rs:
