/root/repo/target/debug/deps/proptest_ring-b9e18b18095b3e32.d: crates/ring/tests/proptest_ring.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_ring-b9e18b18095b3e32.rmeta: crates/ring/tests/proptest_ring.rs Cargo.toml

crates/ring/tests/proptest_ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
