/root/repo/target/debug/deps/proptest_codec-3120923b04d47fa8.d: crates/proto/tests/proptest_codec.rs

/root/repo/target/debug/deps/proptest_codec-3120923b04d47fa8: crates/proto/tests/proptest_codec.rs

crates/proto/tests/proptest_codec.rs:
