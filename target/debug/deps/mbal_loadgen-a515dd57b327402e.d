/root/repo/target/debug/deps/mbal_loadgen-a515dd57b327402e.d: crates/bench/src/bin/mbal-loadgen.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_loadgen-a515dd57b327402e.rmeta: crates/bench/src/bin/mbal-loadgen.rs Cargo.toml

crates/bench/src/bin/mbal-loadgen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
