/root/repo/target/debug/deps/mbal_telemetry-0599801c71fa8411.d: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

/root/repo/target/debug/deps/libmbal_telemetry-0599801c71fa8411.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

/root/repo/target/debug/deps/libmbal_telemetry-0599801c71fa8411.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
