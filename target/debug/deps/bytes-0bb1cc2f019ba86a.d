/root/repo/target/debug/deps/bytes-0bb1cc2f019ba86a.d: /root/repo/.stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-0bb1cc2f019ba86a.rlib: /root/repo/.stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-0bb1cc2f019ba86a.rmeta: /root/repo/.stubs/bytes/src/lib.rs

/root/repo/.stubs/bytes/src/lib.rs:
