/root/repo/target/debug/deps/model_based-bb083f264834d1ec.d: tests/model_based.rs

/root/repo/target/debug/deps/libmodel_based-bb083f264834d1ec.rmeta: tests/model_based.rs

tests/model_based.rs:
