/root/repo/target/debug/deps/mbal_cli-84f3c36cda4c1018.d: crates/client/src/bin/mbal-cli.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_cli-84f3c36cda4c1018.rmeta: crates/client/src/bin/mbal-cli.rs Cargo.toml

crates/client/src/bin/mbal-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
