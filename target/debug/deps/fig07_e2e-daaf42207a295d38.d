/root/repo/target/debug/deps/fig07_e2e-daaf42207a295d38.d: crates/bench/benches/fig07_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_e2e-daaf42207a295d38.rmeta: crates/bench/benches/fig07_e2e.rs Cargo.toml

crates/bench/benches/fig07_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
