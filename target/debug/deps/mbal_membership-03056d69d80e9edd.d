/root/repo/target/debug/deps/mbal_membership-03056d69d80e9edd.d: crates/membership/src/lib.rs crates/membership/src/detector.rs crates/membership/src/view.rs

/root/repo/target/debug/deps/libmbal_membership-03056d69d80e9edd.rmeta: crates/membership/src/lib.rs crates/membership/src/detector.rs crates/membership/src/view.rs

crates/membership/src/lib.rs:
crates/membership/src/detector.rs:
crates/membership/src/view.rs:
