/root/repo/target/debug/deps/mbal_cli-2b5771a9b9a81011.d: crates/client/src/bin/mbal-cli.rs

/root/repo/target/debug/deps/mbal_cli-2b5771a9b9a81011: crates/client/src/bin/mbal-cli.rs

crates/client/src/bin/mbal-cli.rs:
