/root/repo/target/debug/deps/mbal_ring-6a4f6111eb5dde25.d: crates/ring/src/lib.rs crates/ring/src/mapping.rs crates/ring/src/ring.rs

/root/repo/target/debug/deps/libmbal_ring-6a4f6111eb5dde25.rlib: crates/ring/src/lib.rs crates/ring/src/mapping.rs crates/ring/src/ring.rs

/root/repo/target/debug/deps/libmbal_ring-6a4f6111eb5dde25.rmeta: crates/ring/src/lib.rs crates/ring/src/mapping.rs crates/ring/src/ring.rs

crates/ring/src/lib.rs:
crates/ring/src/mapping.rs:
crates/ring/src/ring.rs:
