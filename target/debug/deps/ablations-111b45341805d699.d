/root/repo/target/debug/deps/ablations-111b45341805d699.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/libablations-111b45341805d699.rmeta: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
