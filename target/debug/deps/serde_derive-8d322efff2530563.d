/root/repo/target/debug/deps/serde_derive-8d322efff2530563.d: /root/repo/.stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-8d322efff2530563.so: /root/repo/.stubs/serde_derive/src/lib.rs

/root/repo/.stubs/serde_derive/src/lib.rs:
