/root/repo/target/debug/deps/mbal_membership-944706ef0f5bc4a9.d: crates/membership/src/lib.rs crates/membership/src/detector.rs crates/membership/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_membership-944706ef0f5bc4a9.rmeta: crates/membership/src/lib.rs crates/membership/src/detector.rs crates/membership/src/view.rs Cargo.toml

crates/membership/src/lib.rs:
crates/membership/src/detector.rs:
crates/membership/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
