/root/repo/target/debug/deps/mbal_workload-47aa4ed676543d51.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/latest.rs crates/workload/src/ycsb.rs

/root/repo/target/debug/deps/mbal_workload-47aa4ed676543d51: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/latest.rs crates/workload/src/ycsb.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/latest.rs:
crates/workload/src/ycsb.rs:
