/root/repo/target/debug/deps/proptest_core-50919696fab19d5f.d: crates/core/tests/proptest_core.rs

/root/repo/target/debug/deps/proptest_core-50919696fab19d5f: crates/core/tests/proptest_core.rs

crates/core/tests/proptest_core.rs:
