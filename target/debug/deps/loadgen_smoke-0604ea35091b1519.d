/root/repo/target/debug/deps/loadgen_smoke-0604ea35091b1519.d: crates/bench/tests/loadgen_smoke.rs

/root/repo/target/debug/deps/loadgen_smoke-0604ea35091b1519: crates/bench/tests/loadgen_smoke.rs

crates/bench/tests/loadgen_smoke.rs:
