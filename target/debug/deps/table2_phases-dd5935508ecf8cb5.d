/root/repo/target/debug/deps/table2_phases-dd5935508ecf8cb5.d: crates/bench/benches/table2_phases.rs

/root/repo/target/debug/deps/libtable2_phases-dd5935508ecf8cb5.rmeta: crates/bench/benches/table2_phases.rs

crates/bench/benches/table2_phases.rs:
