/root/repo/target/debug/deps/proptest_core-4fe6229da4936d39.d: crates/core/tests/proptest_core.rs

/root/repo/target/debug/deps/libproptest_core-4fe6229da4936d39.rmeta: crates/core/tests/proptest_core.rs

crates/core/tests/proptest_core.rs:
