/root/repo/target/debug/deps/worker_semantics-4dbfaec2a23a6348.d: crates/server/tests/worker_semantics.rs

/root/repo/target/debug/deps/worker_semantics-4dbfaec2a23a6348: crates/server/tests/worker_semantics.rs

crates/server/tests/worker_semantics.rs:
