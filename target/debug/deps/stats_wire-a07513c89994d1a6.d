/root/repo/target/debug/deps/stats_wire-a07513c89994d1a6.d: tests/stats_wire.rs Cargo.toml

/root/repo/target/debug/deps/libstats_wire-a07513c89994d1a6.rmeta: tests/stats_wire.rs Cargo.toml

tests/stats_wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
