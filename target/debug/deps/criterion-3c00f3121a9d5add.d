/root/repo/target/debug/deps/criterion-3c00f3121a9d5add.d: /root/repo/.stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-3c00f3121a9d5add.rmeta: /root/repo/.stubs/criterion/src/lib.rs

/root/repo/.stubs/criterion/src/lib.rs:
