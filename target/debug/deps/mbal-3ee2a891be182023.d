/root/repo/target/debug/deps/mbal-3ee2a891be182023.d: src/lib.rs

/root/repo/target/debug/deps/libmbal-3ee2a891be182023.rlib: src/lib.rs

/root/repo/target/debug/deps/libmbal-3ee2a891be182023.rmeta: src/lib.rs

src/lib.rs:
