/root/repo/target/debug/deps/mbal_server-1eb1d2b34c91c4f9.d: crates/server/src/bin/mbal-server.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_server-1eb1d2b34c91c4f9.rmeta: crates/server/src/bin/mbal-server.rs Cargo.toml

crates/server/src/bin/mbal-server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
