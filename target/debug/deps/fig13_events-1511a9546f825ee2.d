/root/repo/target/debug/deps/fig13_events-1511a9546f825ee2.d: crates/bench/benches/fig13_events.rs

/root/repo/target/debug/deps/libfig13_events-1511a9546f825ee2.rmeta: crates/bench/benches/fig13_events.rs

crates/bench/benches/fig13_events.rs:
