/root/repo/target/debug/deps/mbal_loadgen-fe3a4655321dc7bd.d: crates/bench/src/bin/mbal-loadgen.rs

/root/repo/target/debug/deps/libmbal_loadgen-fe3a4655321dc7bd.rmeta: crates/bench/src/bin/mbal-loadgen.rs

crates/bench/src/bin/mbal-loadgen.rs:
