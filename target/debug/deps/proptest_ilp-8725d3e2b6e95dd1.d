/root/repo/target/debug/deps/proptest_ilp-8725d3e2b6e95dd1.d: crates/ilp/tests/proptest_ilp.rs

/root/repo/target/debug/deps/proptest_ilp-8725d3e2b6e95dd1: crates/ilp/tests/proptest_ilp.rs

crates/ilp/tests/proptest_ilp.rs:
