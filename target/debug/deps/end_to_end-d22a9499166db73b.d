/root/repo/target/debug/deps/end_to_end-d22a9499166db73b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-d22a9499166db73b.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
