/root/repo/target/debug/deps/proptest_planners-bba1c21dc9652133.d: crates/balancer/tests/proptest_planners.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_planners-bba1c21dc9652133.rmeta: crates/balancer/tests/proptest_planners.rs Cargo.toml

crates/balancer/tests/proptest_planners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
