/root/repo/target/debug/deps/tcp_faults-24caca1282922810.d: tests/tcp_faults.rs Cargo.toml

/root/repo/target/debug/deps/libtcp_faults-24caca1282922810.rmeta: tests/tcp_faults.rs Cargo.toml

tests/tcp_faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
