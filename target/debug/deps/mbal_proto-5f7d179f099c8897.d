/root/repo/target/debug/deps/mbal_proto-5f7d179f099c8897.d: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/message.rs

/root/repo/target/debug/deps/libmbal_proto-5f7d179f099c8897.rmeta: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/message.rs

crates/proto/src/lib.rs:
crates/proto/src/codec.rs:
crates/proto/src/message.rs:
