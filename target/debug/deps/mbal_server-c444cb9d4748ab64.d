/root/repo/target/debug/deps/mbal_server-c444cb9d4748ab64.d: crates/server/src/bin/mbal-server.rs

/root/repo/target/debug/deps/mbal_server-c444cb9d4748ab64: crates/server/src/bin/mbal-server.rs

crates/server/src/bin/mbal-server.rs:
