/root/repo/target/debug/deps/mbal_ring-2a5d50b5494033ba.d: crates/ring/src/lib.rs crates/ring/src/mapping.rs crates/ring/src/ring.rs

/root/repo/target/debug/deps/libmbal_ring-2a5d50b5494033ba.rmeta: crates/ring/src/lib.rs crates/ring/src/mapping.rs crates/ring/src/ring.rs

crates/ring/src/lib.rs:
crates/ring/src/mapping.rs:
crates/ring/src/ring.rs:
