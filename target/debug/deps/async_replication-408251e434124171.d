/root/repo/target/debug/deps/async_replication-408251e434124171.d: tests/async_replication.rs Cargo.toml

/root/repo/target/debug/deps/libasync_replication-408251e434124171.rmeta: tests/async_replication.rs Cargo.toml

tests/async_replication.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
