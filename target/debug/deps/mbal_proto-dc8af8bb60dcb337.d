/root/repo/target/debug/deps/mbal_proto-dc8af8bb60dcb337.d: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/message.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_proto-dc8af8bb60dcb337.rmeta: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/message.rs Cargo.toml

crates/proto/src/lib.rs:
crates/proto/src/codec.rs:
crates/proto/src/message.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
