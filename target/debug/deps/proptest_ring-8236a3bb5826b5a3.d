/root/repo/target/debug/deps/proptest_ring-8236a3bb5826b5a3.d: crates/ring/tests/proptest_ring.rs

/root/repo/target/debug/deps/proptest_ring-8236a3bb5826b5a3: crates/ring/tests/proptest_ring.rs

crates/ring/tests/proptest_ring.rs:
