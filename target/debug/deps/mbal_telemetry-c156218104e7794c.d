/root/repo/target/debug/deps/mbal_telemetry-c156218104e7794c.d: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

/root/repo/target/debug/deps/mbal_telemetry-c156218104e7794c: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
