/root/repo/target/debug/deps/mbal_server-657c4644163b55da.d: crates/server/src/lib.rs crates/server/src/config.rs crates/server/src/fault.rs crates/server/src/messages.rs crates/server/src/metrics_http.rs crates/server/src/server.rs crates/server/src/tcp.rs crates/server/src/transport.rs crates/server/src/unit.rs crates/server/src/worker.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_server-657c4644163b55da.rmeta: crates/server/src/lib.rs crates/server/src/config.rs crates/server/src/fault.rs crates/server/src/messages.rs crates/server/src/metrics_http.rs crates/server/src/server.rs crates/server/src/tcp.rs crates/server/src/transport.rs crates/server/src/unit.rs crates/server/src/worker.rs Cargo.toml

crates/server/src/lib.rs:
crates/server/src/config.rs:
crates/server/src/fault.rs:
crates/server/src/messages.rs:
crates/server/src/metrics_http.rs:
crates/server/src/server.rs:
crates/server/src/tcp.rs:
crates/server/src/transport.rs:
crates/server/src/unit.rs:
crates/server/src/worker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
