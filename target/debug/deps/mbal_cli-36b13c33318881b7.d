/root/repo/target/debug/deps/mbal_cli-36b13c33318881b7.d: crates/client/src/bin/mbal-cli.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_cli-36b13c33318881b7.rmeta: crates/client/src/bin/mbal-cli.rs Cargo.toml

crates/client/src/bin/mbal-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
