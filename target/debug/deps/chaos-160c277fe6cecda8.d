/root/repo/target/debug/deps/chaos-160c277fe6cecda8.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-160c277fe6cecda8: tests/chaos.rs

tests/chaos.rs:
