/root/repo/target/debug/deps/mbal_balancer-47173ca7a532073d.d: crates/balancer/src/lib.rs crates/balancer/src/config.rs crates/balancer/src/coordinator.rs crates/balancer/src/driver.rs crates/balancer/src/events.rs crates/balancer/src/phase1.rs crates/balancer/src/phase2.rs crates/balancer/src/phase3.rs crates/balancer/src/plan.rs crates/balancer/src/replicated.rs crates/balancer/src/state.rs crates/balancer/src/topology.rs

/root/repo/target/debug/deps/mbal_balancer-47173ca7a532073d: crates/balancer/src/lib.rs crates/balancer/src/config.rs crates/balancer/src/coordinator.rs crates/balancer/src/driver.rs crates/balancer/src/events.rs crates/balancer/src/phase1.rs crates/balancer/src/phase2.rs crates/balancer/src/phase3.rs crates/balancer/src/plan.rs crates/balancer/src/replicated.rs crates/balancer/src/state.rs crates/balancer/src/topology.rs

crates/balancer/src/lib.rs:
crates/balancer/src/config.rs:
crates/balancer/src/coordinator.rs:
crates/balancer/src/driver.rs:
crates/balancer/src/events.rs:
crates/balancer/src/phase1.rs:
crates/balancer/src/phase2.rs:
crates/balancer/src/phase3.rs:
crates/balancer/src/plan.rs:
crates/balancer/src/replicated.rs:
crates/balancer/src/state.rs:
crates/balancer/src/topology.rs:
