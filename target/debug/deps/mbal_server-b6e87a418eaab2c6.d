/root/repo/target/debug/deps/mbal_server-b6e87a418eaab2c6.d: crates/server/src/bin/mbal-server.rs

/root/repo/target/debug/deps/libmbal_server-b6e87a418eaab2c6.rmeta: crates/server/src/bin/mbal-server.rs

crates/server/src/bin/mbal-server.rs:
