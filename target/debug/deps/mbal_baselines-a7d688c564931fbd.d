/root/repo/target/debug/deps/mbal_baselines-a7d688c564931fbd.d: crates/baselines/src/lib.rs crates/baselines/src/memcached.rs crates/baselines/src/mercury.rs crates/baselines/src/multi_instance.rs crates/baselines/src/owned.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_baselines-a7d688c564931fbd.rmeta: crates/baselines/src/lib.rs crates/baselines/src/memcached.rs crates/baselines/src/mercury.rs crates/baselines/src/multi_instance.rs crates/baselines/src/owned.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/memcached.rs:
crates/baselines/src/mercury.rs:
crates/baselines/src/multi_instance.rs:
crates/baselines/src/owned.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
