/root/repo/target/debug/deps/proptest_ilp-69d2c02e322428d7.d: crates/ilp/tests/proptest_ilp.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_ilp-69d2c02e322428d7.rmeta: crates/ilp/tests/proptest_ilp.rs Cargo.toml

crates/ilp/tests/proptest_ilp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
