/root/repo/target/debug/deps/coordinator_failover-e8939d3406094efa.d: tests/coordinator_failover.rs

/root/repo/target/debug/deps/libcoordinator_failover-e8939d3406094efa.rmeta: tests/coordinator_failover.rs

tests/coordinator_failover.rs:
