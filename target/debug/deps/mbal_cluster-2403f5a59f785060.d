/root/repo/target/debug/deps/mbal_cluster-2403f5a59f785060.d: crates/cluster/src/lib.rs crates/cluster/src/ec2.rs crates/cluster/src/engine.rs crates/cluster/src/multicore.rs crates/cluster/src/report.rs crates/cluster/src/sim.rs

/root/repo/target/debug/deps/libmbal_cluster-2403f5a59f785060.rmeta: crates/cluster/src/lib.rs crates/cluster/src/ec2.rs crates/cluster/src/engine.rs crates/cluster/src/multicore.rs crates/cluster/src/report.rs crates/cluster/src/sim.rs

crates/cluster/src/lib.rs:
crates/cluster/src/ec2.rs:
crates/cluster/src/engine.rs:
crates/cluster/src/multicore.rs:
crates/cluster/src/report.rs:
crates/cluster/src/sim.rs:
