/root/repo/target/debug/deps/mbal_client-fd3f794ac88d5ca5.d: crates/client/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_client-fd3f794ac88d5ca5.rmeta: crates/client/src/lib.rs Cargo.toml

crates/client/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
