/root/repo/target/debug/deps/crossbeam_channel-5c3cac01e6369d3e.d: /root/repo/.stubs/crossbeam-channel/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_channel-5c3cac01e6369d3e.rlib: /root/repo/.stubs/crossbeam-channel/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_channel-5c3cac01e6369d3e.rmeta: /root/repo/.stubs/crossbeam-channel/src/lib.rs

/root/repo/.stubs/crossbeam-channel/src/lib.rs:
