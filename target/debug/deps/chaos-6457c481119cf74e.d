/root/repo/target/debug/deps/chaos-6457c481119cf74e.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-6457c481119cf74e.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
