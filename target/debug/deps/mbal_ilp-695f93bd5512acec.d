/root/repo/target/debug/deps/mbal_ilp-695f93bd5512acec.d: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/model.rs crates/ilp/src/simplex.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_ilp-695f93bd5512acec.rmeta: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/model.rs crates/ilp/src/simplex.rs Cargo.toml

crates/ilp/src/lib.rs:
crates/ilp/src/branch.rs:
crates/ilp/src/model.rs:
crates/ilp/src/simplex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
