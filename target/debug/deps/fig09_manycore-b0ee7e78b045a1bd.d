/root/repo/target/debug/deps/fig09_manycore-b0ee7e78b045a1bd.d: crates/bench/benches/fig09_manycore.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_manycore-b0ee7e78b045a1bd.rmeta: crates/bench/benches/fig09_manycore.rs Cargo.toml

crates/bench/benches/fig09_manycore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
