/root/repo/target/debug/deps/proptest_histogram-76533136e864b7e4.d: crates/telemetry/tests/proptest_histogram.rs

/root/repo/target/debug/deps/libproptest_histogram-76533136e864b7e4.rmeta: crates/telemetry/tests/proptest_histogram.rs

crates/telemetry/tests/proptest_histogram.rs:
