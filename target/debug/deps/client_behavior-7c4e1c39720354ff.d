/root/repo/target/debug/deps/client_behavior-7c4e1c39720354ff.d: crates/client/tests/client_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libclient_behavior-7c4e1c39720354ff.rmeta: crates/client/tests/client_behavior.rs Cargo.toml

crates/client/tests/client_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
