/root/repo/target/debug/deps/worker_semantics-004a3bd8bef64995.d: crates/server/tests/worker_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libworker_semantics-004a3bd8bef64995.rmeta: crates/server/tests/worker_semantics.rs Cargo.toml

crates/server/tests/worker_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
