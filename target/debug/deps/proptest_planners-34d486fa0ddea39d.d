/root/repo/target/debug/deps/proptest_planners-34d486fa0ddea39d.d: crates/balancer/tests/proptest_planners.rs

/root/repo/target/debug/deps/proptest_planners-34d486fa0ddea39d: crates/balancer/tests/proptest_planners.rs

crates/balancer/tests/proptest_planners.rs:
