/root/repo/target/debug/deps/mbal_proto-1322c4ab733827c7.d: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/message.rs

/root/repo/target/debug/deps/mbal_proto-1322c4ab733827c7: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/message.rs

crates/proto/src/lib.rs:
crates/proto/src/codec.rs:
crates/proto/src/message.rs:
