/root/repo/target/debug/deps/fig13_events-51f843638d8c8f93.d: crates/bench/benches/fig13_events.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_events-51f843638d8c8f93.rmeta: crates/bench/benches/fig13_events.rs Cargo.toml

crates/bench/benches/fig13_events.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
