/root/repo/target/debug/deps/mbal_balancer-1c442d67cb50e7a1.d: crates/balancer/src/lib.rs crates/balancer/src/config.rs crates/balancer/src/coordinator.rs crates/balancer/src/driver.rs crates/balancer/src/events.rs crates/balancer/src/phase1.rs crates/balancer/src/phase2.rs crates/balancer/src/phase3.rs crates/balancer/src/plan.rs crates/balancer/src/replicated.rs crates/balancer/src/state.rs crates/balancer/src/topology.rs

/root/repo/target/debug/deps/libmbal_balancer-1c442d67cb50e7a1.rlib: crates/balancer/src/lib.rs crates/balancer/src/config.rs crates/balancer/src/coordinator.rs crates/balancer/src/driver.rs crates/balancer/src/events.rs crates/balancer/src/phase1.rs crates/balancer/src/phase2.rs crates/balancer/src/phase3.rs crates/balancer/src/plan.rs crates/balancer/src/replicated.rs crates/balancer/src/state.rs crates/balancer/src/topology.rs

/root/repo/target/debug/deps/libmbal_balancer-1c442d67cb50e7a1.rmeta: crates/balancer/src/lib.rs crates/balancer/src/config.rs crates/balancer/src/coordinator.rs crates/balancer/src/driver.rs crates/balancer/src/events.rs crates/balancer/src/phase1.rs crates/balancer/src/phase2.rs crates/balancer/src/phase3.rs crates/balancer/src/plan.rs crates/balancer/src/replicated.rs crates/balancer/src/state.rs crates/balancer/src/topology.rs

crates/balancer/src/lib.rs:
crates/balancer/src/config.rs:
crates/balancer/src/coordinator.rs:
crates/balancer/src/driver.rs:
crates/balancer/src/events.rs:
crates/balancer/src/phase1.rs:
crates/balancer/src/phase2.rs:
crates/balancer/src/phase3.rs:
crates/balancer/src/plan.rs:
crates/balancer/src/replicated.rs:
crates/balancer/src/state.rs:
crates/balancer/src/topology.rs:
