/root/repo/target/debug/deps/mbal_bench-623d3286d3595989.d: crates/bench/src/lib.rs crates/bench/src/loadgen.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_bench-623d3286d3595989.rmeta: crates/bench/src/lib.rs crates/bench/src/loadgen.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/loadgen.rs:
Cargo.toml:

# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
