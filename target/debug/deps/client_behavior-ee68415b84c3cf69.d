/root/repo/target/debug/deps/client_behavior-ee68415b84c3cf69.d: crates/client/tests/client_behavior.rs

/root/repo/target/debug/deps/libclient_behavior-ee68415b84c3cf69.rmeta: crates/client/tests/client_behavior.rs

crates/client/tests/client_behavior.rs:
