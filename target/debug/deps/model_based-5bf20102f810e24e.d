/root/repo/target/debug/deps/model_based-5bf20102f810e24e.d: tests/model_based.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_based-5bf20102f810e24e.rmeta: tests/model_based.rs Cargo.toml

tests/model_based.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
