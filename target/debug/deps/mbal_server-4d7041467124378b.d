/root/repo/target/debug/deps/mbal_server-4d7041467124378b.d: crates/server/src/lib.rs crates/server/src/config.rs crates/server/src/fault.rs crates/server/src/messages.rs crates/server/src/metrics_http.rs crates/server/src/server.rs crates/server/src/tcp.rs crates/server/src/transport.rs crates/server/src/unit.rs crates/server/src/worker.rs

/root/repo/target/debug/deps/libmbal_server-4d7041467124378b.rmeta: crates/server/src/lib.rs crates/server/src/config.rs crates/server/src/fault.rs crates/server/src/messages.rs crates/server/src/metrics_http.rs crates/server/src/server.rs crates/server/src/tcp.rs crates/server/src/transport.rs crates/server/src/unit.rs crates/server/src/worker.rs

crates/server/src/lib.rs:
crates/server/src/config.rs:
crates/server/src/fault.rs:
crates/server/src/messages.rs:
crates/server/src/metrics_http.rs:
crates/server/src/server.rs:
crates/server/src/tcp.rs:
crates/server/src/transport.rs:
crates/server/src/unit.rs:
crates/server/src/worker.rs:
