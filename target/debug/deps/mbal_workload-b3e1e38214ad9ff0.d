/root/repo/target/debug/deps/mbal_workload-b3e1e38214ad9ff0.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/latest.rs crates/workload/src/ycsb.rs

/root/repo/target/debug/deps/libmbal_workload-b3e1e38214ad9ff0.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/latest.rs crates/workload/src/ycsb.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/latest.rs:
crates/workload/src/ycsb.rs:
