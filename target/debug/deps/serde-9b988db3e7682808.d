/root/repo/target/debug/deps/serde-9b988db3e7682808.d: /root/repo/.stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-9b988db3e7682808.rmeta: /root/repo/.stubs/serde/src/lib.rs

/root/repo/.stubs/serde/src/lib.rs:
