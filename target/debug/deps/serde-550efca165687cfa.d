/root/repo/target/debug/deps/serde-550efca165687cfa.d: /root/repo/.stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-550efca165687cfa.rlib: /root/repo/.stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-550efca165687cfa.rmeta: /root/repo/.stubs/serde/src/lib.rs

/root/repo/.stubs/serde/src/lib.rs:
