/root/repo/target/debug/deps/mbal_ilp-98647c5e380cb07d.d: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/model.rs crates/ilp/src/simplex.rs

/root/repo/target/debug/deps/libmbal_ilp-98647c5e380cb07d.rmeta: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/model.rs crates/ilp/src/simplex.rs

crates/ilp/src/lib.rs:
crates/ilp/src/branch.rs:
crates/ilp/src/model.rs:
crates/ilp/src/simplex.rs:
