/root/repo/target/debug/deps/serde_json-0135de635ec6f449.d: /root/repo/.stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-0135de635ec6f449.rlib: /root/repo/.stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-0135de635ec6f449.rmeta: /root/repo/.stubs/serde_json/src/lib.rs

/root/repo/.stubs/serde_json/src/lib.rs:
