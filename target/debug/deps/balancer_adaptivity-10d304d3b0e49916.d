/root/repo/target/debug/deps/balancer_adaptivity-10d304d3b0e49916.d: tests/balancer_adaptivity.rs

/root/repo/target/debug/deps/balancer_adaptivity-10d304d3b0e49916: tests/balancer_adaptivity.rs

tests/balancer_adaptivity.rs:
