/root/repo/target/debug/deps/fig09_manycore-14c0075b1d168f43.d: crates/bench/benches/fig09_manycore.rs

/root/repo/target/debug/deps/libfig09_manycore-14c0075b1d168f43.rmeta: crates/bench/benches/fig09_manycore.rs

crates/bench/benches/fig09_manycore.rs:
