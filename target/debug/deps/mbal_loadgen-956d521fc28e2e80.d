/root/repo/target/debug/deps/mbal_loadgen-956d521fc28e2e80.d: crates/bench/src/bin/mbal-loadgen.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_loadgen-956d521fc28e2e80.rmeta: crates/bench/src/bin/mbal-loadgen.rs Cargo.toml

crates/bench/src/bin/mbal-loadgen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
