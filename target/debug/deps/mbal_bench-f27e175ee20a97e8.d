/root/repo/target/debug/deps/mbal_bench-f27e175ee20a97e8.d: crates/bench/src/lib.rs crates/bench/src/loadgen.rs

/root/repo/target/debug/deps/mbal_bench-f27e175ee20a97e8: crates/bench/src/lib.rs crates/bench/src/loadgen.rs

crates/bench/src/lib.rs:
crates/bench/src/loadgen.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
