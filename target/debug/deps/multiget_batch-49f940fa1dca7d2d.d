/root/repo/target/debug/deps/multiget_batch-49f940fa1dca7d2d.d: crates/bench/benches/multiget_batch.rs Cargo.toml

/root/repo/target/debug/deps/libmultiget_batch-49f940fa1dca7d2d.rmeta: crates/bench/benches/multiget_batch.rs Cargo.toml

crates/bench/benches/multiget_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
