/root/repo/target/debug/deps/mbal_telemetry-c8fa2975ed735f76.d: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

/root/repo/target/debug/deps/libmbal_telemetry-c8fa2975ed735f76.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
