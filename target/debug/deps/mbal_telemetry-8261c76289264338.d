/root/repo/target/debug/deps/mbal_telemetry-8261c76289264338.d: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_telemetry-8261c76289264338.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
