/root/repo/target/debug/deps/mbal-69eaa5b535b7564b.d: src/lib.rs

/root/repo/target/debug/deps/libmbal-69eaa5b535b7564b.rmeta: src/lib.rs

src/lib.rs:
