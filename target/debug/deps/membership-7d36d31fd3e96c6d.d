/root/repo/target/debug/deps/membership-7d36d31fd3e96c6d.d: tests/membership.rs

/root/repo/target/debug/deps/membership-7d36d31fd3e96c6d: tests/membership.rs

tests/membership.rs:
