/root/repo/target/debug/deps/mbal_client-335538a8fd9c15ec.d: crates/client/src/lib.rs

/root/repo/target/debug/deps/libmbal_client-335538a8fd9c15ec.rlib: crates/client/src/lib.rs

/root/repo/target/debug/deps/libmbal_client-335538a8fd9c15ec.rmeta: crates/client/src/lib.rs

crates/client/src/lib.rs:
