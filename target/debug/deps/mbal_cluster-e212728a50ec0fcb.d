/root/repo/target/debug/deps/mbal_cluster-e212728a50ec0fcb.d: crates/cluster/src/lib.rs crates/cluster/src/ec2.rs crates/cluster/src/engine.rs crates/cluster/src/multicore.rs crates/cluster/src/report.rs crates/cluster/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libmbal_cluster-e212728a50ec0fcb.rmeta: crates/cluster/src/lib.rs crates/cluster/src/ec2.rs crates/cluster/src/engine.rs crates/cluster/src/multicore.rs crates/cluster/src/report.rs crates/cluster/src/sim.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/ec2.rs:
crates/cluster/src/engine.rs:
crates/cluster/src/multicore.rs:
crates/cluster/src/report.rs:
crates/cluster/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
