/root/repo/target/debug/deps/criterion-59e271b68fe0ac37.d: /root/repo/.stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-59e271b68fe0ac37.rlib: /root/repo/.stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-59e271b68fe0ac37.rmeta: /root/repo/.stubs/criterion/src/lib.rs

/root/repo/.stubs/criterion/src/lib.rs:
