/root/repo/target/debug/deps/proptest-9d36930b34fe25fc.d: /root/repo/.stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9d36930b34fe25fc.rmeta: /root/repo/.stubs/proptest/src/lib.rs

/root/repo/.stubs/proptest/src/lib.rs:
