/root/repo/target/debug/deps/mbal_bench-252c534e97eb4f19.d: crates/bench/src/lib.rs crates/bench/src/loadgen.rs

/root/repo/target/debug/deps/libmbal_bench-252c534e97eb4f19.rmeta: crates/bench/src/lib.rs crates/bench/src/loadgen.rs

crates/bench/src/lib.rs:
crates/bench/src/loadgen.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
