(function() {
    const implementors = Object.fromEntries([["mbal_core",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"mbal_core/types/struct.CacheletId.html\" title=\"struct mbal_core::types::CacheletId\">CacheletId</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"mbal_core/types/struct.ServerId.html\" title=\"struct mbal_core::types::ServerId\">ServerId</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"mbal_core/types/struct.VnId.html\" title=\"struct mbal_core::types::VnId\">VnId</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"mbal_core/types/struct.WorkerAddr.html\" title=\"struct mbal_core::types::WorkerAddr\">WorkerAddr</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"mbal_core/types/struct.WorkerId.html\" title=\"struct mbal_core::types::WorkerId\">WorkerId</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[1325]}