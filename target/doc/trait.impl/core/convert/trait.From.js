(function() {
    const implementors = Object.fromEntries([["mbal_client",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;Status&gt; for <a class=\"enum\" href=\"mbal_client/enum.ClientError.html\" title=\"enum mbal_client::ClientError\">ClientError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[298]}