(function() {
    const implementors = Object.fromEntries([["mbal_client",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"mbal_client/enum.ClientError.html\" title=\"enum mbal_client::ClientError\">ClientError</a>",0]]],["mbal_core",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"mbal_core/types/enum.CacheError.html\" title=\"enum mbal_core::types::CacheError\">CacheError</a>",0]]],["mbal_proto",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"mbal_proto/codec/enum.CodecError.html\" title=\"enum mbal_proto::codec::CodecError\">CodecError</a>",0]]],["mbal_server",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"mbal_server/transport/enum.TransportError.html\" title=\"enum mbal_server::transport::TransportError\">TransportError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[283,288,291,314]}