(function() {
    const implementors = Object.fromEntries([["mbal_cli",[["impl <a class=\"trait\" href=\"mbal_client/trait.CoordinatorLink.html\" title=\"trait mbal_client::CoordinatorLink\">CoordinatorLink</a> for <a class=\"struct\" href=\"mbal_cli/struct.StaticMapping.html\" title=\"struct mbal_cli::StaticMapping\">StaticMapping</a>",0]]],["mbal_client",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[284,19]}