/root/repo/target/release/deps/serde_derive-748a0a94ce9fd323.d: /root/repo/.stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-748a0a94ce9fd323.so: /root/repo/.stubs/serde_derive/src/lib.rs

/root/repo/.stubs/serde_derive/src/lib.rs:
