/root/repo/target/release/deps/mbal_membership-cd1e7ae3ea6beafa.d: crates/membership/src/lib.rs crates/membership/src/detector.rs crates/membership/src/view.rs

/root/repo/target/release/deps/libmbal_membership-cd1e7ae3ea6beafa.rlib: crates/membership/src/lib.rs crates/membership/src/detector.rs crates/membership/src/view.rs

/root/repo/target/release/deps/libmbal_membership-cd1e7ae3ea6beafa.rmeta: crates/membership/src/lib.rs crates/membership/src/detector.rs crates/membership/src/view.rs

crates/membership/src/lib.rs:
crates/membership/src/detector.rs:
crates/membership/src/view.rs:
