/root/repo/target/release/deps/mbal_ring-0233c2bd052a0bb6.d: crates/ring/src/lib.rs crates/ring/src/mapping.rs crates/ring/src/ring.rs

/root/repo/target/release/deps/libmbal_ring-0233c2bd052a0bb6.rlib: crates/ring/src/lib.rs crates/ring/src/mapping.rs crates/ring/src/ring.rs

/root/repo/target/release/deps/libmbal_ring-0233c2bd052a0bb6.rmeta: crates/ring/src/lib.rs crates/ring/src/mapping.rs crates/ring/src/ring.rs

crates/ring/src/lib.rs:
crates/ring/src/mapping.rs:
crates/ring/src/ring.rs:
