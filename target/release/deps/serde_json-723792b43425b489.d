/root/repo/target/release/deps/serde_json-723792b43425b489.d: /root/repo/.stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-723792b43425b489.rlib: /root/repo/.stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-723792b43425b489.rmeta: /root/repo/.stubs/serde_json/src/lib.rs

/root/repo/.stubs/serde_json/src/lib.rs:
