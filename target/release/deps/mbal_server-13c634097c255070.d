/root/repo/target/release/deps/mbal_server-13c634097c255070.d: crates/server/src/bin/mbal-server.rs

/root/repo/target/release/deps/mbal_server-13c634097c255070: crates/server/src/bin/mbal-server.rs

crates/server/src/bin/mbal-server.rs:
