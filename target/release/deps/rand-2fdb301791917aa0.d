/root/repo/target/release/deps/rand-2fdb301791917aa0.d: /root/repo/.stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-2fdb301791917aa0.rlib: /root/repo/.stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-2fdb301791917aa0.rmeta: /root/repo/.stubs/rand/src/lib.rs

/root/repo/.stubs/rand/src/lib.rs:
