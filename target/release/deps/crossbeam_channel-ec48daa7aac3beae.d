/root/repo/target/release/deps/crossbeam_channel-ec48daa7aac3beae.d: /root/repo/.stubs/crossbeam-channel/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_channel-ec48daa7aac3beae.rlib: /root/repo/.stubs/crossbeam-channel/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_channel-ec48daa7aac3beae.rmeta: /root/repo/.stubs/crossbeam-channel/src/lib.rs

/root/repo/.stubs/crossbeam-channel/src/lib.rs:
