/root/repo/target/release/deps/serde-b3c2a92f9642f2e7.d: /root/repo/.stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-b3c2a92f9642f2e7.rlib: /root/repo/.stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-b3c2a92f9642f2e7.rmeta: /root/repo/.stubs/serde/src/lib.rs

/root/repo/.stubs/serde/src/lib.rs:
