/root/repo/target/release/deps/mbal_balancer-7967acc088b2f864.d: crates/balancer/src/lib.rs crates/balancer/src/config.rs crates/balancer/src/coordinator.rs crates/balancer/src/driver.rs crates/balancer/src/events.rs crates/balancer/src/phase1.rs crates/balancer/src/phase2.rs crates/balancer/src/phase3.rs crates/balancer/src/plan.rs crates/balancer/src/replicated.rs crates/balancer/src/state.rs crates/balancer/src/topology.rs

/root/repo/target/release/deps/libmbal_balancer-7967acc088b2f864.rlib: crates/balancer/src/lib.rs crates/balancer/src/config.rs crates/balancer/src/coordinator.rs crates/balancer/src/driver.rs crates/balancer/src/events.rs crates/balancer/src/phase1.rs crates/balancer/src/phase2.rs crates/balancer/src/phase3.rs crates/balancer/src/plan.rs crates/balancer/src/replicated.rs crates/balancer/src/state.rs crates/balancer/src/topology.rs

/root/repo/target/release/deps/libmbal_balancer-7967acc088b2f864.rmeta: crates/balancer/src/lib.rs crates/balancer/src/config.rs crates/balancer/src/coordinator.rs crates/balancer/src/driver.rs crates/balancer/src/events.rs crates/balancer/src/phase1.rs crates/balancer/src/phase2.rs crates/balancer/src/phase3.rs crates/balancer/src/plan.rs crates/balancer/src/replicated.rs crates/balancer/src/state.rs crates/balancer/src/topology.rs

crates/balancer/src/lib.rs:
crates/balancer/src/config.rs:
crates/balancer/src/coordinator.rs:
crates/balancer/src/driver.rs:
crates/balancer/src/events.rs:
crates/balancer/src/phase1.rs:
crates/balancer/src/phase2.rs:
crates/balancer/src/phase3.rs:
crates/balancer/src/plan.rs:
crates/balancer/src/replicated.rs:
crates/balancer/src/state.rs:
crates/balancer/src/topology.rs:
