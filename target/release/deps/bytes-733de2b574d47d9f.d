/root/repo/target/release/deps/bytes-733de2b574d47d9f.d: /root/repo/.stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-733de2b574d47d9f.rlib: /root/repo/.stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-733de2b574d47d9f.rmeta: /root/repo/.stubs/bytes/src/lib.rs

/root/repo/.stubs/bytes/src/lib.rs:
