/root/repo/target/release/deps/mbal_proto-4724b908ee3c2dbb.d: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/message.rs

/root/repo/target/release/deps/libmbal_proto-4724b908ee3c2dbb.rlib: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/message.rs

/root/repo/target/release/deps/libmbal_proto-4724b908ee3c2dbb.rmeta: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/message.rs

crates/proto/src/lib.rs:
crates/proto/src/codec.rs:
crates/proto/src/message.rs:
