/root/repo/target/release/deps/mbal_workload-8b516b3749a31544.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/latest.rs crates/workload/src/ycsb.rs

/root/repo/target/release/deps/libmbal_workload-8b516b3749a31544.rlib: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/latest.rs crates/workload/src/ycsb.rs

/root/repo/target/release/deps/libmbal_workload-8b516b3749a31544.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/latest.rs crates/workload/src/ycsb.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/latest.rs:
crates/workload/src/ycsb.rs:
