/root/repo/target/release/deps/criterion-7b6bb22c42546e43.d: /root/repo/.stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-7b6bb22c42546e43.rlib: /root/repo/.stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-7b6bb22c42546e43.rmeta: /root/repo/.stubs/criterion/src/lib.rs

/root/repo/.stubs/criterion/src/lib.rs:
