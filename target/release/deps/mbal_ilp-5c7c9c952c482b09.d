/root/repo/target/release/deps/mbal_ilp-5c7c9c952c482b09.d: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/model.rs crates/ilp/src/simplex.rs

/root/repo/target/release/deps/libmbal_ilp-5c7c9c952c482b09.rlib: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/model.rs crates/ilp/src/simplex.rs

/root/repo/target/release/deps/libmbal_ilp-5c7c9c952c482b09.rmeta: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/model.rs crates/ilp/src/simplex.rs

crates/ilp/src/lib.rs:
crates/ilp/src/branch.rs:
crates/ilp/src/model.rs:
crates/ilp/src/simplex.rs:
