/root/repo/target/release/deps/mbal_client-e92a77129f4ae579.d: crates/client/src/lib.rs

/root/repo/target/release/deps/libmbal_client-e92a77129f4ae579.rlib: crates/client/src/lib.rs

/root/repo/target/release/deps/libmbal_client-e92a77129f4ae579.rmeta: crates/client/src/lib.rs

crates/client/src/lib.rs:
