/root/repo/target/release/deps/mbal_telemetry-8ae356b120e191c1.d: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

/root/repo/target/release/deps/libmbal_telemetry-8ae356b120e191c1.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

/root/repo/target/release/deps/libmbal_telemetry-8ae356b120e191c1.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
