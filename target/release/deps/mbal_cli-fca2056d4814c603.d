/root/repo/target/release/deps/mbal_cli-fca2056d4814c603.d: crates/client/src/bin/mbal-cli.rs

/root/repo/target/release/deps/mbal_cli-fca2056d4814c603: crates/client/src/bin/mbal-cli.rs

crates/client/src/bin/mbal-cli.rs:
