/root/repo/target/release/deps/mbal_server-a3060d66134ee780.d: crates/server/src/lib.rs crates/server/src/config.rs crates/server/src/fault.rs crates/server/src/messages.rs crates/server/src/metrics_http.rs crates/server/src/server.rs crates/server/src/tcp.rs crates/server/src/transport.rs crates/server/src/unit.rs crates/server/src/worker.rs

/root/repo/target/release/deps/libmbal_server-a3060d66134ee780.rlib: crates/server/src/lib.rs crates/server/src/config.rs crates/server/src/fault.rs crates/server/src/messages.rs crates/server/src/metrics_http.rs crates/server/src/server.rs crates/server/src/tcp.rs crates/server/src/transport.rs crates/server/src/unit.rs crates/server/src/worker.rs

/root/repo/target/release/deps/libmbal_server-a3060d66134ee780.rmeta: crates/server/src/lib.rs crates/server/src/config.rs crates/server/src/fault.rs crates/server/src/messages.rs crates/server/src/metrics_http.rs crates/server/src/server.rs crates/server/src/tcp.rs crates/server/src/transport.rs crates/server/src/unit.rs crates/server/src/worker.rs

crates/server/src/lib.rs:
crates/server/src/config.rs:
crates/server/src/fault.rs:
crates/server/src/messages.rs:
crates/server/src/metrics_http.rs:
crates/server/src/server.rs:
crates/server/src/tcp.rs:
crates/server/src/transport.rs:
crates/server/src/unit.rs:
crates/server/src/worker.rs:
