/root/repo/target/release/deps/mbal-dba884035c22a72b.d: src/lib.rs

/root/repo/target/release/deps/libmbal-dba884035c22a72b.rlib: src/lib.rs

/root/repo/target/release/deps/libmbal-dba884035c22a72b.rmeta: src/lib.rs

src/lib.rs:
