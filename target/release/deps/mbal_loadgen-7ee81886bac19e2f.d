/root/repo/target/release/deps/mbal_loadgen-7ee81886bac19e2f.d: crates/bench/src/bin/mbal-loadgen.rs

/root/repo/target/release/deps/mbal_loadgen-7ee81886bac19e2f: crates/bench/src/bin/mbal-loadgen.rs

crates/bench/src/bin/mbal-loadgen.rs:
