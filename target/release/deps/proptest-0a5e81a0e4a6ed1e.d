/root/repo/target/release/deps/proptest-0a5e81a0e4a6ed1e.d: /root/repo/.stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-0a5e81a0e4a6ed1e.rlib: /root/repo/.stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-0a5e81a0e4a6ed1e.rmeta: /root/repo/.stubs/proptest/src/lib.rs

/root/repo/.stubs/proptest/src/lib.rs:
