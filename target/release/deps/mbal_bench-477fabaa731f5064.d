/root/repo/target/release/deps/mbal_bench-477fabaa731f5064.d: crates/bench/src/lib.rs crates/bench/src/loadgen.rs

/root/repo/target/release/deps/libmbal_bench-477fabaa731f5064.rlib: crates/bench/src/lib.rs crates/bench/src/loadgen.rs

/root/repo/target/release/deps/libmbal_bench-477fabaa731f5064.rmeta: crates/bench/src/lib.rs crates/bench/src/loadgen.rs

crates/bench/src/lib.rs:
crates/bench/src/loadgen.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
