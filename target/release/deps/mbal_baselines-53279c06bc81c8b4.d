/root/repo/target/release/deps/mbal_baselines-53279c06bc81c8b4.d: crates/baselines/src/lib.rs crates/baselines/src/memcached.rs crates/baselines/src/mercury.rs crates/baselines/src/multi_instance.rs crates/baselines/src/owned.rs

/root/repo/target/release/deps/libmbal_baselines-53279c06bc81c8b4.rlib: crates/baselines/src/lib.rs crates/baselines/src/memcached.rs crates/baselines/src/mercury.rs crates/baselines/src/multi_instance.rs crates/baselines/src/owned.rs

/root/repo/target/release/deps/libmbal_baselines-53279c06bc81c8b4.rmeta: crates/baselines/src/lib.rs crates/baselines/src/memcached.rs crates/baselines/src/mercury.rs crates/baselines/src/multi_instance.rs crates/baselines/src/owned.rs

crates/baselines/src/lib.rs:
crates/baselines/src/memcached.rs:
crates/baselines/src/mercury.rs:
crates/baselines/src/multi_instance.rs:
crates/baselines/src/owned.rs:
