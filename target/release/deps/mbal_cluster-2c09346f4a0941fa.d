/root/repo/target/release/deps/mbal_cluster-2c09346f4a0941fa.d: crates/cluster/src/lib.rs crates/cluster/src/ec2.rs crates/cluster/src/engine.rs crates/cluster/src/multicore.rs crates/cluster/src/report.rs crates/cluster/src/sim.rs

/root/repo/target/release/deps/libmbal_cluster-2c09346f4a0941fa.rlib: crates/cluster/src/lib.rs crates/cluster/src/ec2.rs crates/cluster/src/engine.rs crates/cluster/src/multicore.rs crates/cluster/src/report.rs crates/cluster/src/sim.rs

/root/repo/target/release/deps/libmbal_cluster-2c09346f4a0941fa.rmeta: crates/cluster/src/lib.rs crates/cluster/src/ec2.rs crates/cluster/src/engine.rs crates/cluster/src/multicore.rs crates/cluster/src/report.rs crates/cluster/src/sim.rs

crates/cluster/src/lib.rs:
crates/cluster/src/ec2.rs:
crates/cluster/src/engine.rs:
crates/cluster/src/multicore.rs:
crates/cluster/src/report.rs:
crates/cluster/src/sim.rs:
