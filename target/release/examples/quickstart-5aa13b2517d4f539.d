/root/repo/target/release/examples/quickstart-5aa13b2517d4f539.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-5aa13b2517d4f539: examples/quickstart.rs

examples/quickstart.rs:
