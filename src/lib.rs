//! # MBal — an in-memory object caching framework with adaptive load balancing
//!
//! A from-scratch Rust reproduction of the EuroSys 2015 paper by Cheng,
//! Gupta and Butt. This facade crate re-exports every subsystem; see the
//! individual crates for details:
//!
//! - [`core`] — cachelets, lockless hash table, slab memory.
//! - [`ring`] — consistent hashing and key-to-thread mapping.
//! - [`proto`] — the binary wire protocol.
//! - [`telemetry`] — lock-free metrics registry, latency
//!   histograms, and the stats snapshot/report types.
//! - [`tenant`] — tenant namespaces, quotas, and the Memshare-style
//!   memory arbiter.
//! - [`ilp`] — the simplex/branch-and-bound ILP solver behind
//!   the migration planners.
//! - [`membership`] — heartbeat failure detection and the
//!   cluster-epoch state machine for join/drain/fail.
//! - [`balancer`] — the multi-phase load balancer.
//! - [`server`] — the server runtime.
//! - [`client`] — the client library.
//! - [`workload`] — YCSB-style workload generators.
//! - [`baselines`] — Memcached-like and Mercury-like
//!   comparison caches.
//! - [`cluster`] — the discrete-event cluster simulator used
//!   to reproduce the paper's EC2 experiments.

#![forbid(unsafe_code)]

pub use mbal_balancer as balancer;
pub use mbal_baselines as baselines;
pub use mbal_client as client;
pub use mbal_cluster as cluster;
pub use mbal_core as core;
pub use mbal_ilp as ilp;
pub use mbal_membership as membership;
pub use mbal_proto as proto;
pub use mbal_ring as ring;
pub use mbal_server as server;
pub use mbal_telemetry as telemetry;
pub use mbal_tenant as tenant;
pub use mbal_workload as workload;
