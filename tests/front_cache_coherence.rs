//! Front-cache coherence, end to end through the real server stack.
//!
//! The front tier trades a bounded staleness window for locality, and
//! this suite pins the exact boundary of that trade (see
//! `crates/client/src/front.rs` for the model):
//!
//! - **Read-your-writes**: a front-cached read never serves a value
//!   older than the client's own last acked write — local writes
//!   invalidate the front entry before they touch the wire.
//! - **TTL bound**: a front entry never outlives its TTL, so another
//!   client's write becomes visible within one front-cache window.
//! - **Mapping coherence**: a forced coordinated migration bumps the
//!   mapping version, and the next read rejects every front entry
//!   admitted under the old mapping instead of serving it.
//! - **Chaos**: the same read-your-writes contract holds while a
//!   seeded fault injector drops and resets frames mid-run and a
//!   migration races the traffic.
//! - **Multi-tenancy**: front caches are per-client; two tenants
//!   hammering the same key bytes never observe each other's values.
//!
//! Every scenario runs under the engine `MBAL_ENGINE` selects (the CI
//! engine matrix drives both values), and the headline read-your-writes
//! scenario is additionally pinned on both engines explicitly.

use mbal::balancer::coordinator::Coordinator;
use mbal::balancer::plan::Migration;
use mbal::balancer::BalancerConfig;
use mbal::client::{Client, CoordinatorLink, FrontCacheConfig, SetOptions};
use mbal::core::clock::{Clock, ManualClock};
use mbal::core::engine::EngineKind;
use mbal::core::types::{ServerId, TenantId, WorkerAddr};
use mbal::ring::{ConsistentRing, MappingTable};
use mbal::server::{FaultInjector, FaultPlan, InProcRegistry, Server, ServerConfig, Transport};
use mbal::tenant::{TenantDirectory, TenantQuota};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A front-cache config that promotes quickly and holds entries long
/// enough that only an explicit staleness rule can reject them.
fn eager_front() -> FrontCacheConfig {
    FrontCacheConfig::new()
        .promote_min_count(2)
        .ttl(Duration::from_secs(3600))
}

struct Cluster {
    servers: Vec<Server>,
    registry: Arc<InProcRegistry>,
    coordinator: Arc<Coordinator>,
    /// Set when the cluster was started with a fault injector; clients
    /// built through [`Cluster::client`] then share the faulty path.
    injector: Option<Arc<FaultInjector>>,
}

impl Cluster {
    fn start(engine: EngineKind) -> Self {
        Self::start_inner(engine, None, None)
    }

    fn start_faulty(engine: EngineKind, plan: FaultPlan) -> Self {
        Self::start_inner(engine, Some(plan), None)
    }

    fn start_tenanted(engine: EngineKind, tenants: TenantDirectory) -> Self {
        Self::start_inner(engine, None, Some(tenants))
    }

    fn start_inner(
        engine: EngineKind,
        plan: Option<FaultPlan>,
        tenants: Option<TenantDirectory>,
    ) -> Self {
        let mut ring = ConsistentRing::new();
        for s in 0..2u16 {
            ring.add_worker(WorkerAddr::new(s, 0));
            ring.add_worker(WorkerAddr::new(s, 1));
        }
        let mapping = MappingTable::build(&ring, 4, 128);
        let coordinator = Arc::new(Coordinator::new(mapping.clone(), BalancerConfig::default()));
        let registry = InProcRegistry::new();
        let clock = ManualClock::new();
        let injector =
            plan.map(|p| FaultInjector::new(Arc::clone(&registry) as Arc<dyn Transport>, p));
        let servers = (0..2u16)
            .map(|s| {
                let mut cfg = ServerConfig::new(ServerId(s), 2, 32 << 20)
                    .cachelets_per_worker(4)
                    .engine(engine);
                if let Some(dir) = &tenants {
                    cfg = cfg.tenants(dir.clone());
                }
                match &injector {
                    Some(inj) => Server::spawn_with_transport(
                        cfg,
                        &mapping,
                        &registry,
                        Arc::clone(inj) as Arc<dyn Transport>,
                        Arc::clone(&coordinator),
                        Arc::new(clock.clone()) as Arc<dyn Clock>,
                    ),
                    None => Server::spawn(
                        cfg,
                        &mapping,
                        &registry,
                        Arc::clone(&coordinator),
                        Arc::new(clock.clone()) as Arc<dyn Clock>,
                    ),
                }
            })
            .collect();
        Self {
            servers,
            registry,
            coordinator,
            injector,
        }
    }

    /// A client over the cluster's transport (faulty when the cluster
    /// was started with an injector), optionally front-cached.
    fn client(&self, front: Option<FrontCacheConfig>) -> Client {
        let transport: Arc<dyn Transport> = match &self.injector {
            Some(inj) => Arc::clone(inj) as Arc<dyn Transport>,
            None => Arc::clone(&self.registry) as Arc<dyn Transport>,
        };
        let mut b = Client::builder(
            transport,
            Arc::clone(&self.coordinator) as Arc<dyn CoordinatorLink>,
        )
        .op_budget(Duration::from_secs(3600))
        .poll_backoff(Duration::ZERO, Duration::ZERO);
        if let Some(cfg) = front {
            b = b.front_cache(cfg);
        }
        b.build()
    }

    fn client_for(&self, tenant: TenantId, front: Option<FrontCacheConfig>) -> Client {
        let mut b = Client::builder(
            Arc::clone(&self.registry) as Arc<dyn Transport>,
            Arc::clone(&self.coordinator) as Arc<dyn CoordinatorLink>,
        )
        .tenant(tenant);
        if let Some(cfg) = front {
            b = b.front_cache(cfg);
        }
        b.build()
    }

    /// Forcibly migrates the cachelet homing `key` to the other server
    /// (the Phase-3 idiom from `tenant_isolation.rs`), bumping the
    /// mapping version.
    fn migrate_key(&mut self, key: &[u8]) {
        let snap = self.coordinator.mapping_snapshot();
        let (cachelet, owner) = snap.route(key).expect("mapping is total");
        let dest_server = if owner.server == ServerId(0) { 1 } else { 0 };
        let m = Migration {
            cachelet,
            from: owner,
            to: WorkerAddr::new(dest_server, 0),
            load: 0.0,
        };
        self.coordinator.report_local_move(&m);
        let committed = self.servers[owner.server.0 as usize].migrate_out(&m);
        assert!(committed, "coordinated migration must commit");
    }

    fn shutdown(mut self) {
        for s in &mut self.servers {
            s.shutdown();
        }
    }
}

/// Reads `key` enough times to promote it into the front cache and
/// asserts the last read was actually served by the front tier.
fn promote(client: &mut Client, key: &[u8], expect: &[u8]) {
    let before = client.stats().front_hits;
    for _ in 0..4 {
        assert_eq!(
            client.get(key).expect("get"),
            Some(expect.to_vec().into()),
            "wrong value while promoting"
        );
    }
    assert!(
        client.stats().front_hits > before,
        "key never reached the front cache (front_hits stuck at {before})"
    );
}

/// Read-your-writes: across many rewrite rounds of a hot key, a get
/// issued right after an acked set must return exactly that value —
/// the front tier never rolls a client's own writes back.
fn read_your_writes_scenario(engine: EngineKind) {
    let cluster = Cluster::start(engine);
    let mut c = cluster.client(Some(eager_front()));
    let key = b"rw:hot";

    for round in 0..50u32 {
        let value = format!("v{round:04}").into_bytes();
        c.set_opts(key, &value, SetOptions::new()).expect("set");
        // The very next read, and every read until the next write, must
        // observe the acked value — whether it comes off the wire or,
        // after re-promotion, out of the front cache.
        for _ in 0..4 {
            assert_eq!(
                c.get(key).expect("get"),
                Some(value.clone().into()),
                "[{engine:?}] round {round}: front tier served a value \
                 older than the client's own acked write"
            );
        }
    }

    let stats = c.stats();
    assert!(
        stats.front_hits > 0,
        "[{engine:?}] scenario never exercised the front cache"
    );
    assert!(
        stats.sketch_promotions > 0,
        "[{engine:?}] sketch never promoted the hot key"
    );
    cluster.shutdown();
}

#[test]
fn own_acked_writes_are_never_rolled_back_slab() {
    read_your_writes_scenario(EngineKind::SlabLru);
}

#[test]
fn own_acked_writes_are_never_rolled_back_seg() {
    read_your_writes_scenario(EngineKind::Seg);
}

#[test]
fn own_acked_writes_are_never_rolled_back_env_engine() {
    read_your_writes_scenario(EngineKind::from_env());
}

/// TTL bound: another client's write becomes visible within one front
/// window — a front entry is rejected at read time once it outlives its
/// TTL, so the reader falls back to the wire and sees the new value.
#[test]
fn front_entries_never_outlive_their_ttl() {
    let cluster = Cluster::start(EngineKind::from_env());
    let ttl = Duration::from_millis(25);
    let mut reader = cluster.client(Some(FrontCacheConfig::new().promote_min_count(2).ttl(ttl)));
    let mut writer = cluster.client(None);
    let key = b"ttl:hot";

    writer
        .set_opts(key, b"old", SetOptions::new())
        .expect("seed write");
    promote(&mut reader, key, b"old");

    // A foreign write the reader's front cache knows nothing about.
    writer
        .set_opts(key, b"new", SetOptions::new())
        .expect("foreign write");

    // Inside the window the reader may legitimately still serve "old"
    // (that is the bounded-staleness trade); past the window it must
    // not. Sleep well past the TTL and require the new value.
    std::thread::sleep(ttl + Duration::from_millis(40));
    let before = reader.stats().front_stale_rejected;
    assert_eq!(
        reader.get(key).expect("get"),
        Some(b"new".to_vec().into()),
        "front entry served past its TTL: foreign write invisible"
    );
    assert!(
        reader.stats().front_stale_rejected > before,
        "the expired entry should have been counted as a stale rejection"
    );
    cluster.shutdown();
}

/// Mapping coherence: a coordinated migration bumps the mapping
/// version; every front entry admitted under the old mapping is
/// rejected on the next read instead of being served.
#[test]
fn migration_version_bump_rejects_front_entries() {
    let mut cluster = Cluster::start(EngineKind::from_env());
    let mut c = cluster.client(Some(eager_front()));
    let key = b"mig:hot";

    c.set_opts(key, b"before-move", SetOptions::new())
        .expect("seed write");
    promote(&mut c, key, b"before-move");
    let version_before = c.mapping_version();

    cluster.migrate_key(key);
    // The heartbeat picks up the new mapping; the front entry's
    // recorded version no longer matches.
    c.poll_coordinator();
    assert!(
        c.mapping_version() > version_before,
        "migration must be visible as a mapping version bump"
    );

    let stale_before = c.stats().front_stale_rejected;
    assert_eq!(
        c.get(key).expect("get across migration"),
        Some(b"before-move".to_vec().into()),
        "value lost across coordinated migration"
    );
    assert!(
        c.stats().front_stale_rejected > stale_before,
        "front entry admitted under the old mapping was not rejected"
    );
    cluster.shutdown();
}

/// Chaos: read-your-writes holds while frames drop and reset mid-run
/// and a forced migration races the traffic. A set that errors leaves
/// the key's value uncertain (the ack was lost, the write may or may
/// not have landed), so the model tracks an admissible set per key,
/// exactly like `tests/chaos.rs`.
#[test]
fn read_your_writes_survives_chaos_and_migration() {
    let mut cluster =
        Cluster::start_faulty(EngineKind::from_env(), FaultPlan::drops(0xC0FFEE, 0.05));
    let mut c = cluster.client(Some(eager_front()));

    const KEYS: u32 = 8;
    let key_of = |k: u32| format!("chaos:{k:02}").into_bytes();
    // Admissible values per key: the last acked write, plus any
    // unacked writes issued since.
    let mut admissible: HashMap<u32, Vec<Vec<u8>>> = HashMap::new();

    for round in 0..60u32 {
        let k = round % KEYS;
        let key = key_of(k);
        let value = format!("c{round:04}").into_bytes();
        match c.set_opts(&key, &value, SetOptions::new()) {
            Ok(_) => {
                admissible.insert(k, vec![value]);
            }
            Err(_) => {
                // Ack lost: both the old admissible values and the new
                // one remain possible until a read resolves them.
                admissible.entry(k).or_default().push(value);
            }
        }
        // Hammer the hot keys so the front tier stays engaged while
        // faults fire around it.
        for _ in 0..3 {
            if let Ok(got) = c.get(&key) {
                let poss = admissible.entry(k).or_default();
                let got = got.expect("written key must not vanish").to_vec();
                assert!(
                    poss.contains(&got),
                    "round {round}: read {:?} not in admissible set {:?}",
                    String::from_utf8_lossy(&got),
                    poss.len()
                );
                // A successful read resolves the uncertainty.
                *poss = vec![got];
            }
        }
        if round == 30 {
            cluster.migrate_key(&key_of(0));
            c.poll_coordinator();
        }
    }

    assert!(
        c.stats().front_hits > 0,
        "chaos run never exercised the front cache"
    );
    cluster.shutdown();
}

/// Multi-tenancy: front caches are per-client and keys are
/// tenant-namespaced on the wire, so two tenants reading the same key
/// bytes each stay pinned to their own value — even with both front
/// tiers hot.
#[test]
fn per_tenant_front_caches_never_leak_across_tenants() {
    const RED: TenantId = TenantId(1);
    const BLUE: TenantId = TenantId(2);
    let dir = TenantDirectory::new()
        .with_tenant(RED, TenantQuota::new(256 << 10, 1 << 20))
        .with_tenant(BLUE, TenantQuota::new(256 << 10, 1 << 20));
    let cluster = Cluster::start_tenanted(EngineKind::from_env(), dir);

    let mut red = cluster.client_for(RED, Some(eager_front()));
    let mut blue = cluster.client_for(BLUE, Some(eager_front()));
    let key = b"shared:bytes";

    red.set_opts(key, b"red-value", SetOptions::new())
        .expect("red set");
    blue.set_opts(key, b"blue-value", SetOptions::new())
        .expect("blue set");
    promote(&mut red, key, b"red-value");
    promote(&mut blue, key, b"blue-value");

    // Interleave hot reads and rewrites; each tenant must only ever
    // see its own value.
    for round in 0..20u32 {
        let rv = format!("red-{round}").into_bytes();
        red.set_opts(key, &rv, SetOptions::new())
            .expect("red rewrite");
        for _ in 0..3 {
            assert_eq!(
                red.get(key).expect("red get"),
                Some(rv.clone().into()),
                "red tenant leaked a foreign or stale value"
            );
            assert_eq!(
                blue.get(key).expect("blue get"),
                Some(b"blue-value".to_vec().into()),
                "blue tenant observed red's write through the front tier"
            );
        }
    }

    assert!(red.stats().front_hits > 0, "red front cache never engaged");
    assert!(
        blue.stats().front_hits > 0,
        "blue front cache never engaged"
    );
    cluster.shutdown();
}
