//! The STATS wire surface end to end over TCP: a client drives real
//! traffic, then scrapes per-worker stats (the memcached `stats`
//! analog) and checks the counters and latency histograms match what
//! was issued.

use mbal::balancer::coordinator::Coordinator;
use mbal::balancer::BalancerConfig;
use mbal::client::{Client, SetOptions};
use mbal::core::clock::RealClock;
use mbal::core::types::{ServerId, WorkerAddr};
use mbal::ring::{ConsistentRing, MappingTable};
use mbal::server::tcp::{serve_tcp, TcpTransport};
use mbal::server::{FaultInjector, FaultPlan, InProcRegistry, Server, ServerConfig, Transport};
use mbal::telemetry::{Counter, Gauge};
use std::collections::HashMap;
use std::sync::Arc;

fn build(n_servers: u16, workers: u16) -> (Vec<Server>, Arc<Coordinator>, Arc<TcpTransport>) {
    let mut ring = ConsistentRing::new();
    for s in 0..n_servers {
        for w in 0..workers {
            ring.add_worker(WorkerAddr::new(s, w));
        }
    }
    let mapping = MappingTable::build(&ring, 4, 256);
    let coordinator = Arc::new(Coordinator::new(mapping.clone(), BalancerConfig::default()));
    let registry = InProcRegistry::new();
    let mut routes = HashMap::new();
    let servers: Vec<Server> = (0..n_servers)
        .map(|s| {
            let server = Server::spawn(
                ServerConfig::new(ServerId(s), workers, 64 << 20).cachelets_per_worker(4),
                &mapping,
                &registry,
                Arc::clone(&coordinator),
                Arc::new(RealClock::new()),
            );
            let bound = serve_tcp(&server.worker_mailboxes(), "127.0.0.1", 0).expect("bind");
            routes.extend(bound);
            server
        })
        .collect();
    (servers, coordinator, TcpTransport::new(routes))
}

#[test]
fn stats_over_tcp_report_issued_traffic() {
    const N: u64 = 120;
    let (mut servers, coordinator, transport) = build(2, 2);
    let mut client = Client::builder(
        Arc::clone(&transport) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    )
    .build();
    for i in 0..N {
        client
            .set_opts(format!("sw:{i}").as_bytes(), b"value", SetOptions::new())
            .expect("set over tcp");
    }
    for i in 0..N {
        assert!(client
            .get(format!("sw:{i}").as_bytes())
            .expect("get over tcp")
            .is_some());
    }

    let reports = client.server_stats(false).expect("stats over tcp");
    assert_eq!(reports.len(), 4, "one report per worker");

    let sets: u64 = reports
        .iter()
        .map(|r| r.load.metrics.get(Counter::Sets))
        .sum();
    let gets: u64 = reports
        .iter()
        .map(|r| r.load.metrics.get(Counter::Gets))
        .sum();
    let hits: u64 = reports
        .iter()
        .map(|r| r.load.metrics.get(Counter::GetHits))
        .sum();
    assert_eq!(sets, N, "every SET must be counted exactly once");
    assert_eq!(gets, N, "every GET must be counted exactly once");
    assert_eq!(hits, N, "every GET was a hit");

    // Latency histograms recorded every op, with sane percentiles.
    let read_count: u64 = reports.iter().map(|r| r.read_latency.count).sum();
    let write_count: u64 = reports.iter().map(|r| r.write_latency.count).sum();
    assert_eq!(read_count, N);
    assert_eq!(write_count, N);
    for r in &reports {
        if r.read_latency.count > 0 {
            assert!(r.read_latency.p50_us <= r.read_latency.p99_us);
            assert!(r.read_latency.p99_us <= r.read_latency.max_us);
        }
    }

    // A single-worker scrape agrees with the fleet scrape.
    let one = client
        .worker_stats(WorkerAddr::new(0, 0), false)
        .expect("worker stats");
    assert_eq!(one.load.addr, WorkerAddr::new(0, 0));
    assert!(!one.named_dump().is_empty());

    for s in &mut servers {
        s.shutdown();
    }
}

/// `Stats { reset: true }` raced against live writers, with the stats
/// scrapes travelling through a delay-injecting fault transport to
/// widen the race window. Because a worker serves its mailbox serially,
/// every reset snapshot must partition the write stream exactly: the
/// sum of harvested deltas plus the final residual equals the writes
/// issued — nothing lost, nothing double-counted — and gauges (current
/// state, not rates) must survive every reset.
#[test]
fn stats_reset_raced_with_writers_conserves_counts() {
    const WRITES: u64 = 400;
    let (mut servers, coordinator, transport) = build(1, 1);

    let writer_transport = Arc::clone(&transport);
    let writer_coord = Arc::clone(&coordinator);
    let writer = std::thread::spawn(move || {
        let mut c = Client::builder(
            writer_transport as Arc<dyn Transport>,
            writer_coord as Arc<dyn mbal::client::CoordinatorLink>,
        )
        .build();
        for i in 0..WRITES {
            c.set_opts(
                format!("race:{}", i % 32).as_bytes(),
                b"v",
                SetOptions::new(),
            )
            .expect("writer set");
        }
    });

    // The scraper's frames get held 1–3 ms half the time, so resets land
    // at arbitrary points of the write stream.
    let injector = FaultInjector::new(
        Arc::clone(&transport) as Arc<dyn Transport>,
        FaultPlan::delays(0xbeef, 0.5, 1, 3),
    );
    let mut scraper = Client::builder(
        Arc::clone(&injector) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    )
    .build();

    let mut harvested = 0u64;
    let mut owned_gauge = None;
    let mut scrapes = 0u32;
    loop {
        let done = writer.is_finished();
        let reports = scraper.server_stats(true).expect("stats reset under delay");
        harvested += reports
            .iter()
            .map(|r| r.load.metrics.get(Counter::Sets))
            .sum::<u64>();
        let owned = reports[0].load.metrics.gauge(Gauge::CacheletsOwned);
        assert!(owned > 0, "gauges must survive a counter reset");
        if let Some(prev) = owned_gauge {
            assert_eq!(prev, owned, "reset must not disturb gauges");
        }
        owned_gauge = Some(owned);
        scrapes += 1;
        if done && scrapes >= 3 {
            break;
        }
    }
    writer.join().expect("writer thread");

    // Writers are synchronous, so after the join every SET has been
    // counted; whatever the harvest missed sits in the residual.
    let residual: u64 = scraper
        .server_stats(false)
        .expect("final stats")
        .iter()
        .map(|r| r.load.metrics.get(Counter::Sets))
        .sum();
    assert_eq!(
        harvested + residual,
        WRITES,
        "reset deltas must partition the write stream exactly \
         (harvested {harvested} + residual {residual})"
    );
    assert!(injector.injected() > 0, "delay plan never fired");

    for s in &mut servers {
        s.shutdown();
    }
}

#[test]
fn stats_reset_over_tcp_zeroes_counters() {
    let (mut servers, coordinator, transport) = build(1, 1);
    let mut client = Client::builder(
        Arc::clone(&transport) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    )
    .build();
    for i in 0..10u32 {
        client
            .set_opts(format!("r:{i}").as_bytes(), b"v", SetOptions::new())
            .expect("set");
    }
    let before = client.server_stats(true).expect("stats reset");
    assert_eq!(before[0].load.metrics.get(Counter::Sets), 10);
    let after = client.server_stats(false).expect("stats");
    assert_eq!(after[0].load.metrics.get(Counter::Sets), 0);
    assert_eq!(after[0].write_latency.count, 0);
    for s in &mut servers {
        s.shutdown();
    }
}
