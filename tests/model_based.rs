//! Model-based end-to-end property test: arbitrary op sequences against
//! a live multi-server MBal cluster must agree with a `HashMap`, before
//! and after balancer activity and forced migrations.

use mbal::balancer::coordinator::Coordinator;
use mbal::balancer::plan::Migration;
use mbal::balancer::BalancerConfig;
use mbal::client::{Client, SetOptions};
use mbal::core::clock::ManualClock;
use mbal::core::types::{ServerId, WorkerAddr};
use mbal::ring::{ConsistentRing, MappingTable};
use mbal::server::{InProcRegistry, Server, ServerConfig, Transport};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Action {
    Set(u8, Vec<u8>),
    Get(u8),
    Delete(u8),
    Tick,
    Migrate(u8),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        5 => (any::<u8>(), prop::collection::vec(any::<u8>(), 1..32)).prop_map(|(k, v)| Action::Set(k, v)),
        4 => any::<u8>().prop_map(Action::Get),
        2 => any::<u8>().prop_map(Action::Delete),
        1 => Just(Action::Tick),
        1 => any::<u8>().prop_map(Action::Migrate),
    ]
}

fn key_of(k: u8) -> Vec<u8> {
    format!("mb:{k:03}").into_bytes()
}

proptest! {
    // Each case spins a real cluster with threads: keep the count low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cluster_agrees_with_hashmap(actions in prop::collection::vec(action_strategy(), 1..120)) {
        let mut ring = ConsistentRing::new();
        for s in 0..2u16 {
            ring.add_worker(WorkerAddr::new(s, 0));
            ring.add_worker(WorkerAddr::new(s, 1));
        }
        let mapping = MappingTable::build(&ring, 4, 128);
        let bal = BalancerConfig::aggressive();
        let coordinator = Arc::new(Coordinator::new(mapping.clone(), bal.clone()));
        let registry = InProcRegistry::new();
        let clock = ManualClock::new();
        let mut servers: Vec<Server> = (0..2u16)
            .map(|s| {
                Server::spawn(
                    ServerConfig::new(ServerId(s), 2, 32 << 20)
                        .cachelets_per_worker(4)
                        .balancer(bal.clone()),
                    &mapping,
                    &registry,
                    Arc::clone(&coordinator),
                    Arc::new(clock.clone()),
                )
            })
            .collect();
        let mut client = Client::builder(
            Arc::clone(&registry) as Arc<dyn Transport>,
            Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
        )
        .build();
        let mut model: HashMap<u8, Vec<u8>> = HashMap::new();

        for action in actions {
            match action {
                Action::Set(k, v) => {
                    client.set_opts(&key_of(k), &v, SetOptions::new()).expect("set");
                    model.insert(k, v);
                }
                Action::Get(k) => {
                    let got = client.get(&key_of(k)).expect("get");
                    prop_assert_eq!(got.map(|v| v.to_vec()).as_ref(), model.get(&k), "divergence on key {}", k);
                }
                Action::Delete(k) => {
                    client.delete(&key_of(k)).expect("delete");
                    model.remove(&k);
                }
                Action::Tick => {
                    clock.advance(250_000);
                    let now = mbal::core::clock::Clock::now_millis(&clock);
                    for s in &mut servers {
                        s.tick(now);
                    }
                }
                Action::Migrate(seed) => {
                    // Force a coordinated migration of an arbitrary
                    // cachelet to the other server.
                    let snap = coordinator.mapping_snapshot();
                    let c = mbal::core::types::CacheletId(
                        seed as u32 % snap.num_cachelets() as u32,
                    );
                    let Some(owner) = snap.worker_of_cachelet(c) else { continue };
                    let dest_server = if owner.server == ServerId(0) { 1 } else { 0 };
                    let dest = WorkerAddr::new(dest_server, seed as u16 % 2);
                    let m = Migration { cachelet: c, from: owner, to: dest, load: 0.0 };
                    coordinator.report_local_move(&m);
                    servers[owner.server.0 as usize].migrate_out(&m);
                }
            }
        }
        // Full sweep at the end: every model key is present with the
        // right value; every deleted key is absent.
        for k in 0..=u8::MAX {
            let got = client.get(&key_of(k)).expect("get");
            prop_assert_eq!(got.map(|v| v.to_vec()).as_ref(), model.get(&k), "final divergence on key {}", k);
        }
        for s in &mut servers {
            s.shutdown();
        }
    }
}
