//! Tenant isolation, end to end through the real server stack.
//!
//! The contract under test is the multi-tenancy subsystem's core
//! promise: one tenant's memory pressure is *structurally* unable to
//! touch another tenant's entries. A flooding tenant whose footprint
//! exceeds its budget several times over churns through its own
//! evictions while a quiet tenant's acked writes — comfortably inside
//! their reserved floor — read back verbatim, in both storage engines,
//! with a coordinated migration racing the flood, and with unknown
//! tenants bounced as a typed status rather than a dropped session.
//!
//! (The chaos suite extends the same invariant across injected
//! network faults and node kills; see `tests/chaos.rs`.)

use mbal::balancer::coordinator::Coordinator;
use mbal::balancer::plan::Migration;
use mbal::balancer::BalancerConfig;
use mbal::client::{Client, CoordinatorLink, SetOptions};
use mbal::core::clock::{Clock, ManualClock};
use mbal::core::engine::EngineKind;
use mbal::core::types::{ServerId, TenantId, WorkerAddr};
use mbal::proto::Status;
use mbal::ring::{ConsistentRing, MappingTable};
use mbal::server::{InProcRegistry, Server, ServerConfig, Transport};
use mbal::tenant::{TenantDirectory, TenantQuota};
use std::sync::Arc;

const QUIET: TenantId = TenantId(1);
const FLOOD: TenantId = TenantId(2);

/// Quotas are per cache unit. The quiet tenant's whole footprint fits
/// far inside its reserved floor; the flooder's budget is a fraction
/// of what it will try to store.
fn directory() -> TenantDirectory {
    TenantDirectory::new()
        .with_tenant(QUIET, TenantQuota::new(256 << 10, 1 << 20))
        .with_tenant(FLOOD, TenantQuota::new(32 << 10, 256 << 10))
}

struct Cluster {
    servers: Vec<Server>,
    registry: Arc<InProcRegistry>,
    coordinator: Arc<Coordinator>,
}

impl Cluster {
    fn start(engine: EngineKind) -> Self {
        let mut ring = ConsistentRing::new();
        for s in 0..2u16 {
            ring.add_worker(WorkerAddr::new(s, 0));
            ring.add_worker(WorkerAddr::new(s, 1));
        }
        let mapping = MappingTable::build(&ring, 4, 128);
        let coordinator = Arc::new(Coordinator::new(mapping.clone(), BalancerConfig::default()));
        let registry = InProcRegistry::new();
        let clock = ManualClock::new();
        let servers = (0..2u16)
            .map(|s| {
                Server::spawn(
                    ServerConfig::new(ServerId(s), 2, 32 << 20)
                        .cachelets_per_worker(4)
                        .engine(engine)
                        .tenants(directory()),
                    &mapping,
                    &registry,
                    Arc::clone(&coordinator),
                    Arc::new(clock.clone()) as Arc<dyn Clock>,
                )
            })
            .collect();
        Self {
            servers,
            registry,
            coordinator,
        }
    }

    fn client_for(&self, tenant: TenantId) -> Client {
        Client::builder(
            Arc::clone(&self.registry) as Arc<dyn Transport>,
            Arc::clone(&self.coordinator) as Arc<dyn CoordinatorLink>,
        )
        .tenant(tenant)
        .build()
    }

    fn shutdown(mut self) {
        for s in &mut self.servers {
            s.shutdown();
        }
    }
}

fn quiet_key(i: u32) -> Vec<u8> {
    format!("quiet:{i:05}").into_bytes()
}

fn quiet_value(i: u32) -> Vec<u8> {
    format!("qv-{i:05}-{}", "x".repeat(96)).into_bytes()
}

/// Writes the quiet tenant's working set, floods from the noisy
/// tenant, and asserts the quiet set is untouched while the flooder
/// paid for its own overrun.
fn flood_scenario(engine: EngineKind) {
    let cluster = Cluster::start(engine);
    let mut quiet = cluster.client_for(QUIET);
    let mut flood = cluster.client_for(FLOOD);

    const QUIET_KEYS: u32 = 300;
    for i in 0..QUIET_KEYS {
        quiet
            .set_opts(&quiet_key(i), &quiet_value(i), SetOptions::new())
            .expect("quiet set must be admitted");
    }

    // ~5 MiB of cold writes against a ~2.3 MiB cluster-wide budget.
    let big = vec![0xABu8; 2048];
    for i in 0..2_500u32 {
        flood
            .set_opts(format!("flood:{i:06}").as_bytes(), &big, SetOptions::new())
            .expect("flood sets are admitted (they evict flood-owned entries)");
    }

    for i in 0..QUIET_KEYS {
        assert_eq!(
            quiet.get(&quiet_key(i)).expect("quiet get"),
            Some(quiet_value(i).into()),
            "[{engine:?}] flood evicted quiet key {i}: cross-tenant eviction"
        );
    }

    // The server's per-tenant books must agree: the flooder churned,
    // the quiet tenant lost nothing.
    let reports = quiet.server_stats(false).expect("stats scrape");
    let mut quiet_evictions = 0u64;
    let mut flood_evictions = 0u64;
    let mut quiet_resident = 0u64;
    for r in &reports {
        for t in &r.load.tenants {
            if t.tenant == QUIET {
                quiet_evictions += t.evictions;
                quiet_resident += t.resident_bytes;
            } else if t.tenant == FLOOD {
                flood_evictions += t.evictions;
            }
        }
    }
    assert_eq!(
        quiet_evictions, 0,
        "[{engine:?}] quiet tenant under its floor must never be evicted"
    );
    assert!(
        flood_evictions > 0,
        "[{engine:?}] the flooder must have evicted its own entries"
    );
    assert!(
        quiet_resident > 0,
        "[{engine:?}] quiet tenant accounting shows nothing resident"
    );
    cluster.shutdown();
}

#[test]
fn flood_cannot_evict_the_quiet_tenant_slab() {
    flood_scenario(EngineKind::SlabLru);
}

#[test]
fn flood_cannot_evict_the_quiet_tenant_seg() {
    flood_scenario(EngineKind::Seg);
}

/// The same invariant for whatever engine `MBAL_ENGINE` selects — the
/// CI engine matrix drives this one explicitly under both values.
#[test]
fn flood_isolation_holds_for_the_env_selected_engine() {
    flood_scenario(EngineKind::from_env());
}

#[test]
fn unknown_tenant_is_a_typed_rejection_not_a_dropped_session() {
    let cluster = Cluster::start(EngineKind::from_env());
    let mut ghost = cluster.client_for(TenantId(9));

    let err = ghost
        .set_opts(b"ghost:key", b"v", SetOptions::new())
        .expect_err("unadmitted tenant must be refused");
    assert_eq!(err.status(), Some(Status::UnknownTenant), "{err}");
    let err = ghost.get(b"ghost:key").expect_err("reads refused too");
    assert_eq!(err.status(), Some(Status::UnknownTenant), "{err}");

    // The rejection is per-request: the same transport keeps serving
    // admitted tenants afterwards.
    let mut quiet = cluster.client_for(QUIET);
    quiet
        .set_opts(b"alive", b"yes", SetOptions::new())
        .expect("admitted tenant unaffected by the rejection");
    assert_eq!(
        quiet.get(b"alive").expect("get"),
        Some(b"yes".to_vec().into())
    );
    cluster.shutdown();
}

/// A coordinated migration mid-flood: the migrating cachelet carries
/// namespaced keys across servers, and the quiet tenant's entries —
/// including the migrated ones — must survive both the move and the
/// flood raging around it.
#[test]
fn quiet_tenant_survives_a_flood_racing_a_migration() {
    let mut cluster = Cluster::start(EngineKind::from_env());
    let mut quiet = cluster.client_for(QUIET);
    let mut flood = cluster.client_for(FLOOD);

    const QUIET_KEYS: u32 = 200;
    for i in 0..QUIET_KEYS {
        quiet
            .set_opts(&quiet_key(i), &quiet_value(i), SetOptions::new())
            .expect("quiet set");
    }

    let big = vec![0xCDu8; 2048];
    let mut flood_i = 0u32;
    let mut flood_burst = |flood: &mut Client, n: u32| {
        for _ in 0..n {
            flood
                .set_opts(
                    format!("flood:{flood_i:06}").as_bytes(),
                    &big,
                    SetOptions::new(),
                )
                .expect("flood set");
            flood_i += 1;
        }
    };
    flood_burst(&mut flood, 800);

    // Migrate the cachelet that homes quiet key 0 to the other server,
    // with the flood's writes interleaved before and after.
    let snap = cluster.coordinator.mapping_snapshot();
    let (cachelet, owner) = snap.route(&quiet_key(0)).expect("mapping is total");
    let dest_server = if owner.server == ServerId(0) { 1 } else { 0 };
    let m = Migration {
        cachelet,
        from: owner,
        to: WorkerAddr::new(dest_server, 0),
        load: 0.0,
    };
    cluster.coordinator.report_local_move(&m);
    let committed = cluster.servers[owner.server.0 as usize].migrate_out(&m);
    assert!(committed, "coordinated migration must commit");

    flood_burst(&mut flood, 800);

    for i in 0..QUIET_KEYS {
        assert_eq!(
            quiet.get(&quiet_key(i)).expect("quiet get"),
            Some(quiet_value(i).into()),
            "quiet key {i} lost across migration + flood"
        );
    }
    cluster.shutdown();
}
