//! End-to-end coverage of the extended Memcached operation family
//! (add/replace/append/prepend/incr/decr/touch) through the full
//! client → transport → worker stack, over both in-proc and TCP.

use mbal::balancer::coordinator::Coordinator;
use mbal::balancer::BalancerConfig;
use mbal::client::Client;
use mbal::core::clock::{Clock, ManualClock};
use mbal::core::types::{ServerId, WorkerAddr};
use mbal::ring::{ConsistentRing, MappingTable};
use mbal::server::tcp::{serve_tcp, TcpTransport};
use mbal::server::{InProcRegistry, Server, ServerConfig, Transport};
use std::sync::Arc;

fn cluster() -> (
    Vec<Server>,
    Arc<Coordinator>,
    Arc<InProcRegistry>,
    ManualClock,
) {
    let mut ring = ConsistentRing::new();
    for s in 0..2u16 {
        for w in 0..2u16 {
            ring.add_worker(WorkerAddr::new(s, w));
        }
    }
    let mapping = MappingTable::build(&ring, 4, 128);
    let coordinator = Arc::new(Coordinator::new(mapping.clone(), BalancerConfig::default()));
    let registry = InProcRegistry::new();
    let clock = ManualClock::new();
    let servers = (0..2u16)
        .map(|s| {
            Server::spawn(
                ServerConfig::new(ServerId(s), 2, 32 << 20).cachelets_per_worker(4),
                &mapping,
                &registry,
                Arc::clone(&coordinator),
                Arc::new(clock.clone()),
            )
        })
        .collect();
    (servers, coordinator, registry, clock)
}

#[test]
fn add_replace_semantics_end_to_end() {
    let (mut servers, coordinator, registry, _clock) = cluster();
    let mut c = Client::new(
        Arc::clone(&registry) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    );
    assert!(
        !c.replace(b"k", b"v").expect("replace miss"),
        "replace on miss"
    );
    assert!(c.add(b"k", b"v1").expect("add"), "add on miss stores");
    assert!(!c.add(b"k", b"v2").expect("add hit"), "add on hit refuses");
    assert_eq!(c.get(b"k").expect("get").expect("hit"), b"v1");
    assert!(c.replace(b"k", b"v3").expect("replace"), "replace on hit");
    assert_eq!(c.get(b"k").expect("get").expect("hit"), b"v3");
    for s in &mut servers {
        s.shutdown();
    }
}

#[test]
fn append_prepend_and_counters() {
    let (mut servers, coordinator, registry, _clock) = cluster();
    let mut c = Client::new(
        Arc::clone(&registry) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    );
    c.set(b"log", b"mid").expect("set");
    assert!(c.append(b"log", b"-end").expect("append"));
    assert!(c.prepend(b"log", b"start-").expect("prepend"));
    assert_eq!(c.get(b"log").expect("get").expect("hit"), b"start-mid-end");
    assert!(!c.append(b"missing", b"x").expect("append miss"));

    c.set(b"hits", b"100").expect("set");
    assert_eq!(c.incr(b"hits", 5).expect("incr"), Some(105));
    assert_eq!(c.decr(b"hits", 200).expect("decr"), Some(0), "saturates");
    assert_eq!(c.incr(b"nope", 1).expect("incr miss"), None);
    c.set(b"text", b"abc").expect("set");
    assert!(c.incr(b"text", 1).is_err(), "non-numeric must error");
    for s in &mut servers {
        s.shutdown();
    }
}

#[test]
fn touch_extends_ttl_end_to_end() {
    let (mut servers, coordinator, registry, clock) = cluster();
    let mut c = Client::new(
        Arc::clone(&registry) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    );
    clock.advance(1_000_000); // t = 1 s
    c.set_with_expiry(b"session", b"v", 2_000).expect("set");
    assert!(c.touch(b"session", 60_000).expect("touch"));
    clock.advance(10_000_000); // t = 11 s, past the original expiry
    assert_eq!(
        c.get(b"session")
            .expect("get")
            .expect("touched key survives"),
        b"v"
    );
    assert!(!c.touch(b"missing", 1).expect("touch miss"));
    // Without a touch, TTL still enforces.
    c.set_with_expiry(b"ephemeral", b"v", clock.now_millis() + 500)
        .expect("set");
    clock.advance(1_000_000);
    assert_eq!(c.get(b"ephemeral").expect("get"), None);
    for s in &mut servers {
        s.shutdown();
    }
}

#[test]
fn extended_ops_work_over_tcp() {
    let (mut servers, coordinator, _registry, _clock) = cluster();
    let mut routes = std::collections::HashMap::new();
    for s in &servers {
        routes.extend(serve_tcp(&s.worker_mailboxes(), "127.0.0.1", 0).expect("bind"));
    }
    let transport = TcpTransport::new(routes);
    let mut c = Client::new(
        transport as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    );
    assert!(c.add(b"tcp-counter", b"41").expect("add"));
    assert_eq!(c.incr(b"tcp-counter", 1).expect("incr"), Some(42));
    assert!(c.append(b"tcp-counter", b"!").expect("append"));
    assert_eq!(c.get(b"tcp-counter").expect("get").expect("hit"), b"42!");
    assert!(c.touch(b"tcp-counter", 0).expect("touch"));
    for s in &mut servers {
        s.shutdown();
    }
}
