//! End-to-end coverage of the extended Memcached operation family
//! (add/replace/append/prepend/incr/decr/touch) through the full
//! client → transport → worker stack, over both in-proc and TCP.

use mbal::balancer::coordinator::Coordinator;
use mbal::balancer::BalancerConfig;
use mbal::client::{Client, SetOptions, StoreOutcome};
use mbal::core::clock::{Clock, ManualClock};
use mbal::core::types::{ServerId, WorkerAddr};
use mbal::ring::{ConsistentRing, MappingTable};
use mbal::server::tcp::{serve_tcp, TcpTransport};
use mbal::server::{InProcRegistry, Server, ServerConfig, Transport};
use std::sync::Arc;

fn cluster() -> (
    Vec<Server>,
    Arc<Coordinator>,
    Arc<InProcRegistry>,
    ManualClock,
) {
    let mut ring = ConsistentRing::new();
    for s in 0..2u16 {
        for w in 0..2u16 {
            ring.add_worker(WorkerAddr::new(s, w));
        }
    }
    let mapping = MappingTable::build(&ring, 4, 128);
    let coordinator = Arc::new(Coordinator::new(mapping.clone(), BalancerConfig::default()));
    let registry = InProcRegistry::new();
    let clock = ManualClock::new();
    let servers = (0..2u16)
        .map(|s| {
            Server::spawn(
                ServerConfig::new(ServerId(s), 2, 32 << 20).cachelets_per_worker(4),
                &mapping,
                &registry,
                Arc::clone(&coordinator),
                Arc::new(clock.clone()),
            )
        })
        .collect();
    (servers, coordinator, registry, clock)
}

#[test]
fn add_replace_semantics_end_to_end() {
    let (mut servers, coordinator, registry, _clock) = cluster();
    let mut c = Client::builder(
        Arc::clone(&registry) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    )
    .build();
    assert_eq!(
        c.set_opts(b"k", b"v", SetOptions::replace())
            .expect("replace miss"),
        StoreOutcome::NotStored,
        "replace on miss"
    );
    assert_eq!(
        c.set_opts(b"k", b"v1", SetOptions::add()).expect("add"),
        StoreOutcome::Stored,
        "add on miss stores"
    );
    assert_eq!(
        c.set_opts(b"k", b"v2", SetOptions::add()).expect("add hit"),
        StoreOutcome::Exists,
        "add on hit refuses"
    );
    assert_eq!(c.get(b"k").expect("get").expect("hit"), b"v1");
    assert_eq!(
        c.set_opts(b"k", b"v3", SetOptions::replace())
            .expect("replace"),
        StoreOutcome::Stored,
        "replace on hit"
    );
    assert_eq!(c.get(b"k").expect("get").expect("hit"), b"v3");
    for s in &mut servers {
        s.shutdown();
    }
}

#[test]
fn append_prepend_and_counters() {
    let (mut servers, coordinator, registry, _clock) = cluster();
    let mut c = Client::builder(
        Arc::clone(&registry) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    )
    .build();
    c.set_opts(b"log", b"mid", SetOptions::new()).expect("set");
    assert!(c
        .set_opts(b"log", b"-end", SetOptions::append())
        .expect("append")
        .is_stored());
    assert!(c
        .set_opts(b"log", b"start-", SetOptions::prepend())
        .expect("prepend")
        .is_stored());
    assert_eq!(c.get(b"log").expect("get").expect("hit"), b"start-mid-end");
    assert_eq!(
        c.set_opts(b"missing", b"x", SetOptions::append())
            .expect("append miss"),
        StoreOutcome::NotStored
    );

    c.set_opts(b"hits", b"100", SetOptions::new()).expect("set");
    assert_eq!(c.incr(b"hits", 5).expect("incr"), Some(105));
    assert_eq!(c.decr(b"hits", 200).expect("decr"), Some(0), "saturates");
    assert_eq!(c.incr(b"nope", 1).expect("incr miss"), None);
    c.set_opts(b"text", b"abc", SetOptions::new()).expect("set");
    assert!(c.incr(b"text", 1).is_err(), "non-numeric must error");
    for s in &mut servers {
        s.shutdown();
    }
}

#[test]
fn touch_extends_ttl_end_to_end() {
    let (mut servers, coordinator, registry, clock) = cluster();
    let mut c = Client::builder(
        Arc::clone(&registry) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    )
    .build();
    clock.advance(1_000_000); // t = 1 s
    c.set_opts(b"session", b"v", SetOptions::new().expiry_ms(2_000))
        .expect("set");
    assert_eq!(
        c.touch_opts(b"session", 60_000).expect("touch"),
        StoreOutcome::Stored
    );
    clock.advance(10_000_000); // t = 11 s, past the original expiry
    assert_eq!(
        c.get(b"session")
            .expect("get")
            .expect("touched key survives"),
        b"v"
    );
    assert_eq!(
        c.touch_opts(b"missing", 1).expect("touch miss"),
        StoreOutcome::Missed
    );
    // Without a touch, TTL still enforces.
    c.set_opts(
        b"ephemeral",
        b"v",
        SetOptions::new().expiry_ms(clock.now_millis() + 500),
    )
    .expect("set");
    clock.advance(1_000_000);
    assert_eq!(c.get(b"ephemeral").expect("get"), None);
    for s in &mut servers {
        s.shutdown();
    }
}

#[test]
fn extended_ops_work_over_tcp() {
    let (mut servers, coordinator, _registry, _clock) = cluster();
    let mut routes = std::collections::HashMap::new();
    for s in &servers {
        routes.extend(serve_tcp(&s.worker_mailboxes(), "127.0.0.1", 0).expect("bind"));
    }
    let transport = TcpTransport::new(routes);
    let mut c = Client::builder(
        transport as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    )
    .build();
    assert_eq!(
        c.set_opts(b"tcp-counter", b"41", SetOptions::add())
            .expect("add"),
        StoreOutcome::Stored
    );
    assert_eq!(c.incr(b"tcp-counter", 1).expect("incr"), Some(42));
    assert!(c
        .set_opts(b"tcp-counter", b"!", SetOptions::append())
        .expect("append")
        .is_stored());
    assert_eq!(c.get(b"tcp-counter").expect("get").expect("hit"), b"42!");
    assert_eq!(
        c.touch_opts(b"tcp-counter", 0).expect("touch"),
        StoreOutcome::Stored
    );
    for s in &mut servers {
        s.shutdown();
    }
}
