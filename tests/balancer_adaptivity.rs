//! Cross-crate adaptivity tests on the cluster simulator: the real
//! balancer running over simulated time must (a) improve skewed
//! workloads, (b) adapt across the paper's dynamic A→B→C sequence, and
//! (c) keep Phase 3 a rarity.

use mbal::cluster::{PhaseSet, SimConfig, Simulation};
use mbal::workload::ycsb::Popularity;
use mbal::workload::WorkloadSpec;

fn cfg(phases: PhaseSet) -> SimConfig {
    SimConfig {
        servers: 8,
        workers_per_server: 2,
        cachelets_per_worker: 8,
        vns: 1_024,
        clients: 10,
        concurrency: 8,
        epoch_ms: 200,
        window_ms: 500,
        phases,
        ..SimConfig::default()
    }
}

fn zipf_spec(records: u64, read: f64) -> WorkloadSpec {
    WorkloadSpec {
        records,
        read_fraction: read,
        popularity: Popularity::Zipfian { theta: 0.99 },
        key_len: 24,
        value_len: 64,
        ttl_range_ms: (0, 0),
    }
}

#[test]
fn full_balancer_beats_no_balancer_on_skew() {
    let spec = zipf_spec(50_000, 0.95);
    let base = Simulation::new(cfg(PhaseSet::none())).run(&[(spec.clone(), 6_000)]);
    let balanced = Simulation::new(cfg(PhaseSet::all())).run(&[(spec, 6_000)]);
    assert!(
        balanced.completed as f64 > base.completed as f64 * 1.05,
        "balanced {} must beat unbalanced {} by >5%",
        balanced.completed,
        base.completed
    );
    assert!(
        balanced.overall.p99_us < base.overall.p99_us,
        "balanced p99 {} must beat {}",
        balanced.overall.p99_us,
        base.overall.p99_us
    );
}

#[test]
fn dynamic_workload_keeps_tail_bounded() {
    // A→B→C with all phases: after each shift the balancer must pull the
    // windowed p90 back near the run's best within the segment.
    let a = WorkloadSpec::workload_a(50_000);
    let b = WorkloadSpec::workload_b(50_000);
    let c = WorkloadSpec::workload_c(50_000);
    let mut sim = Simulation::new(cfg(PhaseSet::all()));
    let r = sim.run(&[(a, 4_000), (b, 4_000), (c, 4_000)]);
    assert!(r.completed > 50_000, "sim too small: {}", r.completed);
    // Final windows of each segment must be no worse than ~3x the best
    // window of that segment (converged, not diverging).
    for (start, end) in [(0u64, 4_000u64), (4_000, 8_000), (8_000, 12_000)] {
        let seg: Vec<f64> = r
            .windows
            .iter()
            .filter(|w| w.start_ms >= start && w.start_ms < end && w.read_latency.count > 0)
            .map(|w| w.read_latency.p90_us)
            .collect();
        assert!(seg.len() >= 3, "segment [{start},{end}) too sparse");
        let best = seg.iter().cloned().fold(f64::INFINITY, f64::min);
        let last = *seg.last().expect("non-empty");
        assert!(
            last <= best * 3.0 + 500.0,
            "segment [{start},{end}): final window p90 {last} diverged from best {best}"
        );
    }
}

#[test]
fn phase3_is_sparingly_used() {
    let a = WorkloadSpec::workload_a(50_000);
    let c = WorkloadSpec::workload_c(50_000);
    let mut sim = Simulation::new(cfg(PhaseSet::all()));
    let r = sim.run(&[(a, 4_000), (c, 4_000)]);
    let (p1, p2, p3) = r.phase_events;
    let total = p1 + p2 + p3;
    assert!(total > 0, "the balancer never acted");
    assert!(
        (p3 as f64) < 0.5 * total as f64,
        "Phase 3 dominated: {p3}/{total} events"
    );
}

#[test]
fn write_heavy_workload_does_not_replicate() {
    // 100% writes: Phase 1 must hold fire (write-hot keys are never
    // replicated — propagation would outweigh the benefit).
    let spec = WorkloadSpec {
        records: 10_000,
        read_fraction: 0.0,
        popularity: Popularity::Hotspot {
            hot_data: 0.001,
            hot_ops: 0.8,
        },
        key_len: 24,
        value_len: 64,
        ttl_range_ms: (0, 0),
    };
    let mut sim = Simulation::new(cfg(PhaseSet::all()));
    let _ = sim.run(&[(spec, 4_000)]);
    assert_eq!(sim.replicated_keys(), 0, "write-hot keys were replicated");
}

#[test]
fn simulation_is_reproducible_across_phase_sets() {
    for phases in [PhaseSet::none(), PhaseSet::only_p1(), PhaseSet::all()] {
        let run = || {
            Simulation::new(cfg(phases))
                .run(&[(zipf_spec(20_000, 0.9), 3_000)])
                .completed
        };
        assert_eq!(run(), run(), "nondeterministic under {phases:?}");
    }
}
