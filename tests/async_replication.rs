//! Asynchronous replica propagation (§3.2): with
//! `sync_replication = false`, writes return without waiting for shadow
//! acknowledgement ("eventual consistency that may result in stale reads
//! for some clients") — but replicas must still converge.

use mbal::balancer::coordinator::Coordinator;
use mbal::balancer::BalancerConfig;
use mbal::client::{Client, SetOptions};
use mbal::core::clock::{Clock, ManualClock};
use mbal::core::types::{ServerId, WorkerAddr};
use mbal::ring::{ConsistentRing, MappingTable};
use mbal::server::{InProcRegistry, Server, ServerConfig, Transport};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn build(
    sync: bool,
) -> (
    Vec<Server>,
    Arc<Coordinator>,
    Arc<InProcRegistry>,
    ManualClock,
) {
    let mut ring = ConsistentRing::new();
    for s in 0..3u16 {
        for w in 0..2u16 {
            ring.add_worker(WorkerAddr::new(s, w));
        }
    }
    let mapping = MappingTable::build(&ring, 4, 256);
    let bal = BalancerConfig::aggressive();
    let coordinator = Arc::new(Coordinator::new(mapping.clone(), bal.clone()));
    let registry = InProcRegistry::new();
    let clock = ManualClock::new();
    let servers = (0..3u16)
        .map(|s| {
            let mut cfg = ServerConfig::new(ServerId(s), 2, 32 << 20)
                .cachelets_per_worker(4)
                .balancer(bal.clone());
            cfg.sync_replication = sync;
            Server::spawn(
                cfg,
                &mapping,
                &registry,
                Arc::clone(&coordinator),
                Arc::new(clock.clone()),
            )
        })
        .collect();
    (servers, coordinator, registry, clock)
}

fn replicate_hot_key(servers: &mut [Server], clock: &ManualClock, client: &mut Client) {
    client
        .set_opts(b"celebrity", b"v0", SetOptions::new())
        .expect("set");
    for _ in 0..5 {
        for _ in 0..3_000 {
            let _ = client.get(b"celebrity").expect("get");
        }
        clock.advance(200_000);
        let now = clock.now_millis();
        for s in servers.iter_mut() {
            s.tick(now);
        }
        if client.replicated_keys() > 0 {
            break;
        }
    }
}

#[test]
fn async_replication_converges() {
    let (mut servers, coordinator, registry, clock) = build(false);
    let mut client = Client::builder(
        Arc::clone(&registry) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    )
    .build();
    replicate_hot_key(&mut servers, &clock, &mut client);
    assert!(
        client.replicated_keys() > 0,
        "hot key never replicated: {:?}",
        client.stats()
    );

    // Write through the home worker; the async update is in flight.
    client
        .set_opts(b"celebrity", b"v1", SetOptions::new())
        .expect("set");
    // Eventual consistency: within a bounded (wall-clock) window, every
    // read — home or replica — observes v1.
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut converged = false;
    while Instant::now() < deadline {
        let all_new = (0..8).all(|_| client.get(b"celebrity").expect("get").expect("hit") == b"v1");
        if all_new {
            converged = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(converged, "replicas never converged to the new value");
    for s in &mut servers {
        s.shutdown();
    }
}

#[test]
fn sync_replication_never_reads_stale() {
    let (mut servers, coordinator, registry, clock) = build(true);
    let mut client = Client::builder(
        Arc::clone(&registry) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    )
    .build();
    replicate_hot_key(&mut servers, &clock, &mut client);
    assert!(client.replicated_keys() > 0, "hot key never replicated");
    // With synchronous propagation, the very next read after a write —
    // wherever it routes — must see the new value.
    for round in 0..20 {
        let value = format!("v{round}");
        client
            .set_opts(b"celebrity", value.as_bytes(), SetOptions::new())
            .expect("set");
        for _ in 0..4 {
            assert_eq!(
                client.get(b"celebrity").expect("get").expect("hit"),
                value.as_bytes(),
                "stale read under synchronous replication"
            );
        }
    }
    for s in &mut servers {
        s.shutdown();
    }
}
