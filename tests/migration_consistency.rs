//! Consistency of coordinated cachelet migration under concurrent
//! client traffic (§3.4's Write-Invalidate protocol), plus failure
//! injection: unreachable destinations and stale clients.

use mbal::balancer::coordinator::Coordinator;
use mbal::balancer::plan::Migration;
use mbal::balancer::BalancerConfig;
use mbal::client::{Client, SetOptions};
use mbal::core::clock::RealClock;
use mbal::core::types::{ServerId, WorkerAddr};
use mbal::ring::{ConsistentRing, MappingTable};
use mbal::server::{InProcRegistry, Server, ServerConfig, Transport};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct Cluster {
    registry: Arc<InProcRegistry>,
    coordinator: Arc<Coordinator>,
    servers: Vec<Server>,
    mapping: MappingTable,
}

fn build(n_servers: u16, workers: u16) -> Cluster {
    let mut ring = ConsistentRing::new();
    for s in 0..n_servers {
        for w in 0..workers {
            ring.add_worker(WorkerAddr::new(s, w));
        }
    }
    let mapping = MappingTable::build(&ring, 4, 256);
    let coordinator = Arc::new(Coordinator::new(mapping.clone(), BalancerConfig::default()));
    let registry = InProcRegistry::new();
    let servers = (0..n_servers)
        .map(|s| {
            Server::spawn(
                ServerConfig::new(ServerId(s), workers, 64 << 20).cachelets_per_worker(4),
                &mapping,
                &registry,
                Arc::clone(&coordinator),
                Arc::new(RealClock::new()),
            )
        })
        .collect();
    Cluster {
        registry,
        coordinator,
        servers,
        mapping,
    }
}

impl Cluster {
    fn client(&self) -> Client {
        Client::builder(
            Arc::clone(&self.registry) as Arc<dyn Transport>,
            Arc::clone(&self.coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
        )
        .build()
    }

    fn shutdown(mut self) {
        for s in &mut self.servers {
            s.shutdown();
        }
    }
}

#[test]
fn migration_under_concurrent_writes_loses_nothing() {
    let mut cluster = build(2, 1);
    let mut seed_client = cluster.client();
    for i in 0..500u32 {
        seed_client
            .set_opts(
                format!("cc:{i}").as_bytes(),
                &0u64.to_le_bytes(),
                SetOptions::new(),
            )
            .expect("seed");
    }
    let victim = cluster.mapping.cachelets_of_worker(WorkerAddr::new(0, 0))[0];
    let m = Migration {
        cachelet: victim,
        from: WorkerAddr::new(0, 0),
        to: WorkerAddr::new(1, 0),
        load: 0.0,
    };
    cluster.coordinator.report_local_move(&m);

    // Writers hammer all keys while the migration runs.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stop = Arc::clone(&stop);
        let mut c = cluster.client();
        std::thread::spawn(move || {
            let mut version = 1u64;
            while !stop.load(Ordering::Relaxed) {
                for i in (0..500u32).step_by(7) {
                    let _ = c.set_opts(
                        format!("cc:{i}").as_bytes(),
                        &version.to_le_bytes(),
                        SetOptions::new(),
                    );
                }
                version += 1;
            }
            version
        })
    };
    cluster.servers[0].migrate_out(&m);
    stop.store(true, Ordering::Relaxed);
    let final_version = writer.join().expect("writer");
    assert!(
        final_version > 1,
        "writer made no progress during migration"
    );

    // Every key must still be readable and hold either the seed value or
    // some writer version (no garbage, no loss).
    let mut reader = cluster.client();
    for i in 0..500u32 {
        let v = reader
            .get(format!("cc:{i}").as_bytes())
            .expect("get")
            .unwrap_or_else(|| panic!("key cc:{i} lost in migration"));
        let n = u64::from_le_bytes(v.as_ref().try_into().expect("8-byte value"));
        assert!(n <= final_version, "key cc:{i} has impossible version {n}");
    }
    cluster.shutdown();
}

#[test]
fn stale_client_follows_forwarding_after_migration() {
    let mut cluster = build(2, 1);
    let mut stale = cluster.client(); // snapshot mapping now
    let mut fresh = cluster.client();
    for i in 0..200u32 {
        fresh
            .set_opts(format!("fw:{i}").as_bytes(), b"v", SetOptions::new())
            .expect("set");
    }
    let victim = cluster.mapping.cachelets_of_worker(WorkerAddr::new(0, 0))[0];
    let m = Migration {
        cachelet: victim,
        from: WorkerAddr::new(0, 0),
        to: WorkerAddr::new(1, 0),
        load: 0.0,
    };
    cluster.coordinator.report_local_move(&m);
    cluster.servers[0].migrate_out(&m);
    // The stale client's first touch of a migrated key returns Moved and
    // self-heals via on-the-way routing.
    let v0 = stale.mapping_version();
    for i in 0..200u32 {
        assert!(
            stale
                .get(format!("fw:{i}").as_bytes())
                .expect("get")
                .is_some(),
            "stale client lost fw:{i}"
        );
    }
    assert!(
        stale.mapping_version() > v0 || stale.stats().moved > 0,
        "stale client never learned about the move"
    );
    cluster.shutdown();
}

#[test]
fn unreachable_destination_degrades_to_miss_not_corruption() {
    let mut cluster = build(3, 1);
    let mut client = cluster.client();
    for i in 0..200u32 {
        client
            .set_opts(format!("dead:{i}").as_bytes(), b"v", SetOptions::new())
            .expect("set");
    }
    let victim = cluster.mapping.cachelets_of_worker(WorkerAddr::new(0, 0))[0];
    // Kill the destination's route before migrating: every transfer RPC
    // fails. This models a destination crash mid-migration.
    cluster.registry.deregister(WorkerAddr::new(1, 0));
    let m = Migration {
        cachelet: victim,
        from: WorkerAddr::new(0, 0),
        to: WorkerAddr::new(1, 0),
        load: 0.0,
    };
    cluster.coordinator.report_local_move(&m);
    cluster.servers[0].migrate_out(&m);
    // The migrated cachelet's keys are gone (a cache may lose entries;
    // the write-through backend still has them) but every other key is
    // intact and the cluster keeps serving.
    let mut live = 0;
    let dead_worker = WorkerAddr::new(1, 0);
    for i in 0..200u32 {
        let key = format!("dead:{i}");
        let in_victim = cluster
            .mapping
            .cachelet_of_vn(cluster.mapping.vn_of(key.as_bytes()))
            == victim;
        let on_dead_server =
            cluster.mapping.route(key.as_bytes()).map(|(_, w)| w) == Some(dead_worker);
        let affected = in_victim || on_dead_server;
        match client.get(key.as_bytes()) {
            Ok(Some(_)) => live += 1,
            Ok(None) => assert!(affected, "unaffected key {key} lost"),
            Err(e) => {
                assert!(affected, "unaffected key {key} errored: {e}");
            }
        }
    }
    assert!(live > 0, "the whole cache went dark");
    // A key owned by a live server still accepts writes.
    let mut i = 0u32;
    let fresh_key = loop {
        let k = format!("fresh:{i}");
        let owner = cluster.mapping.route(k.as_bytes()).map(|(_, w)| w);
        if owner != Some(dead_worker) {
            break k;
        }
        i += 1;
    };
    client
        .set_opts(fresh_key.as_bytes(), b"v", SetOptions::new())
        .expect("set on a live server still works");
    cluster.shutdown();
}
