//! End-to-end membership and elasticity tests (§ membership subsystem).
//!
//! These exercise the full stack — coordinator membership state machine,
//! server tick loop, Phase-3 migration plumbing, worker drain gate, and
//! client reconciliation — against virtual time:
//!
//! * **Scale-out then failure** (the acceptance scenario): a two-server
//!   cluster under load admits a third server, rebalances onto it with
//!   exact client-visible consistency, then loses it to a transport-level
//!   kill. The detector must walk the node `Suspect → Failed`, the epoch
//!   must advance, and no write acked by a surviving home may be lost or
//!   ever served stale.
//! * **Graceful drain**: evacuation moves the data, so *nothing* is lost
//!   when a node leaves cleanly — a strictly stronger guarantee than the
//!   failure case allows.
//! * **Stalled drain**: when evacuation targets are unreachable the node
//!   must park in `Draining`, refusing value writes with
//!   `Status::Draining` while still serving reads.
//! * **ClusterStatus RPC**: the worker-served membership view must
//!   round-trip through the wire encoding the CLI consumes.

use mbal::balancer::coordinator::Coordinator;
use mbal::balancer::BalancerConfig;
use mbal::client::{Client, CoordinatorLink, SetOptions};
use mbal::core::clock::{Clock, ManualClock};
use mbal::core::types::{ServerId, WorkerAddr};
use mbal::membership::{MembershipView, NodeState};
use mbal::proto::{Request, Response, Status};
use mbal::ring::{ConsistentRing, MappingTable};
use mbal::server::{FaultInjector, FaultPlan, InProcRegistry, Server, ServerConfig, Transport};
use std::collections::HashMap;
use std::sync::Arc;

const KEYS: u8 = 64;

fn key_of(k: u8) -> Vec<u8> {
    format!("mb:member-{k:03}").into_bytes()
}

/// Finds a synthetic key the mapping currently homes on `server`.
fn key_homed_on(snap: &MappingTable, server: ServerId) -> Vec<u8> {
    (0..10_000u32)
        .map(|i| format!("mb:homed-{i}").into_bytes())
        .find(|k| snap.route(k).expect("mapping is total").1.server == server)
        .unwrap_or_else(|| panic!("no key routes to {server:?}"))
}

struct Cluster {
    mapping: MappingTable,
    coordinator: Arc<Coordinator>,
    registry: Arc<InProcRegistry>,
    clock: ManualClock,
    injector: Arc<FaultInjector>,
    servers: Vec<Server>,
}

impl Cluster {
    /// A cluster of `servers` × 2 workers with membership enabled,
    /// server-originated traffic routed through a clean fault injector
    /// (so endpoints can be killed later).
    fn new(servers: u16) -> Self {
        let mut ring = ConsistentRing::new();
        for s in 0..servers {
            ring.add_worker(WorkerAddr::new(s, 0));
            ring.add_worker(WorkerAddr::new(s, 1));
        }
        let mapping = MappingTable::build(&ring, 4, 128);
        let coordinator = Arc::new(Coordinator::new(mapping.clone(), BalancerConfig::default()));
        let registry = InProcRegistry::new();
        let clock = ManualClock::new();
        let injector = FaultInjector::new(
            Arc::clone(&registry) as Arc<dyn Transport>,
            FaultPlan::none(7),
        );
        let servers = (0..servers)
            .map(|s| {
                Server::spawn_with_transport(
                    ServerConfig::new(ServerId(s), 2, 32 << 20)
                        .cachelets_per_worker(4)
                        .membership(true),
                    &mapping,
                    &registry,
                    Arc::clone(&injector) as Arc<dyn Transport>,
                    Arc::clone(&coordinator),
                    Arc::new(clock.clone()),
                )
            })
            .collect();
        Self {
            mapping,
            coordinator,
            registry,
            clock,
            injector,
            servers,
        }
    }

    fn client(&self) -> Client {
        Client::builder(
            Arc::clone(&self.injector) as Arc<dyn Transport>,
            Arc::clone(&self.coordinator) as Arc<dyn CoordinatorLink>,
        )
        .build()
    }

    /// Advances virtual time by 500 ms and ticks every live server —
    /// well inside the default 3 s suspect window.
    fn tick_round(&mut self) -> u64 {
        self.clock.advance(500_000);
        let now = Clock::now_millis(&self.clock);
        for s in &mut self.servers {
            s.tick(now);
        }
        now
    }
}

/// The acceptance scenario: grow 2 → 3 under load with exact
/// reconciliation, then crash the newcomer and survive it.
#[test]
fn membership_scale_out_then_node_failure() {
    let mut c = Cluster::new(2);
    let mut client = c.client();
    for _ in 0..3 {
        c.tick_round();
    }

    // Load the keyspace through the injector; the plan is clean, so
    // every write must ack.
    let mut acked: HashMap<u8, Vec<u8>> = HashMap::new();
    for k in 0..KEYS {
        let v = format!("scale-{k:03}").into_bytes();
        client
            .set_opts(&key_of(k), &v, SetOptions::new())
            .expect("clean transport");
        acked.insert(k, v);
    }

    assert!(
        c.coordinator
            .mapping_snapshot()
            .workers()
            .iter()
            .all(|w| w.server != ServerId(2)),
        "server 2 must not be mapped before it joins"
    );

    // Spawn the newcomer against the *pre-join* mapping, so it seeds no
    // cachelets: everything it will own must arrive via migration.
    let newcomer = Server::spawn_with_transport(
        ServerConfig::new(ServerId(2), 2, 32 << 20)
            .cachelets_per_worker(4)
            .membership(true),
        &c.mapping,
        &c.registry,
        Arc::clone(&c.injector) as Arc<dyn Transport>,
        Arc::clone(&c.coordinator),
        Arc::new(c.clock.clone()),
    );
    c.servers.push(newcomer);

    let now = Clock::now_millis(&c.clock);
    let epoch_at_join = c.coordinator.join_server(ServerId(2), 2, now);
    assert_eq!(
        c.coordinator.membership_view(now).state_of(ServerId(2)),
        Some(NodeState::Joining),
        "admitted server must start Joining"
    );

    // Sources execute the grow transfers on their ticks; completions
    // promote the newcomer to Up.
    for _ in 0..4 {
        c.tick_round();
    }
    let now = Clock::now_millis(&c.clock);
    assert_eq!(
        c.coordinator.membership_view(now).state_of(ServerId(2)),
        Some(NodeState::Up),
        "grow rebalance never completed"
    );
    assert!(
        c.coordinator.cluster_epoch() > epoch_at_join,
        "finishing the join must bump the epoch again"
    );
    let snap = c.coordinator.mapping_snapshot();
    assert!(
        snap.workers().iter().any(|w| w.server == ServerId(2)),
        "the mapping must route cachelets to the new server"
    );

    // Joining again is a no-op: same epoch, no new transfers.
    assert_eq!(
        c.coordinator.join_server(ServerId(2), 2, now),
        c.coordinator.cluster_epoch(),
        "re-joining a member must not change the epoch"
    );

    // Exact reconciliation: every pre-join write reads back verbatim
    // through the client, which chases Moved forwards and refetches the
    // mapping as it goes.
    for (k, v) in &acked {
        assert_eq!(
            client
                .get(&key_of(*k))
                .expect("clean transport")
                .map(|x| x.to_vec())
                .as_ref(),
            Some(v),
            "key {k} lost or stale after scale-out"
        );
    }

    // The newcomer serves authoritative traffic of its own.
    let fresh_key = key_homed_on(&snap, ServerId(2));
    client
        .set_opts(&fresh_key, b"on-the-newcomer", SetOptions::new())
        .expect("clean transport");
    assert_eq!(
        client.get(&fresh_key).expect("clean transport"),
        Some(b"on-the-newcomer".to_vec().into()),
        "new server must serve a key homed on it"
    );

    // Classify by home at kill time, then crash the newcomer: its
    // endpoints go dark and it stops ticking (no more heartbeats).
    let dead_homed: Vec<u8> = (0..KEYS)
        .filter(|k| snap.route(&key_of(*k)).expect("mapping is total").1.server == ServerId(2))
        .collect();
    c.injector.kill_endpoint(WorkerAddr::new(2, 0));
    c.injector.kill_endpoint(WorkerAddr::new(2, 1));
    let mut killed = c.servers.pop().expect("three servers");
    killed.shutdown();
    let epoch_before_kill = c.coordinator.cluster_epoch();

    let mut now = 0;
    for _ in 0..20 {
        now = c.tick_round();
    }
    assert_eq!(
        c.coordinator.membership_view(now).state_of(ServerId(2)),
        Some(NodeState::Failed),
        "silent node was never confirmed failed"
    );
    assert!(
        c.coordinator.cluster_epoch() > epoch_before_kill,
        "a confirmed failure must bump the cluster epoch"
    );
    assert!(
        c.coordinator
            .mapping_snapshot()
            .workers()
            .iter()
            .all(|w| w.server != ServerId(2)),
        "mapping still routes to the dead server"
    );

    // No acked write on a surviving home may be lost; keys that died
    // with the newcomer may be gone but must never come back stale.
    let mut checker = Client::builder(
        Arc::clone(&c.registry) as Arc<dyn Transport>,
        Arc::clone(&c.coordinator) as Arc<dyn CoordinatorLink>,
    )
    .build();
    for (k, v) in &acked {
        let got = checker
            .get(&key_of(*k))
            .unwrap_or_else(|e| panic!("clean get({k}) failed: {e}"));
        if dead_homed.contains(k) {
            assert!(
                got.is_none() || got.as_ref().map(|x| x.to_vec()).as_ref() == Some(v),
                "key {k} died with its server but came back stale: {got:?}"
            );
        } else {
            assert_eq!(
                got.as_ref().map(|x| x.to_vec()).as_ref(),
                Some(v),
                "acked write on a surviving server was lost (key {k})"
            );
        }
    }
    let fresh = checker.get(&fresh_key).expect("clean transport");
    assert!(
        fresh.is_none() || fresh.as_deref() == Some(b"on-the-newcomer".as_slice()),
        "newcomer-homed key resurrected stale: {fresh:?}"
    );

    for s in &mut c.servers {
        s.shutdown();
    }
}

/// Graceful scale-in: evacuation moves the data, so a clean departure
/// loses nothing at all.
#[test]
fn membership_drain_departs_without_losing_data() {
    let mut c = Cluster::new(3);
    let mut client = c.client();
    for _ in 0..3 {
        c.tick_round();
    }

    let mut acked: HashMap<u8, Vec<u8>> = HashMap::new();
    for k in 0..KEYS {
        let v = format!("drain-{k:03}").into_bytes();
        client
            .set_opts(&key_of(k), &v, SetOptions::new())
            .expect("clean transport");
        acked.insert(k, v);
    }

    let now = Clock::now_millis(&c.clock);
    let epoch_at_drain = c.coordinator.drain_server(ServerId(2), now);
    for _ in 0..4 {
        c.tick_round();
    }
    let now = Clock::now_millis(&c.clock);
    assert_eq!(
        c.coordinator.membership_view(now).state_of(ServerId(2)),
        Some(NodeState::Left),
        "drained server never finished leaving"
    );
    assert!(
        c.coordinator.cluster_epoch() > epoch_at_drain,
        "completing a drain must bump the epoch again"
    );
    assert!(
        c.coordinator
            .mapping_snapshot()
            .workers()
            .iter()
            .all(|w| w.server != ServerId(2)),
        "mapping still routes to the departed server"
    );

    // Every single acked write survives a graceful departure.
    for (k, v) in &acked {
        assert_eq!(
            client
                .get(&key_of(*k))
                .expect("clean transport")
                .map(|x| x.to_vec())
                .as_ref(),
            Some(v),
            "graceful drain lost key {k}"
        );
    }

    // And the shrunken cluster keeps taking writes.
    client
        .set_opts(b"mb:post-drain", b"still-serving", SetOptions::new())
        .expect("clean transport");
    assert_eq!(
        client.get(b"mb:post-drain").expect("clean transport"),
        Some(b"still-serving".to_vec().into())
    );

    for s in &mut c.servers {
        s.shutdown();
    }
}

/// A drain whose evacuation targets are unreachable must *stall*, not
/// lie: the node parks in `Draining`, its workers refuse value writes
/// with `Status::Draining`, reads keep being served, and the mapping
/// rolls every failed transfer back to the live source.
#[test]
fn membership_stalled_drain_refuses_writes_but_serves_reads() {
    let mut c = Cluster::new(2);
    for _ in 0..2 {
        c.tick_round();
    }

    // Make every evacuation destination (server 0) unreachable for
    // server-originated traffic, then start draining server 1.
    c.injector.kill_endpoint(WorkerAddr::new(0, 0));
    c.injector.kill_endpoint(WorkerAddr::new(0, 1));
    let now = Clock::now_millis(&c.clock);
    c.coordinator.drain_server(ServerId(1), now);

    // Only the draining server ticks: it picks up its evacuation queue,
    // every transfer fails against the dead endpoints and rolls back,
    // and the drain gate reaches its workers.
    c.clock.advance(500_000);
    let now = Clock::now_millis(&c.clock);
    let aborted_before = c.coordinator.aborted_migrations();
    c.servers[1].tick(now);

    assert_eq!(
        c.coordinator.membership_view(now).state_of(ServerId(1)),
        Some(NodeState::Draining),
        "a stalled evacuation must leave the node Draining"
    );
    assert!(
        c.coordinator.aborted_migrations() > aborted_before,
        "failed evacuation transfers must roll back via migration_failed"
    );
    let snap = c.coordinator.mapping_snapshot();
    assert!(
        snap.workers().iter().any(|w| w.server == ServerId(1)),
        "rolled-back transfers must restore the draining server's cachelets"
    );

    // Value writes are refused at the worker with the drain status;
    // reads still answer (via the clean registry, not the injector).
    let key = key_homed_on(&snap, ServerId(1));
    let (cachelet, owner) = snap.route(&key).expect("mapping is total");
    let resp = c
        .registry
        .call(
            owner,
            Request::Set {
                cachelet,
                key: key.clone(),
                value: b"refused".to_vec().into(),
                expiry_ms: 0,
            },
        )
        .expect("in-proc transport");
    assert!(
        matches!(
            resp,
            Response::Fail {
                status: Status::Draining,
                ..
            }
        ),
        "drain mode must refuse value writes, got {resp:?}"
    );
    let resp = c
        .registry
        .call(owner, Request::Get { cachelet, key })
        .expect("in-proc transport");
    assert!(
        !matches!(
            resp,
            Response::Fail {
                status: Status::Draining,
                ..
            }
        ),
        "reads must keep being served in drain mode, got {resp:?}"
    );

    for s in &mut c.servers {
        s.shutdown();
    }
}

/// The worker-served `ClusterStatus` RPC round-trips the published
/// membership view — the exact wire surface `mbal-cli cluster-status`
/// consumes.
#[test]
fn membership_cluster_status_rpc_round_trips_the_view() {
    let mut c = Cluster::new(2);
    for _ in 0..2 {
        c.tick_round();
    }

    let resp = c
        .registry
        .call(WorkerAddr::new(0, 0), Request::ClusterStatus)
        .expect("in-proc transport");
    let Response::StatsBlob { payload } = resp else {
        panic!("expected a StatsBlob view, got {resp:?}");
    };
    let view: MembershipView =
        serde_json::from_slice(&payload).expect("view payload must be valid JSON");
    assert!(view.epoch >= 1, "bootstrap starts the epoch at 1");
    assert_eq!(view.cluster_size(), 2);
    for s in 0..2u16 {
        assert_eq!(
            view.state_of(ServerId(s)),
            Some(NodeState::Up),
            "heartbeating server {s} must be Up"
        );
    }

    for s in &mut c.servers {
        s.shutdown();
    }
}
