//! End-to-end integration over the real TCP transport: servers listen
//! on per-worker ports (§2.3), a client routes through the mapping
//! table, and traffic survives a balance tick.

use mbal::balancer::coordinator::Coordinator;
use mbal::balancer::BalancerConfig;
use mbal::client::{Client, SetOptions};
use mbal::core::clock::RealClock;
use mbal::core::types::{ServerId, WorkerAddr};
use mbal::proto::{Request, Response};
use mbal::ring::{ConsistentRing, MappingTable};
use mbal::server::tcp::{serve_tcp, TcpTransport};
use mbal::server::{InProcRegistry, Server, ServerConfig, Transport};
use std::collections::HashMap;
use std::sync::Arc;

fn build(n_servers: u16, workers: u16) -> (Vec<Server>, Arc<Coordinator>, Arc<TcpTransport>) {
    let mut ring = ConsistentRing::new();
    for s in 0..n_servers {
        for w in 0..workers {
            ring.add_worker(WorkerAddr::new(s, w));
        }
    }
    let mapping = MappingTable::build(&ring, 4, 256);
    let coordinator = Arc::new(Coordinator::new(mapping.clone(), BalancerConfig::default()));
    let registry = InProcRegistry::new();
    let mut routes = HashMap::new();
    let servers: Vec<Server> = (0..n_servers)
        .map(|s| {
            let server = Server::spawn(
                ServerConfig::new(ServerId(s), workers, 64 << 20).cachelets_per_worker(4),
                &mapping,
                &registry,
                Arc::clone(&coordinator),
                Arc::new(RealClock::new()),
            );
            let bound = serve_tcp(&server.worker_mailboxes(), "127.0.0.1", 0).expect("bind");
            routes.extend(bound);
            server
        })
        .collect();
    (servers, coordinator, TcpTransport::new(routes))
}

#[test]
fn tcp_cluster_set_get_delete() {
    let (mut servers, coordinator, transport) = build(2, 2);
    let mut client = Client::builder(
        Arc::clone(&transport) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    )
    .build();
    for i in 0..300u32 {
        client
            .set_opts(
                format!("tcp:{i}").as_bytes(),
                &i.to_be_bytes(),
                SetOptions::new(),
            )
            .expect("set over tcp");
    }
    for i in 0..300u32 {
        assert_eq!(
            client
                .get(format!("tcp:{i}").as_bytes())
                .expect("get over tcp")
                .expect("hit"),
            i.to_be_bytes()
        );
    }
    let got = client
        .multi_get(
            &(0..50u32)
                .map(|i| format!("tcp:{i}").into_bytes())
                .collect::<Vec<_>>(),
        )
        .expect("multi_get over tcp");
    assert!(got.iter().all(|v| v.is_some()));
    assert!(client.delete(b"tcp:0").expect("delete"));
    assert_eq!(client.get(b"tcp:0").expect("get"), None);
    for s in &mut servers {
        s.shutdown();
    }
}

#[test]
fn multiget_over_tcp_is_one_flush_per_worker() {
    use mbal::server::messages::WorkerMsg;
    use std::sync::atomic::{AtomicUsize, Ordering};

    // Like `build`, but every worker mailbox is wrapped in a counting
    // relay, so the test observes exactly what the TCP layer enqueues:
    // a 64-key MultiGET must reach each home worker as ONE pipelined
    // batch (one request flush, one response drain), never as 64
    // singleton round-trips.
    let mut ring = ConsistentRing::new();
    for s in 0..2u16 {
        for w in 0..2u16 {
            ring.add_worker(WorkerAddr::new(s, w));
        }
    }
    let mapping = MappingTable::build(&ring, 4, 256);
    let coordinator = Arc::new(Coordinator::new(mapping.clone(), BalancerConfig::default()));
    let registry = InProcRegistry::new();
    let singles = Arc::new(AtomicUsize::new(0));
    let batches = Arc::new(AtomicUsize::new(0));
    let mut routes = HashMap::new();
    let mut servers = Vec::new();
    for s in 0..2u16 {
        let server = Server::spawn(
            ServerConfig::new(ServerId(s), 2, 64 << 20).cachelets_per_worker(4),
            &mapping,
            &registry,
            Arc::clone(&coordinator),
            Arc::new(RealClock::new()),
        );
        let relayed: Vec<_> = server
            .worker_mailboxes()
            .into_iter()
            .map(|(addr, real)| {
                let (tx, rx) = crossbeam_channel::unbounded::<WorkerMsg>();
                let singles = Arc::clone(&singles);
                let batches = Arc::clone(&batches);
                std::thread::spawn(move || {
                    for msg in rx {
                        match &msg {
                            WorkerMsg::Rpc { .. } => {
                                singles.fetch_add(1, Ordering::SeqCst);
                            }
                            WorkerMsg::RpcBatch { .. } => {
                                batches.fetch_add(1, Ordering::SeqCst);
                            }
                            // The event-loop backend tags every enqueue;
                            // a pipelined envelope shows up as one
                            // multi-request message.
                            WorkerMsg::RpcTagged { reqs, .. } => {
                                if reqs.len() > 1 {
                                    batches.fetch_add(1, Ordering::SeqCst);
                                } else {
                                    singles.fetch_add(1, Ordering::SeqCst);
                                }
                            }
                            WorkerMsg::Control(_) => {}
                        }
                        if real.send(msg).is_err() {
                            break;
                        }
                    }
                });
                (addr, tx)
            })
            .collect();
        let bound = serve_tcp(&relayed, "127.0.0.1", 0).expect("bind");
        routes.extend(bound);
        servers.push(server);
    }
    let transport = TcpTransport::new(routes);
    let mut client = Client::builder(
        Arc::clone(&transport) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    )
    .build();

    let keys: Vec<Vec<u8>> = (0..64u32)
        .map(|i| format!("batch:{i}").into_bytes())
        .collect();
    for k in &keys {
        client.set_opts(k, b"v", SetOptions::new()).expect("set");
    }
    singles.store(0, Ordering::SeqCst);
    batches.store(0, Ordering::SeqCst);

    let got = client.multi_get(&keys).expect("multi_get over tcp");
    assert!(got.iter().all(|v| v.is_some()), "all 64 keys must hit");

    let homes: std::collections::HashSet<WorkerAddr> = keys
        .iter()
        .map(|k| mapping.route(k).expect("routed").1)
        .collect();
    assert_eq!(
        batches.load(Ordering::SeqCst),
        homes.len(),
        "one pipelined batch per home worker"
    );
    assert_eq!(
        singles.load(Ordering::SeqCst),
        0,
        "no singleton round-trips during a fully-hit MultiGET"
    );
    for s in &mut servers {
        s.shutdown();
    }
}

#[test]
fn tcp_frames_interoperate_with_raw_protocol() {
    // A hand-rolled protocol client (no mbal-client) must interoperate:
    // the wire format is the contract.
    let (mut servers, coordinator, transport) = build(1, 1);
    let mapping = coordinator.mapping_snapshot();
    let key = b"raw-key".to_vec();
    let (cachelet, worker) = mapping.route(&key).expect("routed");
    let resp = transport
        .call(
            worker,
            Request::Set {
                cachelet,
                key: key.clone(),
                value: b"raw-value".to_vec().into(),
                expiry_ms: 0,
            },
        )
        .expect("set");
    assert_eq!(resp, Response::Stored);
    let resp = transport
        .call(worker, Request::Get { cachelet, key })
        .expect("get");
    assert_eq!(
        resp,
        Response::Value {
            value: b"raw-value".to_vec().into(),
            replicas: vec![]
        }
    );
    for s in &mut servers {
        s.shutdown();
    }
}

#[test]
fn stats_blob_is_valid_json_stats_report() {
    let (mut servers, _coordinator, transport) = build(1, 1);
    let resp = transport
        .call(WorkerAddr::new(0, 0), Request::Stats { reset: false })
        .expect("stats");
    let Response::StatsBlob { payload } = resp else {
        panic!("expected stats blob, got {resp:?}");
    };
    let report: mbal::telemetry::StatsReport =
        serde_json::from_slice(&payload).expect("stats parse as StatsReport");
    assert_eq!(report.load.addr, WorkerAddr::new(0, 0));
    assert_eq!(report.load.cachelets.len(), 4);
    for s in &mut servers {
        s.shutdown();
    }
}

#[test]
fn balance_tick_does_not_disturb_tcp_traffic() {
    let (mut servers, coordinator, transport) = build(2, 2);
    let mut client = Client::builder(
        Arc::clone(&transport) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    )
    .build();
    for i in 0..200u32 {
        client
            .set_opts(format!("k{i}").as_bytes(), b"v", SetOptions::new())
            .expect("set");
    }
    for s in &mut servers {
        s.tick(1_000);
        s.tick(2_000);
    }
    for i in 0..200u32 {
        assert!(client
            .get(format!("k{i}").as_bytes())
            .expect("get")
            .is_some());
    }
    for s in &mut servers {
        s.shutdown();
    }
}
