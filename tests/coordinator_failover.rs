//! End-to-end coordinator fault tolerance: a live cluster wired through
//! a [`ReplicatedCoordinator`] keeps balancing and serving across a
//! primary failover — the §3.4 future-work scenario.

use mbal::balancer::plan::Migration;
use mbal::balancer::replicated::CoordinatorService;
use mbal::balancer::{BalancerConfig, ReplicatedCoordinator};
use mbal::client::{Client, SetOptions};
use mbal::core::clock::{Clock, ManualClock};
use mbal::core::types::{ServerId, WorkerAddr};
use mbal::ring::{ConsistentRing, MappingTable};
use mbal::server::{InProcRegistry, Server, ServerConfig, Transport};
use std::sync::Arc;

#[test]
fn cluster_survives_coordinator_failover() {
    let mut ring = ConsistentRing::new();
    for s in 0..2u16 {
        ring.add_worker(WorkerAddr::new(s, 0));
        ring.add_worker(WorkerAddr::new(s, 1));
    }
    let mapping = MappingTable::build(&ring, 4, 128);
    let bal = BalancerConfig::aggressive();
    let group = Arc::new(ReplicatedCoordinator::new(mapping.clone(), bal.clone(), 2));
    let registry = InProcRegistry::new();
    let clock = ManualClock::new();
    let mut servers: Vec<Server> = (0..2u16)
        .map(|s| {
            Server::spawn(
                ServerConfig::new(ServerId(s), 2, 32 << 20)
                    .cachelets_per_worker(4)
                    .balancer(bal.clone()),
                &mapping,
                &registry,
                Arc::clone(&group),
                Arc::new(clock.clone()),
            )
        })
        .collect();
    let mut client = Client::builder(
        Arc::clone(&registry) as Arc<dyn Transport>,
        Arc::clone(&group) as Arc<dyn mbal::client::CoordinatorLink>,
    )
    .build();

    for i in 0..300u32 {
        client
            .set_opts(
                format!("fo:{i}").as_bytes(),
                &i.to_le_bytes(),
                SetOptions::new(),
            )
            .expect("set");
    }
    // A balance epoch and a forced coordinated migration before failover.
    clock.advance(250_000);
    for s in &mut servers {
        s.tick(clock.now_millis());
    }
    let snap = group.mapping_snapshot();
    let victim = snap.cachelets_of_worker(WorkerAddr::new(0, 0))[0];
    let m = Migration {
        cachelet: victim,
        from: WorkerAddr::new(0, 0),
        to: WorkerAddr::new(1, 0),
        load: 0.0,
    };
    group.report_local_move(&m);
    servers[0].migrate_out(&m);
    let v_before = group.mapping_version();
    group.assert_in_sync();

    // Primary dies; the standby takes over with the identical mapping.
    group.fail_over();
    assert_eq!(
        group.mapping_version(),
        v_before,
        "mapping survived failover"
    );

    // Everything keeps working: reads (including of the migrated
    // cachelet), writes, polling, further migrations, balance ticks.
    for i in 0..300u32 {
        assert_eq!(
            client
                .get(format!("fo:{i}").as_bytes())
                .expect("get")
                .expect("hit"),
            i.to_le_bytes()
        );
    }
    let _ = client.poll_coordinator();
    assert_eq!(client.mapping_version(), group.mapping_version());

    let snap = group.mapping_snapshot();
    let victim2 = snap.cachelets_of_worker(WorkerAddr::new(1, 1))[0];
    let m2 = Migration {
        cachelet: victim2,
        from: WorkerAddr::new(1, 1),
        to: WorkerAddr::new(0, 1),
        load: 0.0,
    };
    group.report_local_move(&m2);
    servers[1].migrate_out(&m2);
    clock.advance(250_000);
    for s in &mut servers {
        s.tick(clock.now_millis());
    }
    for i in 0..300u32 {
        assert!(
            client
                .get(format!("fo:{i}").as_bytes())
                .expect("get")
                .is_some(),
            "lost fo:{i} after post-failover migration"
        );
    }
    group.assert_in_sync();
    assert_eq!(group.failovers(), 1);
    for s in &mut servers {
        s.shutdown();
    }
}
