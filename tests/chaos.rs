//! Chaos model-checked consistency suite.
//!
//! Extends the `model_based` harness with a seeded
//! [`mbal::server::FaultInjector`] between every component and the
//! in-proc registry: arbitrary op sequences, forced coordinated
//! migrations and balancer epochs run while frames are dropped, delayed,
//! duplicated, reordered and connections reset mid-batch. Throughout,
//! the cluster must agree with a `HashMap` model that tracks an
//! *uncertainty set* per key — an operation whose ack was lost may or
//! may not have been applied, so both outcomes stay admissible until a
//! later read resolves them. The suite asserts, per seed:
//!
//! - no acknowledged write is ever lost (a key whose last `set` was
//!   acked must read back exactly that value over a clean transport);
//! - no invalidated value is ever served (an acked `delete` makes every
//!   earlier value inadmissible);
//! - the same seed replays a byte-identical fault schedule with
//!   identical verdicts.
//!
//! The node-kill fault class goes further: a whole server dies mid-run.
//! The membership detector must confirm the failure, survivors must
//! inherit the dead node's cachelets and promote shadow replicas, and
//! the loss rules weaken only for data the dead node alone held.
//!
//! Every assertion message carries the failing seed, and a failing run
//! writes it to `target/chaos/failing-seed.txt` so CI can surface it as
//! an artifact. Replay locally with e.g.
//! `FaultPlan::drops(<seed>, 0.10)` in a unit test or debugger session.

use mbal::balancer::coordinator::Coordinator;
use mbal::balancer::plan::Migration;
use mbal::balancer::BalancerConfig;
use mbal::client::{Client, CoordinatorLink, SetOptions};
use mbal::core::clock::{Clock, ManualClock};
use mbal::core::types::{CacheletId, ServerId, TenantId, WorkerAddr};
use mbal::membership::NodeState;
use mbal::proto::{Request, Response};
use mbal::ring::{ConsistentRing, MappingTable};
use mbal::server::fault::SplitMix64;
use mbal::server::{FaultInjector, FaultPlan, InProcRegistry, Server, ServerConfig, Transport};
use mbal::telemetry::Counter;
use mbal::tenant::{TenantDirectory, TenantQuota};
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Distinct keys the scenario touches.
const KEYS: u64 = 48;

fn key_of(k: u8) -> Vec<u8> {
    format!("mb:{k:03}").into_bytes()
}

/// What one chaos run produced, for replayability comparisons.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    /// The injector's fault schedule, one line per event.
    digest: String,
    /// Per-op verdict log (op index, kind, key, result).
    log: String,
    /// Faults injected.
    injected: u64,
}

/// Per-key uncertainty set: the values the cluster is allowed to hold
/// (`None` = absent). A key that was never touched is implicitly
/// `{None}`; a successful read collapses the set to what was observed.
type Model = HashMap<u8, Vec<Option<Vec<u8>>>>;

fn admit(model: &mut Model, k: u8, v: Option<Vec<u8>>) {
    let poss = model.entry(k).or_insert_with(|| vec![None]);
    if !poss.contains(&v) {
        poss.push(v);
    }
}

/// Runs one seeded chaos scenario; panics (with the seed in the
/// message) on any consistency violation.
fn run_scenario(plan: FaultPlan, ops: usize, with_ticks: bool) -> Outcome {
    let seed = plan.seed;
    let mut ring = ConsistentRing::new();
    for s in 0..2u16 {
        ring.add_worker(WorkerAddr::new(s, 0));
        ring.add_worker(WorkerAddr::new(s, 1));
    }
    let mapping = MappingTable::build(&ring, 4, 128);
    let bal = BalancerConfig::aggressive();
    let coordinator = Arc::new(Coordinator::new(mapping.clone(), bal.clone()));
    let registry = InProcRegistry::new();
    let clock = ManualClock::new();
    let injector = FaultInjector::new(Arc::clone(&registry) as Arc<dyn Transport>, plan);
    let mut servers: Vec<Server> = (0..2u16)
        .map(|s| {
            Server::spawn_with_transport(
                ServerConfig::new(ServerId(s), 2, 32 << 20)
                    .cachelets_per_worker(4)
                    .balancer(bal.clone()),
                &mapping,
                &registry,
                Arc::clone(&injector) as Arc<dyn Transport>,
                Arc::clone(&coordinator),
                Arc::new(clock.clone()),
            )
        })
        .collect();
    // The driving client must be wall-clock-free or the schedule is
    // only *usually* reproducible: a per-op deadline can truncate the
    // retry loop early under CPU contention, and the resync backoff
    // window gates coordinator polls on real elapsed time. A huge op
    // budget leaves `max_retries` as the (deterministic) bound, and a
    // zero backoff window closes before it is ever consulted.
    let mut client = Client::builder(
        Arc::clone(&injector) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn CoordinatorLink>,
    )
    .op_budget(Duration::from_secs(3600))
    .poll_backoff(Duration::ZERO, Duration::ZERO)
    .build();

    let mut model: Model = HashMap::new();
    let mut log = String::new();
    // The op stream draws from its own PRNG, derived from the plan seed
    // so one number reproduces both the workload and the faults.
    let mut rng = SplitMix64::new(seed ^ 0xA5A5_5A5A_0D15_EA5E);

    for i in 0..ops {
        match rng.next_below(100) {
            0..=39 => {
                let k = rng.next_below(KEYS) as u8;
                let v = format!("v{i}-{:04x}", rng.next_u64() & 0xffff).into_bytes();
                match client.set_opts(&key_of(k), &v, SetOptions::new()) {
                    Ok(_) => {
                        // Acked: the value is now the only admissible one.
                        model.insert(k, vec![Some(v)]);
                        log.push_str(&format!("{i}:set:{k}:ok\n"));
                    }
                    Err(e) => {
                        // Unacked: may or may not have landed.
                        admit(&mut model, k, Some(v));
                        log.push_str(&format!("{i}:set:{k}:err:{e}\n"));
                    }
                }
            }
            40..=69 => {
                let k = rng.next_below(KEYS) as u8;
                match client.get(&key_of(k)) {
                    Ok(got) => {
                        let got = got.map(|v| v.to_vec());
                        let poss = model.entry(k).or_insert_with(|| vec![None]);
                        assert!(
                            poss.contains(&got),
                            "seed {seed}: op {i} read {got:?} for key {k}, \
                             admissible values were {poss:?} (stale or lost value served)"
                        );
                        // The read resolves the uncertainty.
                        *poss = vec![got.clone()];
                        log.push_str(&format!("{i}:get:{k}:{got:?}\n"));
                    }
                    Err(e) => log.push_str(&format!("{i}:get:{k}:err:{e}\n")),
                }
            }
            70..=81 => {
                let k = rng.next_below(KEYS) as u8;
                match client.delete(&key_of(k)) {
                    Ok(existed) => {
                        model.insert(k, vec![None]);
                        log.push_str(&format!("{i}:del:{k}:ok:{existed}\n"));
                    }
                    Err(e) => {
                        admit(&mut model, k, None);
                        log.push_str(&format!("{i}:del:{k}:err:{e}\n"));
                    }
                }
            }
            82..=89 if with_ticks => {
                clock.advance(250_000);
                let now = Clock::now_millis(&clock);
                for s in &mut servers {
                    s.tick(now);
                }
                log.push_str(&format!("{i}:tick\n"));
            }
            _ => {
                // Forced coordinated migration of an arbitrary cachelet
                // to the other server, mid-faults.
                let snap = coordinator.mapping_snapshot();
                let c = CacheletId(rng.next_below(snap.num_cachelets() as u64) as u32);
                let Some(owner) = snap.worker_of_cachelet(c) else {
                    continue;
                };
                let dest_server = if owner.server == ServerId(0) { 1 } else { 0 };
                let dest = WorkerAddr::new(dest_server, rng.next_below(2) as u16);
                let m = Migration {
                    cachelet: c,
                    from: owner,
                    to: dest,
                    load: 0.0,
                };
                coordinator.report_local_move(&m);
                let committed = servers[owner.server.0 as usize].migrate_out(&m);
                log.push_str(&format!("{i}:migrate:{}:{committed}\n", c.0));
            }
        }
    }

    // Final sweep over a CLEAN transport: whatever the faults did, the
    // cluster must have converged to an admissible state — every acked
    // write readable, every acked delete absent.
    let mut checker = Client::builder(
        Arc::clone(&registry) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn CoordinatorLink>,
    )
    .build();
    for k in 0..KEYS as u8 {
        let got = checker
            .get(&key_of(k))
            .unwrap_or_else(|e| panic!("seed {seed}: clean sweep get({k}) failed: {e}"))
            .map(|v| v.to_vec());
        let poss = model.get(&k).cloned().unwrap_or_else(|| vec![None]);
        assert!(
            poss.contains(&got),
            "seed {seed}: final divergence on key {k}: cluster holds {got:?}, \
             admissible values are {poss:?} — an acknowledged write was lost \
             or an invalidated value survived"
        );
    }
    for s in &mut servers {
        s.shutdown();
    }
    Outcome {
        digest: injector.schedule_digest(),
        log,
        injected: injector.injected(),
    }
}

/// Wraps [`run_scenario`] so a failing seed lands in
/// `target/chaos/failing-seed.txt` for CI to pick up as an artifact.
fn run_chaos(name: &str, plan: FaultPlan, ops: usize, with_ticks: bool) -> Outcome {
    let seed = plan.seed;
    match catch_unwind(AssertUnwindSafe(|| run_scenario(plan, ops, with_ticks))) {
        Ok(out) => out,
        Err(e) => {
            let _ = std::fs::create_dir_all("target/chaos");
            let _ = std::fs::write(
                "target/chaos/failing-seed.txt",
                format!("scenario={name} seed={seed}\n"),
            );
            eprintln!("chaos scenario '{name}' FAILED — replay with seed {seed}");
            resume_unwind(e)
        }
    }
}

#[test]
fn chaos_dropped_frames_never_lose_acked_writes() {
    for seed in [11, 12, 13] {
        let out = run_chaos("drops", FaultPlan::drops(seed, 0.10), 140, true);
        assert!(out.injected > 0, "seed {seed}: drop plan never fired");
    }
}

#[test]
fn chaos_delayed_frames_respect_deadlines() {
    for seed in [21, 22, 23] {
        let out = run_chaos("delays", FaultPlan::delays(seed, 0.25, 1, 3), 140, true);
        assert!(out.injected > 0, "seed {seed}: delay plan never fired");
    }
}

#[test]
fn chaos_duplicate_and_reordered_delivery_is_idempotent() {
    for seed in [31, 32, 33] {
        let plan = FaultPlan::none(seed).with_duplicate(0.15).with_reorder(0.5);
        let out = run_chaos("dup-reorder", plan, 140, true);
        assert!(
            out.injected > 0,
            "seed {seed}: dup/reorder plan never fired"
        );
    }
}

#[test]
fn chaos_connection_resets_roll_back_cleanly() {
    for seed in [41, 42, 43] {
        let out = run_chaos("resets", FaultPlan::resets(seed, 0.08), 140, true);
        assert!(out.injected > 0, "seed {seed}: reset plan never fired");
    }
}

#[test]
fn chaos_all_fault_classes_at_once() {
    let plan = FaultPlan::drops(51, 0.05)
        .with_delay(0.10, 1, 2)
        .with_duplicate(0.05)
        .with_reorder(0.25)
        .with_reset(0.04);
    let out = run_chaos("mixed", plan, 160, true);
    assert!(out.injected > 0, "mixed plan never fired");
}

#[test]
fn chaos_same_seed_replays_byte_identical() {
    // No ticks: balancer epochs add no transport traffic of their own
    // here, and keeping every injector call on the driving thread makes
    // the call order — hence the schedule — provably deterministic.
    let plan = || {
        FaultPlan::drops(0xC0FFEE, 0.08)
            .with_reset(0.05)
            .with_reorder(0.3)
    };
    let a = run_chaos("replay-a", plan(), 120, false);
    let b = run_chaos("replay-b", plan(), 120, false);
    assert_eq!(
        a.digest, b.digest,
        "same seed must produce a byte-identical fault schedule"
    );
    assert_eq!(a.log, b.log, "same seed must produce identical verdicts");
    assert_eq!(a.injected, b.injected);
    assert!(a.injected > 0, "replay plan never fired");

    let c = run_chaos("replay-c", FaultPlan::drops(0xDECAF, 0.08), 120, false);
    assert_ne!(
        a.digest, c.digest,
        "different seeds must produce different schedules"
    );
}

/// Node-kill fault class: a server dies mid-run — its endpoint vanishes
/// and its heartbeats stop. The failure detector must walk it
/// `Suspect → Failed`, the survivors must inherit its cachelets and
/// promote any live shadow replicas they hold, and every write acked by
/// a home that survived must still read back exactly. Data homed on the
/// dead node may be lost (it is a cache, and the node took the only
/// authoritative copy with it) but must never come back stale.
fn node_kill_scenario(seed: u64) {
    let plan = FaultPlan::drops(seed, 0.05);
    let mut ring = ConsistentRing::new();
    for s in 0..3u16 {
        ring.add_worker(WorkerAddr::new(s, 0));
        ring.add_worker(WorkerAddr::new(s, 1));
    }
    let mapping = MappingTable::build(&ring, 4, 128);
    let coordinator = Arc::new(Coordinator::new(mapping.clone(), BalancerConfig::default()));
    let registry = InProcRegistry::new();
    let clock = ManualClock::new();
    let injector = FaultInjector::new(Arc::clone(&registry) as Arc<dyn Transport>, plan);
    let mut servers: Vec<Server> = (0..3u16)
        .map(|s| {
            Server::spawn_with_transport(
                ServerConfig::new(ServerId(s), 2, 32 << 20)
                    .cachelets_per_worker(4)
                    .membership(true),
                &mapping,
                &registry,
                Arc::clone(&injector) as Arc<dyn Transport>,
                Arc::clone(&coordinator),
                Arc::new(clock.clone()),
            )
        })
        .collect();
    let mut client = Client::builder(
        Arc::clone(&injector) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn CoordinatorLink>,
    )
    .build();

    // A few quiet rounds (well inside the suspect window) so every
    // server heartbeats and membership seeds from the mapping.
    for _ in 0..3 {
        clock.advance(500_000);
        let now = Clock::now_millis(&clock);
        for s in &mut servers {
            s.tick(now);
        }
    }

    // Seed the keyspace through the faulty transport; remember what was
    // acked. Unacked writes stay uncertain and are excluded from the
    // exact-readback sweep.
    let mut acked: HashMap<u8, Vec<u8>> = HashMap::new();
    for k in 0..KEYS as u8 {
        let v = format!("nk-{seed}-{k:03}").into_bytes();
        if client.set_opts(&key_of(k), &v, SetOptions::new()).is_ok() {
            acked.insert(k, v);
        }
    }

    let snap = coordinator.mapping_snapshot();
    // A dedicated victim key homed on the doomed server, acked, with
    // shadow copies handed to every survivor worker — whichever of them
    // inherits the cachelet must promote its copy.
    let victim_key: Vec<u8> = (0..10_000u32)
        .map(|i| format!("mb:victim-{i}").into_bytes())
        .find(|k| snap.route(k).expect("mapping is total").1.server == ServerId(2))
        .expect("some key routes to server 2");
    let victim_value = loop {
        let v = format!("nk-{seed}-victim").into_bytes();
        if client.set_opts(&victim_key, &v, SetOptions::new()).is_ok() {
            break v;
        }
    };
    for s in 0..2u16 {
        for w in 0..2u16 {
            let resp = registry
                .call(
                    WorkerAddr::new(s, w),
                    Request::ReplicaInstall {
                        key: victim_key.clone(),
                        value: victim_value.clone().into(),
                        lease_expiry_ms: 1_000_000_000,
                    },
                )
                .expect("clean transport");
            assert!(
                matches!(resp, Response::Stored),
                "seed {seed}: replica install refused: {resp:?}"
            );
        }
    }

    // Classify every key by its home at kill time: survivor-homed acked
    // writes must read back verbatim afterwards; dead-homed keys may be
    // lost with the node but must never resurrect stale.
    let dead_homed: Vec<u8> = (0..KEYS as u8)
        .filter(|k| snap.route(&key_of(*k)).expect("mapping is total").1.server == ServerId(2))
        .collect();

    // Kill server 2: endpoint gone, heartbeats stop.
    let mut killed = servers.pop().expect("three servers");
    killed.shutdown();
    let epoch_before = coordinator.cluster_epoch();

    // Survivors keep ticking; the detector walks the silent node
    // Suspect → Failed (3 s silence + 3 s dwell with default windows).
    let mut now = 0;
    for _ in 0..20 {
        clock.advance(500_000);
        now = Clock::now_millis(&clock);
        for s in &mut servers {
            s.tick(now);
        }
    }

    assert_eq!(
        coordinator.membership_view(now).state_of(ServerId(2)),
        Some(NodeState::Failed),
        "seed {seed}: killed server was never confirmed failed"
    );
    assert!(
        coordinator.cluster_epoch() > epoch_before,
        "seed {seed}: a confirmed failure must bump the cluster epoch"
    );
    assert!(
        coordinator
            .mapping_snapshot()
            .workers()
            .iter()
            .all(|w| w.server != ServerId(2)),
        "seed {seed}: mapping still routes to the dead server"
    );
    let promoted: u64 = servers
        .iter()
        .map(|s| s.metrics_snapshot().get(Counter::ReplicasPromoted))
        .sum();
    assert!(
        promoted > 0,
        "seed {seed}: no shadow replicas were promoted on failover"
    );

    // Clean sweep. The victim key must survive through its promoted
    // replica even though its home died holding the only primary copy.
    let mut checker = Client::builder(
        Arc::clone(&registry) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn CoordinatorLink>,
    )
    .build();
    assert_eq!(
        checker.get(&victim_key).expect("clean transport"),
        Some(victim_value.into()),
        "seed {seed}: replicated victim key must survive via promotion"
    );
    for (k, v) in &acked {
        let got = checker
            .get(&key_of(*k))
            .unwrap_or_else(|e| panic!("seed {seed}: clean get({k}) failed: {e}"));
        if dead_homed.contains(k) {
            assert!(
                got.is_none() || got.as_ref().map(|x| x.to_vec()).as_ref() == Some(v),
                "seed {seed}: key {k} died with its server but came back stale: {got:?}"
            );
        } else {
            assert_eq!(
                got.as_ref().map(|x| x.to_vec()).as_ref(),
                Some(v),
                "seed {seed}: acked write on a surviving server was lost (key {k})"
            );
        }
    }
    for s in &mut servers {
        s.shutdown();
    }
}

#[test]
fn chaos_node_kill_detects_failure_and_promotes_replicas() {
    let seed = 71u64;
    if let Err(e) = catch_unwind(AssertUnwindSafe(|| node_kill_scenario(seed))) {
        let _ = std::fs::create_dir_all("target/chaos");
        let _ = std::fs::write(
            "target/chaos/failing-seed.txt",
            format!("scenario=node-kill seed={seed}\n"),
        );
        eprintln!("chaos scenario 'node-kill' FAILED — replay with seed {seed}");
        resume_unwind(e);
    }
}

#[test]
fn chaos_counters_account_for_injected_faults() {
    let plan = FaultPlan::drops(61, 0.15);
    let seed = plan.seed;
    let mut ring = ConsistentRing::new();
    ring.add_worker(WorkerAddr::new(0, 0));
    let mapping = MappingTable::build(&ring, 4, 64);
    let coordinator = Arc::new(Coordinator::new(mapping.clone(), BalancerConfig::default()));
    let registry = InProcRegistry::new();
    let clock = ManualClock::new();
    let injector = FaultInjector::new(Arc::clone(&registry) as Arc<dyn Transport>, plan);
    let mut server = Server::spawn_with_transport(
        ServerConfig::new(ServerId(0), 1, 16 << 20).cachelets_per_worker(4),
        &mapping,
        &registry,
        Arc::clone(&injector) as Arc<dyn Transport>,
        Arc::clone(&coordinator),
        Arc::new(clock.clone()),
    );
    let mut client = Client::builder(
        Arc::clone(&injector) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn CoordinatorLink>,
    )
    .build();
    for i in 0..200u32 {
        let _ = client.set_opts(format!("k{i}").as_bytes(), b"v", SetOptions::new());
    }
    let injected = injector.injected();
    assert!(
        injected > 0,
        "seed {seed}: no faults at p=0.15 over 200 ops"
    );
    let snap = injector.metrics().snapshot();
    assert_eq!(
        snap.get(Counter::FaultsInjected),
        injected,
        "the FaultsInjected counter must match the schedule length"
    );
    assert!(
        client.stats().transport_retries > 0,
        "dropped frames must surface as client transport retries"
    );
    server.shutdown();
}

/// Tenant-isolation chaos class: a quiet tenant's acked writes must
/// survive a noisy tenant's flood even while frames drop, cachelets
/// migrate between servers mid-flood, and finally a whole node dies.
/// The isolation contract weakens exactly like the single-tenant loss
/// rules do — data homed on the dead node may vanish with it — but a
/// quiet-tenant key on a SURVIVING server must read back verbatim: no
/// amount of cross-tenant pressure, fault retry, or migration churn is
/// an excuse to evict it, and it must never come back stale.
fn tenant_chaos_scenario(seed: u64) {
    let plan = FaultPlan::drops(seed, 0.05);
    let quiet_t = TenantId(1);
    let flood_t = TenantId(2);
    // Per-unit quotas: the quiet tenant's footprint sits far below its
    // reserved floor; the flooder gets a budget it will overrun ~4×.
    let tenants = TenantDirectory::new()
        .with_tenant(quiet_t, TenantQuota::new(256 << 10, 1 << 20))
        .with_tenant(flood_t, TenantQuota::new(32 << 10, 128 << 10));

    let mut ring = ConsistentRing::new();
    for s in 0..3u16 {
        ring.add_worker(WorkerAddr::new(s, 0));
        ring.add_worker(WorkerAddr::new(s, 1));
    }
    let mapping = MappingTable::build(&ring, 4, 128);
    let coordinator = Arc::new(Coordinator::new(mapping.clone(), BalancerConfig::default()));
    let registry = InProcRegistry::new();
    let clock = ManualClock::new();
    let injector = FaultInjector::new(Arc::clone(&registry) as Arc<dyn Transport>, plan);
    let mut servers: Vec<Server> = (0..3u16)
        .map(|s| {
            Server::spawn_with_transport(
                ServerConfig::new(ServerId(s), 2, 32 << 20)
                    .cachelets_per_worker(4)
                    .membership(true)
                    .tenants(tenants.clone()),
                &mapping,
                &registry,
                Arc::clone(&injector) as Arc<dyn Transport>,
                Arc::clone(&coordinator),
                Arc::new(clock.clone()),
            )
        })
        .collect();
    // Wall-clock-free clients, for the same replayability reason as
    // `run_scenario`: retry counts and resync decisions must not shift
    // with CPU contention, so a failing seed reproduces.
    let mut quiet = Client::builder(
        Arc::clone(&injector) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn CoordinatorLink>,
    )
    .tenant(quiet_t)
    .op_budget(Duration::from_secs(3600))
    .poll_backoff(Duration::ZERO, Duration::ZERO)
    .build();
    let mut flood = Client::builder(
        Arc::clone(&injector) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn CoordinatorLink>,
    )
    .tenant(flood_t)
    .op_budget(Duration::from_secs(3600))
    .poll_backoff(Duration::ZERO, Duration::ZERO)
    .build();

    // Quiet rounds so membership seeds before the abuse starts.
    for _ in 0..3 {
        clock.advance(500_000);
        let now = Clock::now_millis(&clock);
        for s in &mut servers {
            s.tick(now);
        }
    }

    // The quiet tenant writes its working set through the faulty
    // transport; only acked writes join the must-survive ledger.
    let mut acked: HashMap<u8, Vec<u8>> = HashMap::new();
    for k in 0..KEYS as u8 {
        let v = format!("tq-{seed}-{k:03}").into_bytes();
        if quiet.set_opts(&key_of(k), &v, SetOptions::new()).is_ok() {
            acked.insert(k, v);
        }
    }

    // Flood bursts interleaved with forced migrations, all under the
    // same fault plan. Migration targets rotate over every cachelet id
    // so some of them carry quiet-tenant data.
    let big = vec![0xEEu8; 2048];
    let mut rng = SplitMix64::new(seed ^ 0x007E_4A17);
    for round in 0..6u32 {
        for i in 0..250u32 {
            let _ = flood.set_opts(
                format!("fl:{round:02}:{i:04}").as_bytes(),
                &big,
                SetOptions::new(),
            );
        }
        let snap = coordinator.mapping_snapshot();
        let c = CacheletId(rng.next_below(snap.num_cachelets() as u64) as u32);
        let Some(owner) = snap.worker_of_cachelet(c) else {
            continue;
        };
        let dest_server = (owner.server.0 + 1) % 3;
        let m = Migration {
            cachelet: c,
            from: owner,
            to: WorkerAddr::new(dest_server, rng.next_below(2) as u16),
            load: 0.0,
        };
        coordinator.report_local_move(&m);
        let _ = servers[owner.server.0 as usize].migrate_out(&m);
    }

    // Classify the quiet keys by their home BEFORE the kill, then take
    // server 2 down and let the detector confirm it.
    let snap = coordinator.mapping_snapshot();
    let dead_homed: Vec<u8> = (0..KEYS as u8)
        .filter(|k| snap.route(&key_of(*k)).expect("mapping is total").1.server == ServerId(2))
        .collect();
    let mut killed = servers.pop().expect("three servers");
    killed.shutdown();
    let mut now = 0;
    for _ in 0..20 {
        clock.advance(500_000);
        now = Clock::now_millis(&clock);
        for s in &mut servers {
            s.tick(now);
        }
    }
    assert_eq!(
        coordinator.membership_view(now).state_of(ServerId(2)),
        Some(NodeState::Failed),
        "seed {seed}: killed server was never confirmed failed"
    );

    // One more flood burst against the survivors: the shrunken cluster
    // must still not let the flooder lean on the quiet tenant.
    for i in 0..400u32 {
        let _ = flood.set_opts(
            format!("fl:post:{i:04}").as_bytes(),
            &big,
            SetOptions::new(),
        );
    }

    // Clean sweep: quiet keys on survivors read back verbatim; keys
    // that died with their home may be gone but never stale. And the
    // per-tenant books on the survivors show the flood paid for its
    // own churn while the quiet tenant was never evicted.
    let mut checker = Client::builder(
        Arc::clone(&registry) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn CoordinatorLink>,
    )
    .tenant(quiet_t)
    .build();
    for (k, v) in &acked {
        let got = checker
            .get(&key_of(*k))
            .unwrap_or_else(|e| panic!("seed {seed}: clean get({k}) failed: {e}"));
        if dead_homed.contains(k) {
            assert!(
                got.is_none() || got.as_ref().map(|x| x.to_vec()).as_ref() == Some(v),
                "seed {seed}: quiet key {k} died with its server but came back stale: {got:?}"
            );
        } else {
            assert_eq!(
                got.as_ref().map(|x| x.to_vec()).as_ref(),
                Some(v),
                "seed {seed}: quiet tenant's acked write on a surviving server was lost \
                 (key {k}) — cross-tenant eviction or migration loss"
            );
        }
    }
    let reports = checker.server_stats(false).expect("stats scrape");
    let mut quiet_evictions = 0u64;
    let mut flood_evictions = 0u64;
    for r in &reports {
        for t in &r.load.tenants {
            if t.tenant == quiet_t {
                quiet_evictions += t.evictions;
            } else if t.tenant == flood_t {
                flood_evictions += t.evictions;
            }
        }
    }
    assert_eq!(
        quiet_evictions, 0,
        "seed {seed}: the quiet tenant must never be evicted"
    );
    assert!(
        flood_evictions > 0,
        "seed {seed}: the flooder must have churned through its own budget"
    );
    for s in &mut servers {
        s.shutdown();
    }
}

#[test]
fn chaos_tenant_isolation_survives_faults_migrations_and_node_kill() {
    for seed in [81, 82] {
        if let Err(e) = catch_unwind(AssertUnwindSafe(|| tenant_chaos_scenario(seed))) {
            let _ = std::fs::create_dir_all("target/chaos");
            let _ = std::fs::write(
                "target/chaos/failing-seed.txt",
                format!("scenario=tenant-isolation seed={seed}\n"),
            );
            eprintln!("chaos scenario 'tenant-isolation' FAILED — replay with seed {seed}");
            resume_unwind(e);
        }
    }
}
