//! TCP transport under failure: connections dying mid-`Batch`, and the
//! seeded [`FaultInjector`] composed over the real TCP stack — the
//! injector is transport-agnostic, so the same `FaultPlan` that drives
//! the in-proc chaos suite drives a socket-backed cluster here.

use mbal::balancer::coordinator::Coordinator;
use mbal::balancer::BalancerConfig;
use mbal::client::{Client, SetOptions};
use mbal::core::clock::RealClock;
use mbal::core::types::{CacheletId, ServerId, WorkerAddr};
use mbal::proto::codec::{self, opcode_of, HEADER_LEN};
use mbal::proto::{Request, Response};
use mbal::ring::{ConsistentRing, MappingTable};
use mbal::server::tcp::{serve_tcp, TcpTransport};
use mbal::server::{
    FaultInjector, FaultPlan, InProcRegistry, Server, ServerConfig, Transport, TransportError,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reads one length-framed protocol frame (test-side peer).
fn read_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header).ok()?;
    let total = codec::frame_len(&header)?;
    let mut frame = vec![0u8; total];
    frame[..HEADER_LEN].copy_from_slice(&header);
    stream.read_exact(&mut frame[HEADER_LEN..]).ok()?;
    Some(frame)
}

/// A scripted worker endpoint: the first accepted connection answers
/// only `answer_first` sub-requests of its batch and then closes the
/// stream mid-batch; every later connection serves batches fully and
/// keeps the connection open. Returns the socket address and an accept
/// counter.
fn scripted_endpoint(answer_first: usize) -> (std::net::SocketAddr, Arc<AtomicUsize>) {
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let sock = listener.local_addr().expect("addr");
    let accepts = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&accepts);
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut conn) = conn else { return };
            let nth = counter.fetch_add(1, Ordering::SeqCst);
            std::thread::spawn(move || loop {
                let Some(frame) = read_frame(&mut conn) else {
                    return;
                };
                let subs = codec::decode_batch_request(&frame).expect("batch frame");
                let keep = if nth == 0 { answer_first } else { subs.len() };
                for (req, opaque) in subs.into_iter().take(keep) {
                    let bytes = codec::encode_response(&Response::Stored, opcode_of(&req), opaque)
                        .expect("encode");
                    conn.write_all(&bytes).expect("write");
                }
                if nth == 0 {
                    // Close mid-batch: the remaining responses never come.
                    return;
                }
            });
        }
    });
    (sock, accepts)
}

#[test]
fn tcp_connection_dying_mid_batch_degrades_to_per_op_errors() {
    let (sock, accepts) = scripted_endpoint(2);
    let worker = WorkerAddr::new(0, 0);
    let transport = TcpTransport::new([(worker, sock)].into_iter().collect());
    let reqs: Vec<Request> = (0..6)
        .map(|i| Request::Set {
            cachelet: CacheletId(0),
            key: format!("k{i}").into_bytes(),
            value: b"v".to_vec().into(),
            expiry_ms: 0,
        })
        .collect();

    let started = Instant::now();
    let out = transport.call_many(worker, reqs.clone(), Duration::from_secs(5));
    let elapsed = started.elapsed();

    // Per-operation outcomes, no panic, and a prompt return — the two
    // answered slots succeed, the rest fail with Broken, and nothing
    // waits out the full deadline.
    assert_eq!(out.len(), 6);
    assert_eq!(out[0], Ok(Response::Stored));
    assert_eq!(out[1], Ok(Response::Stored));
    for r in &out[2..] {
        assert!(matches!(r, Err(TransportError::Broken(_))), "got {r:?}");
    }
    assert!(
        elapsed < Duration::from_secs(4),
        "mid-batch death must not hang until the deadline: took {elapsed:?}"
    );

    // The poisoned connection was discarded, not pooled: the next batch
    // dials a fresh connection (second accept) and completes fully.
    let out2 = transport.call_many(worker, reqs, Duration::from_secs(5));
    assert!(out2.iter().all(|r| r == &Ok(Response::Stored)), "{out2:?}");
    assert_eq!(
        accepts.load(Ordering::SeqCst),
        2,
        "retry after a mid-batch death must use a fresh connection"
    );
}

fn build_cluster(
    n_servers: u16,
    workers: u16,
) -> (Vec<Server>, Arc<Coordinator>, Arc<TcpTransport>) {
    let mut ring = ConsistentRing::new();
    for s in 0..n_servers {
        for w in 0..workers {
            ring.add_worker(WorkerAddr::new(s, w));
        }
    }
    let mapping = MappingTable::build(&ring, 4, 256);
    let coordinator = Arc::new(Coordinator::new(mapping.clone(), BalancerConfig::default()));
    let registry = InProcRegistry::new();
    let mut routes = HashMap::new();
    let servers: Vec<Server> = (0..n_servers)
        .map(|s| {
            let server = Server::spawn(
                ServerConfig::new(ServerId(s), workers, 64 << 20).cachelets_per_worker(4),
                &mapping,
                &registry,
                Arc::clone(&coordinator),
                Arc::new(RealClock::new()),
            );
            let bound = serve_tcp(&server.worker_mailboxes(), "127.0.0.1", 0).expect("bind");
            routes.extend(bound);
            server
        })
        .collect();
    (servers, coordinator, TcpTransport::new(routes))
}

#[test]
fn fault_injector_composes_over_tcp() {
    let (mut servers, coordinator, tcp) = build_cluster(1, 2);
    // Drop the first three frames, then behave: the client's budgeted
    // retries must ride through without any application-level error.
    let plan = FaultPlan::drops(0xface, 1.0).with_max_faults(3);
    let injector = FaultInjector::new(Arc::clone(&tcp) as Arc<dyn Transport>, plan);
    let mut client = Client::builder(
        Arc::clone(&injector) as Arc<dyn Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    )
    .build();

    client
        .set_opts(b"tf:key", b"value", SetOptions::new())
        .expect("set rides out drops");
    assert_eq!(
        client.get(b"tf:key").expect("get over tcp"),
        Some(b"value".to_vec().into())
    );
    assert_eq!(injector.injected(), 3, "exactly the budgeted drops fired");
    assert_eq!(
        client.stats().transport_retries,
        3,
        "each dropped frame must surface as one budgeted retry"
    );

    // The schedule is replayable from the printed seed even over TCP.
    assert_eq!(injector.seed(), 0xface);
    assert_eq!(injector.schedule().len(), 3);

    for s in &mut servers {
        s.shutdown();
    }
}

#[test]
fn dead_endpoint_fails_fast_over_tcp() {
    let (mut servers, _coordinator, tcp) = build_cluster(1, 2);
    let dead = WorkerAddr::new(0, 1);
    let plan = FaultPlan::none(1).with_dead_endpoint(dead);
    let injector = FaultInjector::new(Arc::clone(&tcp) as Arc<dyn Transport>, plan);

    let started = Instant::now();
    let res = injector.call(dead, Request::Stats { reset: false });
    assert_eq!(res, Err(TransportError::Unreachable(dead)));
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "a dead endpoint must short-circuit, not burn the deadline"
    );
    // The live sibling still answers through the same injector.
    let ok = injector.call(WorkerAddr::new(0, 0), Request::Stats { reset: false });
    assert!(ok.is_ok(), "live endpoint failed: {ok:?}");

    for s in &mut servers {
        s.shutdown();
    }
}
