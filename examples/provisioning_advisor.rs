//! Provisioning advisor: the §1 cost-of-performance study as a tool.
//!
//! Given a target throughput, ranks EC2 instance configurations by
//! monthly cost using the calibrated Figure 1 model — the paper's
//! "rules-of-thumb that users can leverage for provisioning their
//! memory caching tier".
//!
//! ```text
//! cargo run --release --example provisioning_advisor -- 800
//! ```
//! (argument: target KQPS, default 800)

use mbal::cluster::ec2::{cluster_kqps, kqps_per_dollar};
use mbal::cluster::INSTANCES;

fn main() {
    let target_kqps: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(800.0);

    println!("target: {target_kqps:.0} KQPS (95% GET, small objects)\n");
    println!(
        "{:<12} {:>6} {:>12} {:>10} {:>12} {:>10}",
        "instance", "nodes", "agg KQPS", "$/hour", "$/month", "KQPS/$"
    );

    let mut plans = Vec::new();
    for inst in &INSTANCES {
        // Smallest cluster of this type that meets the target.
        let mut chosen = None;
        for n in 1..=64u32 {
            if cluster_kqps(inst, n) >= target_kqps {
                chosen = Some(n);
                break;
            }
        }
        let Some(n) = chosen else {
            println!(
                "{:<12} {:>6}",
                inst.name, "— cannot reach target within 64 nodes"
            );
            continue;
        };
        let hourly = inst.cost_per_hour * n as f64;
        plans.push((inst.name, n, cluster_kqps(inst, n), hourly));
    }
    plans.sort_by(|a, b| a.3.partial_cmp(&b.3).expect("finite cost"));
    for (name, n, kqps, hourly) in &plans {
        let inst = INSTANCES.iter().find(|i| i.name == *name).expect("known");
        println!(
            "{name:<12} {n:>6} {kqps:>12.0} {hourly:>10.2} {:>12.0} {:>10.0}",
            hourly * 24.0 * 30.0,
            kqps_per_dollar(inst, *n),
        );
    }
    if let Some((name, n, _, _)) = plans.first() {
        println!(
            "\nrecommendation: {n} × {name} — the paper's conclusion holds: moderate \
             clusters of semi-powerful instances maximize bang-for-the-buck (§1)."
        );
    }
}
