//! Photo-tagging scenario (Table 4, WorkloadB): a read-mostly workload
//! where a celebrity photo goes viral — 95% of traffic concentrates on
//! 5% of the objects, with a handful of extreme hot keys.
//!
//! Demonstrates Phase 1 (key replication) end to end on real servers:
//! the hot-key tracker flags the viral keys, the balancer installs
//! replicas on shadow servers, GET responses piggyback the replica
//! locations, and the client spreads its reads.
//!
//! ```text
//! cargo run --release --example photo_tagging
//! ```

use mbal::balancer::coordinator::Coordinator;
use mbal::balancer::BalancerConfig;
use mbal::client::{Client, SetOptions};
use mbal::core::clock::{Clock, ManualClock};
use mbal::core::types::{ServerId, WorkerAddr};
use mbal::ring::{ConsistentRing, MappingTable};
use mbal::server::{InProcRegistry, Server, ServerConfig};
use std::sync::Arc;

fn main() {
    let mut ring = ConsistentRing::new();
    for s in 0..4u16 {
        for w in 0..2u16 {
            ring.add_worker(WorkerAddr::new(s, w));
        }
    }
    let mapping = MappingTable::build(&ring, 8, 512);
    let balancer = BalancerConfig::aggressive();
    let coordinator = Arc::new(Coordinator::new(mapping.clone(), balancer.clone()));
    let registry = InProcRegistry::new();
    let clock = ManualClock::new();
    let mut servers: Vec<Server> = (0..4u16)
        .map(|s| {
            Server::spawn(
                ServerConfig::new(ServerId(s), 2, 128 << 20).balancer(balancer.clone()),
                &mapping,
                &registry,
                Arc::clone(&coordinator),
                Arc::new(clock.clone()),
            )
        })
        .collect();
    let mut client = Client::builder(
        Arc::clone(&registry) as Arc<dyn mbal::server::Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    )
    .build();

    // Load the photo-metadata working set.
    for i in 0..2_000u32 {
        client
            .set_opts(
                format!("photo:{i:06}").as_bytes(),
                &[0xAB; 64],
                SetOptions::new(),
            )
            .expect("load");
    }
    println!("loaded 2000 photos");

    // The viral phase: three photos soak up most of the read traffic.
    let viral = [
        b"photo:000042".to_vec(),
        b"photo:000907".to_vec(),
        b"photo:001337".to_vec(),
    ];
    for round in 0..6 {
        for _ in 0..2_000 {
            for key in &viral {
                let _ = client.get(key).expect("get");
            }
            // Background reads keep the rest of the set warm.
            let _ = client.get(b"photo:000001").expect("get");
        }
        // Advance time one epoch and run every server's balancer.
        clock.advance(200_000);
        let now = clock.now_millis();
        for s in &mut servers {
            s.tick(now);
        }
        println!(
            "round {round}: client knows replicas for {} keys, replica reads so far: {}",
            client.replicated_keys(),
            client.stats().replica_reads
        );
    }

    let stats = client.stats();
    assert!(
        stats.replica_reads > 0,
        "the viral keys never got replicated — balancer misconfigured?"
    );
    println!(
        "done: {} gets, {} served by replicas ({:.1}%)",
        stats.gets,
        stats.replica_reads,
        100.0 * stats.replica_reads as f64 / stats.gets as f64
    );

    // Writes still flow through the home worker and invalidate/update
    // replicas (synchronous mode → no stale reads).
    client
        .set_opts(&viral[0], b"updated-tags", SetOptions::new())
        .expect("set");
    for _ in 0..4 {
        let v = client.get(&viral[0]).expect("get").expect("hit");
        assert_eq!(v, b"updated-tags", "stale replica read");
    }
    println!("write-after-replicate stayed consistent across replicas");

    for s in &mut servers {
        s.shutdown();
    }
}
