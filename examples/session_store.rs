//! Session-store scenario (Table 4, WorkloadC): a 50/50 read/update
//! workload recording recent user actions. Write-heavy hotspots cannot
//! be fixed by replication (every write would fan out to replicas), so
//! the balancer reaches for cachelet migration — first server-local
//! (Phase 2), then coordinated across servers (Phase 3).
//!
//! This example skews all traffic onto the cachelets of one worker and
//! watches the balancer drain it.
//!
//! ```text
//! cargo run --release --example session_store
//! ```

use mbal::balancer::coordinator::Coordinator;
use mbal::balancer::{BalancerConfig, Phase};
use mbal::client::{Client, SetOptions};
use mbal::core::clock::{Clock, ManualClock};
use mbal::core::types::{ServerId, WorkerAddr};
use mbal::ring::{ConsistentRing, MappingTable};
use mbal::server::{InProcRegistry, Server, ServerConfig};
use std::sync::Arc;

fn main() {
    let mut ring = ConsistentRing::new();
    for s in 0..2u16 {
        for w in 0..4u16 {
            ring.add_worker(WorkerAddr::new(s, w));
        }
    }
    let mapping = MappingTable::build(&ring, 4, 256);
    let balancer = BalancerConfig {
        // React fast and treat modest skew as imbalance, so the demo
        // converges in a handful of epochs.
        imb_thresh: 0.2,
        ..BalancerConfig::aggressive()
    };
    let coordinator = Arc::new(Coordinator::new(mapping.clone(), balancer.clone()));
    let registry = InProcRegistry::new();
    let clock = ManualClock::new();
    let mut servers: Vec<Server> = (0..2u16)
        .map(|s| {
            Server::spawn(
                ServerConfig::new(ServerId(s), 4, 128 << 20)
                    .balancer(balancer.clone())
                    // Low permissible load so the demo's traffic counts
                    // as overload.
                    .worker_capacity(5_000.0),
                &mapping,
                &registry,
                Arc::clone(&coordinator),
                Arc::new(clock.clone()),
            )
        })
        .collect();
    let mut client = Client::builder(
        Arc::clone(&registry) as Arc<dyn mbal::server::Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    )
    .build();

    // Build a set of session keys that all live on server 0, worker 0 —
    // a worst-case placement for a write-heavy tenant.
    let hot_worker = WorkerAddr::new(0, 0);
    let mut hot_keys = Vec::new();
    let mut i = 0u64;
    while hot_keys.len() < 64 {
        let key = format!("session:{i:08}");
        if mapping.route(key.as_bytes()).map(|(_, w)| w) == Some(hot_worker) {
            hot_keys.push(key);
        }
        i += 1;
    }
    for k in &hot_keys {
        client
            .set_opts(
                k.as_bytes(),
                b"{\"last_action\":\"login\"}",
                SetOptions::new(),
            )
            .expect("set");
    }
    println!(
        "placed {} session keys on {hot_worker}; hammering with 50/50 read/update",
        hot_keys.len()
    );

    let before = coordinator.mapping_snapshot();
    let owned_before = before.cachelets_of_worker(hot_worker).len();
    for epoch in 0..8 {
        for round in 0..400 {
            for (j, k) in hot_keys.iter().enumerate() {
                if (round + j) % 2 == 0 {
                    let _ = client.get(k.as_bytes()).expect("get");
                } else {
                    client
                        .set_opts(
                            k.as_bytes(),
                            b"{\"last_action\":\"scroll\"}",
                            SetOptions::new(),
                        )
                        .expect("set");
                }
            }
        }
        clock.advance(200_000);
        let now = clock.now_millis();
        let phase = servers[0].tick(now);
        servers[1].tick(now);
        let owned_now = coordinator
            .mapping_snapshot()
            .cachelets_of_worker(hot_worker)
            .len();
        println!(
            "epoch {epoch}: server0 phase {phase:?}; hot worker owns {owned_now} cachelets (was {owned_before})"
        );
        if matches!(phase, Phase::LocalMigration | Phase::CoordinatedMigration)
            && owned_now < owned_before
        {
            break;
        }
    }

    let after = coordinator.mapping_snapshot();
    let owned_after = after.cachelets_of_worker(hot_worker).len();
    assert!(
        owned_after < owned_before,
        "balancer never migrated cachelets off the hot worker \
         ({owned_before} -> {owned_after})"
    );
    println!("cachelets migrated off the hot worker: {owned_before} -> {owned_after}");

    // Every session must still be readable after migration (the stale
    // client follows Moved redirects / coordinator deltas).
    for k in &hot_keys {
        assert!(
            client.get(k.as_bytes()).expect("get").is_some(),
            "lost session {k}"
        );
    }
    println!("all {} sessions intact after migration", hot_keys.len());
    println!(
        "balance events so far (server 0): {} entries",
        servers[0].events().len()
    );

    for s in &mut servers {
        s.shutdown();
    }
}
