//! Quickstart: stand up a 3-server MBal cluster in-process, connect a
//! client, and do cache things.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mbal::balancer::coordinator::Coordinator;
use mbal::balancer::BalancerConfig;
use mbal::client::{Client, SetOptions};
use mbal::core::clock::RealClock;
use mbal::core::types::{ServerId, WorkerAddr};
use mbal::ring::{ConsistentRing, MappingTable};
use mbal::server::{InProcRegistry, Server, ServerConfig};
use std::sync::Arc;

fn main() {
    // 1. Describe the cluster: 3 servers × 2 worker threads. Each worker
    //    gets its own transport endpoint; clients route to workers
    //    directly (no dispatcher).
    let mut ring = ConsistentRing::new();
    for s in 0..3u16 {
        for w in 0..2u16 {
            ring.add_worker(WorkerAddr::new(s, w));
        }
    }
    // 16 cachelets per worker, 1024 virtual nodes over the key space.
    let mapping = MappingTable::build(&ring, 16, 1_024);

    // 2. The coordinator owns the authoritative mapping and serves
    //    Phase 3 planning; it is idle in normal operation.
    let coordinator = Arc::new(Coordinator::new(mapping.clone(), BalancerConfig::default()));

    // 3. Spawn the servers. The in-proc registry is the transport; swap
    //    in `mbal::server::tcp` for real sockets.
    let registry = InProcRegistry::new();
    let clock = Arc::new(RealClock::new());
    let mut servers: Vec<Server> = (0..3u16)
        .map(|s| {
            Server::spawn(
                ServerConfig::new(ServerId(s), 2, 256 << 20),
                &mapping,
                &registry,
                Arc::clone(&coordinator),
                clock.clone(),
            )
        })
        .collect();

    // 4. A client: fetches the mapping from the coordinator, routes
    //    every request straight to the owning worker.
    let mut client = Client::builder(
        Arc::clone(&registry) as Arc<dyn mbal::server::Transport>,
        Arc::clone(&coordinator) as Arc<dyn mbal::client::CoordinatorLink>,
    )
    .build();

    client
        .set_opts(b"user:1001", b"alice", SetOptions::new())
        .expect("set");
    client
        .set_opts(b"user:1002", b"bob", SetOptions::new())
        .expect("set");
    let v = client.get(b"user:1001").expect("get").expect("hit");
    println!("user:1001 -> {}", String::from_utf8_lossy(&v));

    // Batched reads group keys by owning worker into MultiGET requests.
    let keys = vec![
        b"user:1001".to_vec(),
        b"user:1002".to_vec(),
        b"nope".to_vec(),
    ];
    let got = client.multi_get(&keys).expect("multi_get");
    println!(
        "multi_get hits: {:?}",
        got.iter().map(|v| v.is_some()).collect::<Vec<_>>()
    );

    assert!(client.delete(b"user:1002").expect("delete"));
    assert_eq!(client.get(b"user:1002").expect("get"), None);

    // 5. Tick the balancer once (servers usually run this on a timer via
    //    `Server::start_balance_thread`).
    for s in &mut servers {
        let phase = s.tick(clock.now_millis());
        println!("server {:?} balancer phase: {phase:?}", s.id());
    }
    println!("client stats: {:?}", client.stats());

    for s in &mut servers {
        s.shutdown();
    }
}

use mbal::core::clock::Clock;
