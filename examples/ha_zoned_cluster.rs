//! High-availability, zone-aware deployment: the two extensions the
//! paper flags as future work, working together —
//!
//! 1. a [`ReplicatedCoordinator`] (primary + standby) that survives a
//!    coordinator failure without losing the mapping, and
//! 2. zone-aware Phase 3 planning that migrates cachelets rack-first.
//!
//! ```text
//! cargo run --release --example ha_zoned_cluster
//! ```

use mbal::balancer::plan::Migration;
use mbal::balancer::replicated::CoordinatorService;
use mbal::balancer::topology::{plan_coordinated_zoned, Topology, ZonedOutcome};
use mbal::balancer::{BalancerConfig, ReplicatedCoordinator};
use mbal::client::{Client, SetOptions};
use mbal::cluster::sim::{PhaseSet, SimConfig};
use mbal::cluster::Simulation;
use mbal::core::clock::RealClock;
use mbal::core::types::{ServerId, WorkerAddr};
use mbal::ring::{ConsistentRing, MappingTable};
use mbal::server::{InProcRegistry, Server, ServerConfig, Transport};
use mbal::workload::ycsb::Popularity;
use mbal::workload::WorkloadSpec;
use std::sync::Arc;

fn main() {
    // --- Part 1: live cluster with a replicated coordinator -------------
    let mut ring = ConsistentRing::new();
    for s in 0..4u16 {
        ring.add_worker(WorkerAddr::new(s, 0));
        ring.add_worker(WorkerAddr::new(s, 1));
    }
    let mapping = MappingTable::build(&ring, 8, 512);
    let group = Arc::new(ReplicatedCoordinator::new(
        mapping.clone(),
        BalancerConfig::default(),
        2,
    ));
    let registry = InProcRegistry::new();
    let mut servers: Vec<Server> = (0..4u16)
        .map(|s| {
            Server::spawn(
                ServerConfig::new(ServerId(s), 2, 128 << 20),
                &mapping,
                &registry,
                Arc::clone(&group),
                Arc::new(RealClock::new()),
            )
        })
        .collect();
    let mut client = Client::builder(
        Arc::clone(&registry) as Arc<dyn Transport>,
        Arc::clone(&group) as Arc<dyn mbal::client::CoordinatorLink>,
    )
    .build();
    for i in 0..1_000u32 {
        client
            .set_opts(
                format!("obj:{i}").as_bytes(),
                &i.to_le_bytes(),
                SetOptions::new(),
            )
            .expect("set");
    }
    println!("loaded 1000 objects across 4 servers (2 zones)");

    // Force a migration, then kill the primary coordinator.
    let snap = group.mapping_snapshot();
    let victim = snap.cachelets_of_worker(WorkerAddr::new(0, 0))[0];
    let m = Migration {
        cachelet: victim,
        from: WorkerAddr::new(0, 0),
        to: WorkerAddr::new(1, 0),
        load: 0.0,
    };
    group.report_local_move(&m);
    servers[0].migrate_out(&m);
    println!(
        "migrated cachelet {victim} to server 1; mapping v{}",
        group.mapping_version()
    );
    let promoted = group.fail_over();
    println!("primary coordinator failed; standby #{promoted} promoted");
    group.assert_in_sync();
    let mut hits = 0;
    for i in 0..1_000u32 {
        if client
            .get(format!("obj:{i}").as_bytes())
            .expect("get")
            .is_some()
        {
            hits += 1;
        }
    }
    println!("post-failover sweep: {hits}/1000 objects intact");
    assert_eq!(hits, 1_000);
    for s in &mut servers {
        s.shutdown();
    }

    // --- Part 2: zone-aware planning, standalone and in simulation ------
    let topo = Topology::round_robin(4, 2);
    println!(
        "\ntopology: server->zone = {:?}",
        (0..4u16)
            .map(|s| (s, topo.zone_of(ServerId(s))))
            .collect::<Vec<_>>()
    );
    // A synthetic imbalance: planning stays intra-zone when possible.
    use mbal::balancer::phase3::ClusterView;
    use mbal::balancer::plan::WorkerLoad;
    use mbal::core::stats::CacheletLoad;
    let mk = |server: u16, loads: &[f64]| WorkerLoad {
        addr: WorkerAddr::new(server, 0),
        cachelets: loads
            .iter()
            .enumerate()
            .map(|(i, &l)| CacheletLoad {
                cachelet: mbal::core::types::CacheletId(server as u32 * 100 + i as u32),
                load: l,
                mem_bytes: 1 << 10,
                read_ratio: 0.9,
            })
            .collect(),
        load_capacity: 100.0,
        mem_capacity: 1 << 20,
        metrics: Default::default(),
        tenants: vec![],
    };
    let view = ClusterView {
        servers: vec![
            (ServerId(0), vec![mk(0, &[40.0, 40.0, 40.0])]), // hot, zone 0
            (ServerId(1), vec![mk(1, &[2.0])]),              // cold, zone 1
            (ServerId(2), vec![mk(2, &[8.0])]),              // cold, zone 0
            (ServerId(3), vec![mk(3, &[2.0])]),              // cold, zone 1
        ],
    };
    match plan_coordinated_zoned(
        &view,
        WorkerAddr::new(0, 0),
        &topo,
        &BalancerConfig::default(),
    ) {
        ZonedOutcome::IntraZone(plan) => {
            println!(
                "hierarchical planner placed {} cachelets, all inside zone 0 (server 2)",
                plan.len()
            );
        }
        other => println!("unexpected planning outcome: {other:?}"),
    }

    // And at cluster scale in the simulator: count cross-zone transfers.
    for (label, zone_planning) in [("flat", false), ("hierarchical", true)] {
        let cfg = SimConfig {
            servers: 8,
            workers_per_server: 2,
            clients: 10,
            concurrency: 8,
            epoch_ms: 250,
            phases: PhaseSet::only_p3(),
            zones: 4,
            zone_planning,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(cfg);
        let spec = WorkloadSpec {
            records: 100_000,
            read_fraction: 0.95,
            popularity: Popularity::Zipfian { theta: 0.99 },
            key_len: 24,
            value_len: 64,
            ttl_range_ms: (0, 0),
        };
        let r = sim.run(&[(spec, 4_000)]);
        let (intra, cross) = sim.zone_migration_counts();
        println!(
            "{label:>13} planner: {:.0} KQPS, migrations intra/cross-zone = {intra}/{cross}",
            r.throughput_kqps()
        );
    }
}
