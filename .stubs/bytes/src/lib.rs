//! Offline stand-in for `bytes`: the `Buf`/`BufMut` trait surface the
//! wire codec uses, implemented for `&[u8]` and `Vec<u8>` with the same
//! big-endian defaults and advancing-cursor semantics as upstream.
//!
//! Like upstream, the fixed-width getters panic when the buffer holds
//! fewer bytes than requested — codec code guards with `remaining()`.

pub type Bytes = Vec<u8>;
pub type BytesMut = Vec<u8>;

pub trait Buf {
    fn remaining(&self) -> usize;

    fn advance(&mut self, cnt: usize);

    fn chunk(&self) -> &[u8];

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        dest.copy_from_slice(&self.chunk()[..dest.len()]);
        self.advance(dest.len());
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.chunk()[..len].to_vec();
        self.advance(len);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}
