//! Offline stand-in for `bytes`: a reference-counted, cheaply cloneable
//! byte container with the slicing API the zero-copy value path relies
//! on, plus the `Buf`/`BufMut` trait surface the wire codec uses,
//! implemented with the same big-endian defaults and advancing-cursor
//! semantics as upstream.
//!
//! [`Bytes`] is an `Arc<[u8]>` plus an `(offset, len)` window: `clone`
//! bumps a refcount, `slice` narrows the window, and no operation copies
//! payload bytes. Pointer identity (`as_ptr`) is therefore preserved
//! across clones and slices, which the engine→writev zero-copy tests
//! assert on.
//!
//! Like upstream, the fixed-width getters panic when the buffer holds
//! fewer bytes than requested — codec code guards with `remaining()`.

use std::borrow::Borrow;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, reference-counted slice of memory.
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::from_vec(Vec::new())
    }

    /// Creates `Bytes` from a static slice (copies once into the shared
    /// allocation; upstream borrows, but the observable API matches).
    pub fn from_static(s: &'static [u8]) -> Self {
        Self::copy_from_slice(s)
    }

    /// Copies `s` into a fresh shared allocation.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Self::from_vec(s.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let len = v.len();
        Self {
            data: Arc::from(v.into_boxed_slice()),
            off: 0,
            len,
        }
    }

    /// Number of visible bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a slice of self for the provided range — a refcount bump
    /// and window arithmetic, no copy.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "range {start}..{end} out of bounds for Bytes of length {}",
            self.len
        );
        Self {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the
    /// rest. No copy.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len, "split_to({at}) past length {}", self.len);
        let head = self.slice(..at);
        self.off += at;
        self.len -= at;
        head
    }

    /// Splits off and returns the bytes from `at` onward; `self` keeps
    /// the prefix. No copy.
    pub fn split_off(&mut self, at: usize) -> Self {
        assert!(at <= self.len, "split_off({at}) past length {}", self.len);
        let tail = self.slice(at..);
        self.len = at;
        tail
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Bytes {
    fn clone(&self) -> Self {
        Self {
            data: Arc::clone(&self.data),
            off: self.off,
            len: self.len,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        let len = b.len();
        Self {
            data: Arc::from(b),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from_vec(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.as_slice().to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Self::from_vec(iter.into_iter().collect())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Growable write buffer; `freeze()` hands the accumulated bytes to a
/// [`Bytes`] without copying.
#[derive(Default, Clone, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Converts into an immutable [`Bytes`] — moves the allocation, no
    /// copy.
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.buf)
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        Self { buf }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.buf
    }
}

pub trait Buf {
    fn remaining(&self) -> usize;

    fn advance(&mut self, cnt: usize);

    fn chunk(&self) -> &[u8];

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        dest.copy_from_slice(&self.chunk()[..dest.len()]);
        self.advance(dest.len());
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len, "advance({cnt}) past length {}", self.len);
        self.off += cnt;
        self.len -= cnt;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    /// Zero-copy override: narrows the shared window instead of copying.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        self.split_to(len)
    }
}

pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(b.as_ptr(), c.as_ptr());
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.as_ptr(), unsafe { b.as_ptr().add(1) });
    }

    #[test]
    fn split_preserves_identity() {
        let mut b = Bytes::from(vec![9u8; 10]);
        let base = b.as_ptr();
        let head = b.split_to(4);
        assert_eq!(head.len(), 4);
        assert_eq!(head.as_ptr(), base);
        assert_eq!(b.as_ptr(), unsafe { base.add(4) });
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn freeze_moves_without_copy() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u32(0xdead_beef);
        let b = m.freeze();
        assert_eq!(&b[..], &0xdead_beefu32.to_be_bytes());
    }

    #[test]
    fn buf_cursor_semantics_match_slices() {
        let b = Bytes::from(vec![0u8, 1, 0, 2, 0, 0, 0, 3]);
        let mut cur = b.clone();
        assert_eq!(cur.get_u16(), 1);
        assert_eq!(cur.get_u16(), 2);
        assert_eq!(cur.get_u32(), 3);
        assert!(!cur.has_remaining());
        let zc = b.clone().copy_to_bytes(3);
        assert_eq!(zc.as_ptr(), b.as_ptr());
    }
}
