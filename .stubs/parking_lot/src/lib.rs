//! Offline API-compatible stand-in for `parking_lot`, backed by
//! `std::sync`. Poisoning is swallowed (parking_lot has none).

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Self(sync::Mutex::new(t))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(t: T) -> Self {
        Self::new(t)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        Self(sync::RwLock::new(t))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(t: T) -> Self {
        Self::new(t)
    }
}
