//! Offline stand-in for `criterion`: enough surface to compile and run
//! the workspace's benches as smoke executions (each routine runs a
//! handful of iterations; no statistics are collected).

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    iters: u32,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            black_box(routine());
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            black_box(routine(input));
        }
    }
}

pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 3 }
    }
}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut f: F,
    ) -> &mut Criterion {
        let start = Instant::now();
        let mut b = Bencher { iters: self.iters };
        f(&mut b);
        eprintln!(
            "bench {id}: {} iters in {:?} (stub smoke run)",
            self.iters,
            start.elapsed()
        );
        self
    }

    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
