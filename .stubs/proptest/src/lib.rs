//! Offline stand-in for `proptest`: deterministic random testing with
//! the `Strategy`/`any`/`prop_oneof!`/`proptest!` surface the workspace
//! uses. No shrinking — a failing case panics with the generated inputs
//! left to the assertion message. Case seeds derive from the test name,
//! so runs are reproducible.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Run configuration: only the case count is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// SplitMix64 stream; seeded per test from its fully-qualified name.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { source: self, f }
        }

        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Boxed alias matching proptest's name.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.source.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 10000 consecutive candidates");
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union used by `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total: u64,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!()
        }
    }

    pub fn weighted<V, S: Strategy<Value = V> + 'static>(
        w: u32,
        s: S,
    ) -> (u32, Box<dyn Strategy<Value = V>>) {
        (w, Box::new(s))
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

use strategy::Strategy;
use test_runner::TestRng;

/// Primitive types `any::<T>()` can produce.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Marker returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Upstream proptest interprets `&str` as a regex strategy. This
/// stand-in supports the subset the workspace uses — a single character
/// class with a bounded repetition, `[<class>]{lo,hi}` — and panics on
/// anything fancier so an unsupported pattern fails loudly instead of
/// generating the wrong distribution.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        fn unsupported(pat: &str) -> ! {
            panic!("stub proptest: unsupported string regex {pat:?}")
        }
        let pat = *self;
        let rest = pat.strip_prefix('[').unwrap_or_else(|| unsupported(pat));
        let (class, rest) = rest.split_once(']').unwrap_or_else(|| unsupported(pat));
        let bounds = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| unsupported(pat));
        let (lo, hi) = bounds.split_once(',').unwrap_or_else(|| unsupported(pat));
        let (lo, hi): (u64, u64) = match (lo.trim().parse(), hi.trim().parse()) {
            (Ok(l), Ok(h)) if l <= h => (l, h),
            _ => unsupported(pat),
        };
        let mut alphabet: Vec<char> = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (a, b) = (chars[i] as u32, chars[i + 2] as u32);
                if a > b {
                    unsupported(pat);
                }
                alphabet.extend((a..=b).filter_map(char::from_u32));
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            unsupported(pat);
        }
        let len = lo + rng.below(hi - lo + 1);
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`]: inclusive lower, exclusive upper.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.lo < size.hi, "empty vec length range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// `prop::` namespace as re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($w:expr => $s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::weighted(($w) as u32, $s)),+])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::weighted(1u32, $s)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (@items ($cfg:expr)) => {};
    (@items ($cfg:expr) $(#[$m:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$m])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                let _ = case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::proptest!{@items ($cfg) $($rest)*}
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@items ($cfg) $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@items ($crate::test_runner::ProptestConfig::default()) $($rest)*}
    };
}
