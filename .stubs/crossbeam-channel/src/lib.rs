//! Offline stand-in for `crossbeam-channel`: an unbounded MPMC channel
//! over `Mutex<VecDeque>` + `Condvar` with crossbeam's disconnect
//! semantics (cloneable senders *and* receivers).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

pub struct Sender<T>(Arc<Shared<T>>);

pub struct Receiver<T>(Arc<Shared<T>>);

pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender(shared.clone()), Receiver(shared))
}

pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
    // The stand-in keeps every channel unbounded; callers only rely on
    // delivery + disconnect semantics, not on backpressure.
    unbounded()
}

pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.0.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        self.0.queue.lock().expect("channel lock").push_back(value);
        self.0.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.senders.fetch_add(1, Ordering::AcqRel);
        Sender(self.0.clone())
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.0.ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.0.queue.lock().expect("channel lock");
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self.0.ready.wait(queue).expect("channel wait");
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.0.queue.lock().expect("channel lock");
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, res) = self
                .0
                .ready
                .wait_timeout(queue, deadline - now)
                .expect("channel wait");
            queue = q;
            if res.timed_out() && queue.is_empty() {
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.0.queue.lock().expect("channel lock");
        match queue.pop_front() {
            Some(v) => Ok(v),
            None if self.0.senders.load(Ordering::Acquire) == 0 => {
                Err(TryRecvError::Disconnected)
            }
            None => Err(TryRecvError::Empty),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.0.queue.lock().expect("channel lock").is_empty()
    }

    pub fn len(&self) -> usize {
        self.0.queue.lock().expect("channel lock").len()
    }

    pub fn iter(&self) -> Iter<'_, T> {
        Iter(self)
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver(self.0.clone())
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.0.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

pub struct Iter<'a, T>(&'a Receiver<T>);

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.0.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

pub struct IntoIter<T>(Receiver<T>);

impl<T> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.0.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> IntoIter<T> {
        IntoIter(self)
    }
}
