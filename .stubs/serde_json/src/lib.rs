//! Offline stand-in for `serde_json`: renders the stub `serde` data
//! model to JSON text and parses JSON text back into it. Compact and
//! pretty printers, plus `from_str`/`from_slice`/`to_vec`.

use serde::__private::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_model(), &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_model(), 0, &mut out);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = Parser::new(s).parse()?;
    T::from_model(&value).map_err(Error)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(s)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{:?}` is shortest-roundtrip and always keeps a decimal point,
        // matching serde_json's output closely enough.
        out.push_str(&format!("{f:?}"));
    } else {
        // serde_json renders non-finite floats as null.
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let inner_pad = "  ".repeat(indent + 1);
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner_pad);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner_pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Value> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error(format!("trailing characters at byte {}", self.pos)));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of JSON input".into()))
    }

    fn eat(&mut self, expect: u8) -> Result<()> {
        let b = self.peek()?;
        if b != expect {
            return Err(Error(format!(
                "expected `{}` at byte {}, found `{}`",
                expect as char, self.pos, b as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn eat_word(&mut self, word: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => {
                self.eat_word("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.eat_word("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.eat_word("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `]` at byte {}, found `{}`",
                                self.pos, other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    let val = self.value()?;
                    entries.push((key, val));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `}}` at byte {}, found `{}`",
                                self.pos, other as char
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            // Surrogate pairs are not needed by the
                            // workspace's ASCII-labelled payloads.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error("truncated UTF-8 sequence".into()))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| Error("invalid UTF-8 in string".into()))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
