//! Offline stand-in for `serde`: a self-describing value data model with
//! `Serialize`/`Deserialize` traits over it. `serde_derive` (the stub)
//! generates impls against `__private::Value`, and `serde_json` (the
//! stub) renders that model to and from JSON text. Only the surface the
//! workspace actually uses is provided.

pub use serde_derive::{Deserialize, Serialize};

pub mod __private {
    /// The self-describing data model every `Serialize` impl produces
    /// and every `Deserialize` impl consumes.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        U64(u64),
        I64(i64),
        F64(f64),
        Str(String),
        Seq(Vec<Value>),
        Map(Vec<(String, Value)>),
    }

    impl Value {
        pub fn get<'a>(&'a self, key: &str) -> Option<&'a Value> {
            match self {
                Value::Map(entries) => entries
                    .iter()
                    .find_map(|(k, v)| (k == key).then_some(v)),
                _ => None,
            }
        }

        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
                Value::Str(_) => "string",
                Value::Seq(_) => "sequence",
                Value::Map(_) => "map",
            }
        }
    }

    /// Renders a map key: the JSON object key for whatever the key type
    /// serialized to (serde_json stringifies integer keys).
    pub fn key_string(v: &Value) -> Result<String, String> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            Value::U64(n) => Ok(n.to_string()),
            Value::I64(n) => Ok(n.to_string()),
            Value::Bool(b) => Ok(b.to_string()),
            other => Err(format!("unsupported map key type: {}", other.kind())),
        }
    }
}

use __private::Value;

/// A data structure that can be serialized into the data model.
pub trait Serialize {
    fn to_model(&self) -> Value;
}

/// A data structure that can be deserialized from the data model.
pub trait Deserialize: Sized {
    fn from_model(v: &Value) -> Result<Self, String>;
}

pub mod ser {
    pub use crate::Serialize;
}

pub mod de {
    pub use crate::Deserialize;

    /// Marker matching serde's owned-deserialization bound.
    pub trait DeserializeOwned: Deserialize {}

    impl<T: Deserialize> DeserializeOwned for T {}
}

fn u64_from(v: &Value, what: &str) -> Result<u64, String> {
    match v {
        Value::U64(n) => Ok(*n),
        Value::I64(n) if *n >= 0 => Ok(*n as u64),
        Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as u64),
        // Integer map keys arrive as JSON object keys (strings).
        Value::Str(s) => s.parse().map_err(|_| format!("invalid {what}: {s:?}")),
        other => Err(format!("expected {what}, found {}", other.kind())),
    }
}

fn i64_from(v: &Value, what: &str) -> Result<i64, String> {
    match v {
        Value::I64(n) => Ok(*n),
        Value::U64(n) if *n <= i64::MAX as u64 => Ok(*n as i64),
        Value::F64(f) if f.fract() == 0.0 => Ok(*f as i64),
        Value::Str(s) => s.parse().map_err(|_| format!("invalid {what}: {s:?}")),
        other => Err(format!("expected {what}, found {}", other.kind())),
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_model(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_model(v: &Value) -> Result<Self, String> {
                let n = u64_from(v, stringify!($t))?;
                <$t>::try_from(n).map_err(|_| format!("{n} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_model(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_model(v: &Value) -> Result<Self, String> {
                let n = i64_from(v, stringify!($t))?;
                <$t>::try_from(n).map_err(|_| format!("{n} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_model(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_model(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, found {}", other.kind())),
        }
    }
}

impl Serialize for f64 {
    fn to_model(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_model(v: &Value) -> Result<Self, String> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(format!("expected f64, found {}", other.kind())),
        }
    }
}

impl Serialize for f32 {
    fn to_model(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_model(v: &Value) -> Result<Self, String> {
        f64::from_model(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_model(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_model(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, found {}", other.kind())),
        }
    }
}

// Upstream serde deserializes `&str` zero-copy from borrowed input; this
// model-based stand-in has no input to borrow from, so it leaks the
// (small, test-only) string to get `'static`.
impl Deserialize for &'static str {
    fn from_model(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(format!("expected string, found {}", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_model(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_model(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_model(&self) -> Value {
        (**self).to_model()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_model(&self) -> Value {
        (**self).to_model()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_model(v: &Value) -> Result<Self, String> {
        T::from_model(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_model(&self) -> Value {
        match self {
            Some(t) => t.to_model(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_model(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_model(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_model(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_model).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_model(v: &Value) -> Result<Self, String> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_model).collect(),
            other => Err(format!("expected sequence, found {}", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_model(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_model).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_model(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_model).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_model(v: &Value) -> Result<Self, String> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_model(item)?;
                }
                Ok(out)
            }
            Value::Seq(items) => Err(format!(
                "expected an array of length {N}, found {}",
                items.len()
            )),
            other => Err(format!("expected sequence, found {}", other.kind())),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_model(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_model()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_model(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        let out = ($({
                            let item = it.next().ok_or("tuple too short")?;
                            $t::from_model(item)?
                        },)+);
                        if it.next().is_some() {
                            return Err("tuple too long".into());
                        }
                        Ok(out)
                    }
                    other => Err(format!("expected sequence, found {}", other.kind())),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_model(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = __private::key_string(&k.to_model())
                        .expect("map key must serialize to a string or integer");
                    (key, v.to_model())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_model(v: &Value) -> Result<Self, String> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| {
                    Ok((K::from_model(&Value::Str(k.clone()))?, V::from_model(v)?))
                })
                .collect(),
            other => Err(format!("expected map, found {}", other.kind())),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_model(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = __private::key_string(&k.to_model())
                        .expect("map key must serialize to a string or integer");
                    (key, v.to_model())
                })
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_model(v: &Value) -> Result<Self, String> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| {
                    Ok((K::from_model(&Value::Str(k.clone()))?, V::from_model(v)?))
                })
                .collect(),
            other => Err(format!("expected map, found {}", other.kind())),
        }
    }
}
