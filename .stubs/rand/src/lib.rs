//! Offline stand-in for `rand` 0.8: the `Rng`/`RngCore`/`SeedableRng`
//! surface the workspace uses, over a SplitMix64-seeded xoshiro256++
//! generator. Deterministic for a given seed (stream values differ from
//! upstream `SmallRng`, which callers must not rely on).

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Integer/float ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++-based small generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(b);
        }
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        SmallRng { s }
    }
}

pub mod rngs {
    pub use crate::SmallRng;

    /// StdRng aliases the same generator in the stand-in.
    pub type StdRng = SmallRng;
}

pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, SmallRng};
}
