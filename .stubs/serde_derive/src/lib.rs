//! Offline stand-in for `serde_derive`: generates impls of the stub
//! `serde::Serialize`/`serde::Deserialize` traits (which target the
//! `serde::__private::Value` data model) for the shapes the workspace
//! uses — named-field structs, tuple structs, and unit-variant enums —
//! honoring `#[serde(default)]`, `#[serde(skip)]`, and the container
//! `#[serde(from = "...", into = "...")]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

struct Field {
    name: String,
    default: bool,
    skip: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
    /// `#[serde(from = "T")]` — deserialize through `T` + `From<T>`.
    from_ty: Option<String>,
    /// `#[serde(into = "T")]` — serialize through `Clone` + `Into<T>`.
    into_ty: Option<String>,
}

/// Serde attribute markers found in one `#[serde(...)]` group.
#[derive(Default)]
struct SerdeAttrs {
    default: bool,
    skip: bool,
    from_ty: Option<String>,
    into_ty: Option<String>,
}

fn parse_serde_attr(tokens: Vec<TokenTree>, out: &mut SerdeAttrs) {
    // tokens = contents of the bracket group: `serde ( ... )` or other
    // attributes (doc comments etc.), which are ignored.
    let mut it = tokens.into_iter();
    match it.next() {
        Some(TokenTree::Ident(w)) if w.to_string() == "serde" => {}
        _ => return,
    }
    let inner = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return,
    };
    let mut toks = inner.into_iter().peekable();
    while let Some(tok) = toks.next() {
        let TokenTree::Ident(word) = tok else { continue };
        match word.to_string().as_str() {
            "default" => out.default = true,
            "skip" => out.skip = true,
            key @ ("from" | "into") => {
                // expect `= "Type"`
                let Some(TokenTree::Punct(eq)) = toks.next() else { continue };
                if eq.as_char() != '=' {
                    continue;
                }
                let Some(TokenTree::Literal(lit)) = toks.next() else { continue };
                let raw = lit.to_string();
                let ty = raw.trim_matches('"').to_string();
                if key == "from" {
                    out.from_ty = Some(ty);
                } else {
                    out.into_ty = Some(ty);
                }
            }
            other => panic!("serde stub derive: unsupported serde attribute `{other}`"),
        }
    }
}

/// Consumes leading `#[...]` attributes, folding serde markers into `attrs`.
fn eat_attrs(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>, attrs: &mut SerdeAttrs) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        parse_serde_attr(g.stream().into_iter().collect(), attrs);
                    }
                    _ => panic!("serde stub derive: malformed attribute"),
                }
            }
            _ => return,
        }
    }
}

/// Consumes an optional `pub` / `pub(crate)` visibility.
fn eat_vis(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(w)) = toks.peek() {
        if w.to_string() == "pub" {
            toks.next();
            if let Some(TokenTree::Group(g)) = toks.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    toks.next();
                }
            }
        }
    }
}

fn parse(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    let mut container = SerdeAttrs::default();
    eat_attrs(&mut toks, &mut container);
    eat_vis(&mut toks);

    let kind = match toks.next() {
        Some(TokenTree::Ident(w)) => w.to_string(),
        other => panic!("serde stub derive: expected struct/enum, found {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(w)) => w.to_string(),
        other => panic!("serde stub derive: expected item name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic types are not supported ({name})");
        }
    }

    let body = match toks.next() {
        Some(TokenTree::Group(g)) => g,
        other => panic!("serde stub derive: expected item body for {name}, found {other:?}"),
    };

    let shape = match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::Named(parse_named_fields(body.stream())),
        ("struct", Delimiter::Parenthesis) => Shape::Tuple(count_tuple_fields(body.stream())),
        ("enum", Delimiter::Brace) => Shape::UnitEnum(parse_unit_variants(&name, body.stream())),
        other => panic!("serde stub derive: unsupported item shape {other:?} for {name}"),
    };

    Item {
        name,
        shape,
        from_ty: container.from_ty,
        into_ty: container.into_ty,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let mut attrs = SerdeAttrs::default();
        eat_attrs(&mut toks, &mut attrs);
        eat_vis(&mut toks);
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(fname) = tok else {
            panic!("serde stub derive: expected field name, found {tok:?}");
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` after field, found {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tok in toks.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field {
            name: fname.to_string(),
            default: attrs.default,
            skip: attrs.skip,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_any = false;
    for tok in stream {
        saw_any = true;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => fields += 1,
            _ => {}
        }
    }
    if saw_any {
        fields + 1
    } else {
        0
    }
}

fn parse_unit_variants(name: &str, stream: TokenStream) -> Vec<String> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let mut attrs = SerdeAttrs::default();
        eat_attrs(&mut toks, &mut attrs);
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(vname) = tok else {
            panic!("serde stub derive: expected variant name in {name}, found {tok:?}");
        };
        match toks.peek() {
            Some(TokenTree::Group(_)) => {
                panic!("serde stub derive: data-carrying enum variants are not supported ({name}::{vname})")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                toks.next();
            }
            _ => {}
        }
        variants.push(vname.to_string());
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into_ty) = &item.into_ty {
        format!(
            "let proxy: {into_ty} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_model(&proxy)"
        )
    } else {
        match &item.shape {
            Shape::Named(fields) => {
                let mut s = String::from(
                    "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::__private::Value)> = ::std::vec::Vec::new();\n",
                );
                for f in fields {
                    if f.skip {
                        continue;
                    }
                    s.push_str(&format!(
                        "entries.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_model(&self.{0})));\n",
                        f.name
                    ));
                }
                s.push_str("::serde::__private::Value::Map(entries)");
                s
            }
            Shape::Tuple(1) => "::serde::Serialize::to_model(&self.0)".to_string(),
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_model(&self.{i})"))
                    .collect();
                format!(
                    "::serde::__private::Value::Seq(::std::vec![{}])",
                    items.join(", ")
                )
            }
            Shape::UnitEnum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        format!(
                            "{name}::{v} => ::serde::__private::Value::Str(::std::string::String::from(\"{v}\"))"
                        )
                    })
                    .collect();
                format!("match self {{ {} }}", arms.join(", "))
            }
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_model(&self) -> ::serde::__private::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(from_ty) = &item.from_ty {
        format!(
            "let proxy: {from_ty} = ::serde::Deserialize::from_model(v)?;\n\
             ::std::result::Result::Ok(::std::convert::From::from(proxy))"
        )
    } else {
        match &item.shape {
            Shape::Named(fields) => {
                let mut inits = String::new();
                for f in fields {
                    if f.skip {
                        inits.push_str(&format!(
                            "{}: ::std::default::Default::default(),\n",
                            f.name
                        ));
                        continue;
                    }
                    let missing = if f.default {
                        "::std::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return ::std::result::Result::Err(::std::format!(\"missing field `{}` in {name}\"))",
                            f.name
                        )
                    };
                    inits.push_str(&format!(
                        "{0}: match v.get(\"{0}\") {{\n\
                             ::std::option::Option::Some(fv) => ::serde::Deserialize::from_model(fv)?,\n\
                             ::std::option::Option::None => {missing},\n\
                         }},\n",
                        f.name
                    ));
                }
                format!(
                    "match v {{\n\
                         ::serde::__private::Value::Map(_) => ::std::result::Result::Ok({name} {{\n{inits}}}),\n\
                         other => ::std::result::Result::Err(::std::format!(\"expected map for {name}, found {{}}\", other.kind())),\n\
                     }}"
                )
            }
            Shape::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_model(v)?))"
            ),
            Shape::Tuple(n) => {
                let mut grabs = String::new();
                for i in 0..*n {
                    grabs.push_str(&format!(
                        "::serde::Deserialize::from_model(items.get({i}).ok_or_else(|| ::std::string::String::from(\"tuple too short\"))?)?,\n"
                    ));
                }
                format!(
                    "match v {{\n\
                         ::serde::__private::Value::Seq(items) => ::std::result::Result::Ok({name}(\n{grabs})),\n\
                         other => ::std::result::Result::Err(::std::format!(\"expected sequence for {name}, found {{}}\", other.kind())),\n\
                     }}"
                )
            }
            Shape::UnitEnum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})"))
                    .collect();
                format!(
                    "match v {{\n\
                         ::serde::__private::Value::Str(s) => match s.as_str() {{\n\
                             {},\n\
                             other => ::std::result::Result::Err(::std::format!(\"unknown {name} variant {{other:?}}\")),\n\
                         }},\n\
                         other => ::std::result::Result::Err(::std::format!(\"expected string for {name}, found {{}}\", other.kind())),\n\
                     }}",
                    arms.join(",\n")
                )
            }
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_model(v: &::serde::__private::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n{body}\n}}\n\
         }}"
    )
}
